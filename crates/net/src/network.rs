//! A routed, message-level network model.
//!
//! Nodes are registered with a kind label; links are directed pairs with a
//! [`LinkSpec`]. Transfers are store-and-forward: each hop adds propagation
//! latency (+ jitter), a serialization delay, and queues behind earlier
//! transfers on the same link (per-link `busy_until`). Group partitions
//! model the network partitions §IV-E1 worries about.

use crate::link::LinkSpec;
use mv_common::hash::{FastMap, FastSet};
use mv_common::id::NodeId;
use mv_common::time::{SimDuration, SimTime};
use mv_common::{MvError, MvResult};
use mv_obs::{SharedRegistry, StatSet};
use rand::Rng;

/// Outcome of a transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives at the destination at this time.
    At(SimTime),
    /// The message was lost on a lossy link.
    Lost,
}

impl Delivery {
    /// The arrival time, if delivered.
    pub fn time(self) -> Option<SimTime> {
        match self {
            Delivery::At(t) => Some(t),
            Delivery::Lost => None,
        }
    }
}

#[derive(Debug, Clone)]
struct NodeInfo {
    #[allow(dead_code)]
    kind: &'static str,
    group: u32,
}

#[derive(Debug, Clone)]
struct LinkState {
    spec: LinkSpec,
    /// The healthy spec, restored after a fault window ends.
    base: LinkSpec,
    busy_until: SimTime,
}

/// The network: nodes, directed links, routing, partitions, accounting.
#[derive(Debug, Default)]
pub struct Network {
    nodes: FastMap<NodeId, NodeInfo>,
    links: FastMap<(NodeId, NodeId), LinkState>,
    adjacency: FastMap<NodeId, Vec<NodeId>>,
    route_cache: FastMap<(NodeId, NodeId), Option<Vec<NodeId>>>,
    /// Pairs of partition groups that cannot currently reach each other.
    severed: FastSet<(u32, u32)>,
    /// Nodes that are currently crashed (refuse all traffic).
    down: FastSet<NodeId>,
    /// Message/byte accounting, plus one `faults_*` counter per injected
    /// fault kind (the fault layer's audit trail). Registry-backed
    /// (`net.network.*`); [`Self::attach_registry`] folds it into a
    /// shared registry.
    pub stats: StatSet,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network { stats: StatSet::new("net.network"), ..Self::default() }
    }

    /// Re-home this network's counters onto a shared registry (values
    /// carry over), so one snapshot covers every layer.
    pub fn attach_registry(&mut self, registry: &SharedRegistry) {
        self.stats.attach(registry);
    }

    /// Register a node with a human-readable kind ("device", "executor",
    /// "storage", "coordinator"…). All nodes start in partition group 0.
    pub fn add_node(&mut self, id: NodeId, kind: &'static str) {
        self.nodes.insert(id, NodeInfo { kind, group: 0 });
        self.adjacency.entry(id).or_default();
        self.route_cache.clear();
    }

    /// Assign a node to a partition group (used by [`Self::sever`]).
    pub fn set_group(&mut self, id: NodeId, group: u32) -> MvResult<()> {
        self.nodes
            .get_mut(&id)
            .map(|n| n.group = group)
            .ok_or(MvError::not_found("node", id.raw()))
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Add a *directed* link. Use [`Self::add_link_bidi`] for the common case.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        self.links
            .insert((from, to), LinkState { spec, base: spec, busy_until: SimTime::ZERO });
        self.adjacency.entry(from).or_default().push(to);
        self.route_cache.clear();
    }

    /// Add a symmetric pair of links.
    pub fn add_link_bidi(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.add_link(a, b, spec);
        self.add_link(b, a, spec);
    }

    /// Sever connectivity between two partition groups (both directions).
    pub fn sever(&mut self, group_a: u32, group_b: u32) {
        self.severed.insert((group_a, group_b));
        self.severed.insert((group_b, group_a));
        self.stats.incr("faults_severed");
    }

    /// Heal a previously severed pair of groups.
    pub fn heal(&mut self, group_a: u32, group_b: u32) {
        self.severed.remove(&(group_a, group_b));
        self.severed.remove(&(group_b, group_a));
        self.stats.incr("faults_healed");
    }

    /// Crash a node: until [`Self::restart_node`], every transfer whose
    /// route touches it fails with [`MvError::Unreachable`]. Whatever state
    /// the node held is the *caller's* problem (see `fault::FaultTarget`'s
    /// crash hook) — the network only models reachability.
    pub fn crash_node(&mut self, id: NodeId) -> MvResult<()> {
        if !self.nodes.contains_key(&id) {
            return Err(MvError::not_found("node", id.raw()));
        }
        self.down.insert(id);
        self.stats.incr("faults_node_crash");
        Ok(())
    }

    /// Restart a crashed node (a no-op reachability-wise if it was up).
    pub fn restart_node(&mut self, id: NodeId) -> MvResult<()> {
        if !self.nodes.contains_key(&id) {
            return Err(MvError::not_found("node", id.raw()));
        }
        self.down.remove(&id);
        self.stats.incr("faults_node_restart");
        Ok(())
    }

    /// Is the node registered and not crashed?
    pub fn is_up(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id) && !self.down.contains(&id)
    }

    /// Replace a directed link's spec for a fault window (the healthy spec
    /// is remembered and comes back on [`Self::restore_link`]).
    pub fn degrade_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> MvResult<()> {
        let link = self
            .links
            .get_mut(&(from, to))
            .ok_or(MvError::Unreachable { node: to.raw() })?;
        link.spec = spec;
        self.stats.incr("faults_link_degraded");
        Ok(())
    }

    /// Restore a degraded directed link to its healthy spec.
    pub fn restore_link(&mut self, from: NodeId, to: NodeId) -> MvResult<()> {
        let link = self
            .links
            .get_mut(&(from, to))
            .ok_or(MvError::Unreachable { node: to.raw() })?;
        link.spec = link.base;
        self.stats.incr("faults_link_restored");
        Ok(())
    }

    /// [`Self::degrade_link`] in both directions.
    pub fn degrade_link_bidi(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> MvResult<()> {
        self.degrade_link(a, b, spec)?;
        self.degrade_link(b, a, spec)
    }

    /// [`Self::restore_link`] in both directions.
    pub fn restore_link_bidi(&mut self, a: NodeId, b: NodeId) -> MvResult<()> {
        self.restore_link(a, b)?;
        self.restore_link(b, a)
    }

    fn groups_connected(&self, a: NodeId, b: NodeId) -> bool {
        let (Some(na), Some(nb)) = (self.nodes.get(&a), self.nodes.get(&b)) else {
            return false;
        };
        !self.severed.contains(&(na.group, nb.group))
    }

    /// Shortest route (fewest hops) from `src` to `dst`, ignoring
    /// partitions (those are checked per-hop at transfer time). Cached.
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if let Some(cached) = self.route_cache.get(&(src, dst)) {
            return cached.clone();
        }
        let computed = self.bfs(src, dst);
        self.route_cache.insert((src, dst), computed.clone());
        computed
    }

    fn bfs(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev: FastMap<NodeId, NodeId> = FastMap::default();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        prev.insert(src, src);
        while let Some(cur) = queue.pop_front() {
            if let Some(neigh) = self.adjacency.get(&cur) {
                for &n in neigh {
                    if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(n) {
                        e.insert(cur);
                        if n == dst {
                            // Reconstruct.
                            let mut path = vec![dst];
                            let mut at = dst;
                            while at != src {
                                match prev.get(&at) {
                                    Some(&p) => at = p,
                                    None => return None,
                                }
                                path.push(at);
                            }
                            path.reverse();
                            return Some(path);
                        }
                        queue.push_back(n);
                    }
                }
            }
        }
        None
    }

    /// The pure one-way latency of the route (no queueing, no payload) —
    /// handy for protocol analysis (e.g. expected 2PC round trips).
    pub fn path_latency(&mut self, src: NodeId, dst: NodeId) -> MvResult<SimDuration> {
        let path = self
            .route(src, dst)
            .ok_or(MvError::Unreachable { node: dst.raw() })?;
        let mut total = SimDuration::ZERO;
        for hop in path.windows(2) {
            let link = self
                .links
                .get(&(hop[0], hop[1]))
                .ok_or(MvError::Unreachable { node: hop[1].raw() })?;
            total = total + link.spec.latency;
        }
        Ok(total)
    }

    /// Compute the delivery time for a transfer of `bytes` from `src` to
    /// `dst`, departing at `now`. Mutates per-link queues (serialization)
    /// and draws jitter/loss from `rng`. Returns an error when no route
    /// exists or a partition blocks a hop.
    pub fn transfer<R: Rng + ?Sized>(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
        rng: &mut R,
    ) -> MvResult<Delivery> {
        if !self.nodes.contains_key(&src) {
            return Err(MvError::not_found("node", src.raw()));
        }
        if self.down.contains(&src) {
            return Err(MvError::Unreachable { node: src.raw() });
        }
        if self.down.contains(&dst) {
            return Err(MvError::Unreachable { node: dst.raw() });
        }
        if !self.groups_connected(src, dst) {
            return Err(MvError::Unreachable { node: dst.raw() });
        }
        let path = self
            .route(src, dst)
            .ok_or(MvError::Unreachable { node: dst.raw() })?;
        let mut t = now;
        for hop in path.windows(2) {
            let &[a, b] = hop else { continue };
            if self.down.contains(&b) {
                return Err(MvError::Unreachable { node: b.raw() });
            }
            if !self.groups_connected(a, b) {
                return Err(MvError::Unreachable { node: b.raw() });
            }
            let link = self
                .links
                .get_mut(&(a, b))
                .ok_or(MvError::Unreachable { node: b.raw() })?;
            // Loss check per hop.
            if link.spec.loss > 0.0 && rng.gen::<f64>() < link.spec.loss {
                self.stats.incr("msgs_lost");
                return Ok(Delivery::Lost);
            }
            // Queue behind earlier transfers on this link, then serialize,
            // then propagate (+ jitter).
            let start = t.max(link.busy_until);
            let ser = link.spec.serialization_delay(bytes);
            link.busy_until = start + ser;
            let mut prop = link.spec.latency;
            if link.spec.jitter_frac > 0.0 {
                prop = prop + link.spec.latency.mul_f64(link.spec.jitter_frac * rng.gen::<f64>());
            }
            t = start + ser + prop;
        }
        self.stats.incr("msgs_sent");
        self.stats.add("bytes_sent", bytes);
        Ok(Delivery::At(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;
    use mv_common::seeded_rng;

    fn simple_net() -> Network {
        // a -- b -- c chain with 1 ms / 1 MB/s links.
        let mut net = Network::new();
        for i in 0..3 {
            net.add_node(NodeId::new(i), "n");
        }
        let spec = LinkSpec::new(SimDuration::from_millis(1), 1e6);
        net.add_link_bidi(NodeId::new(0), NodeId::new(1), spec);
        net.add_link_bidi(NodeId::new(1), NodeId::new(2), spec);
        net
    }

    #[test]
    fn routes_multi_hop() {
        let mut net = simple_net();
        let r = net.route(NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(r, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(
            net.path_latency(NodeId::new(0), NodeId::new(2)).unwrap(),
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn transfer_time_includes_latency_and_serialization() {
        let mut net = simple_net();
        let mut rng = seeded_rng(1);
        // 1000 bytes over two 1 MB/s hops: 2 × (1 ms ser + 1 ms prop) = 4 ms.
        let d = net
            .transfer(NodeId::new(0), NodeId::new(2), 1000, SimTime::ZERO, &mut rng)
            .unwrap();
        assert_eq!(d, Delivery::At(SimTime::from_millis(4)));
    }

    #[test]
    fn link_serialization_queues_back_to_back_transfers() {
        let mut net = simple_net();
        let mut rng = seeded_rng(1);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let t1 = net.transfer(a, b, 1000, SimTime::ZERO, &mut rng).unwrap().time().unwrap();
        let t2 = net.transfer(a, b, 1000, SimTime::ZERO, &mut rng).unwrap().time().unwrap();
        // Second transfer waits for the first's serialization slot.
        assert_eq!(t1, SimTime::from_millis(2));
        assert_eq!(t2, SimTime::from_millis(3));
    }

    #[test]
    fn unreachable_without_route() {
        let mut net = Network::new();
        net.add_node(NodeId::new(0), "n");
        net.add_node(NodeId::new(1), "n");
        let mut rng = seeded_rng(1);
        let err = net
            .transfer(NodeId::new(0), NodeId::new(1), 10, SimTime::ZERO, &mut rng)
            .unwrap_err();
        assert!(matches!(err, MvError::Unreachable { .. }));
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut net = simple_net();
        net.set_group(NodeId::new(2), 1).unwrap();
        net.sever(0, 1);
        let mut rng = seeded_rng(1);
        assert!(net
            .transfer(NodeId::new(0), NodeId::new(2), 10, SimTime::ZERO, &mut rng)
            .is_err());
        // Intra-group traffic unaffected.
        assert!(net
            .transfer(NodeId::new(0), NodeId::new(1), 10, SimTime::ZERO, &mut rng)
            .is_ok());
        net.heal(0, 1);
        assert!(net
            .transfer(NodeId::new(0), NodeId::new(2), 10, SimTime::ZERO, &mut rng)
            .is_ok());
    }

    #[test]
    fn lossy_link_eventually_drops() {
        let mut net = Network::new();
        net.add_node(NodeId::new(0), "n");
        net.add_node(NodeId::new(1), "n");
        net.add_link(
            NodeId::new(0),
            NodeId::new(1),
            LinkSpec::new(SimDuration::from_millis(1), 0.0).with_loss(0.5),
        );
        let mut rng = seeded_rng(7);
        let mut lost = 0;
        for _ in 0..100 {
            if let Delivery::Lost =
                net.transfer(NodeId::new(0), NodeId::new(1), 1, SimTime::ZERO, &mut rng).unwrap()
            {
                lost += 1;
            }
        }
        assert!(lost > 20 && lost < 80, "lost {lost}/100");
        assert_eq!(net.stats.get("msgs_lost"), lost);
    }

    #[test]
    fn crashed_nodes_refuse_traffic_until_restart() {
        let mut net = simple_net();
        let mut rng = seeded_rng(1);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        // Crash the relay: endpoints are up, the route through b is not.
        net.crash_node(b).unwrap();
        assert!(!net.is_up(b) && net.is_up(a));
        assert!(net.transfer(a, c, 10, SimTime::ZERO, &mut rng).is_err());
        assert!(net.transfer(a, b, 10, SimTime::ZERO, &mut rng).is_err());
        net.restart_node(b).unwrap();
        assert!(net.transfer(a, c, 10, SimTime::ZERO, &mut rng).is_ok());
        assert_eq!(net.stats.get("faults_node_crash"), 1);
        assert_eq!(net.stats.get("faults_node_restart"), 1);
        // Unknown nodes are a typed error, not silent state.
        assert!(net.crash_node(NodeId::new(99)).is_err());
        assert!(!net.is_up(NodeId::new(99)));
    }

    #[test]
    fn degraded_links_come_back_with_their_base_spec() {
        let mut net = simple_net();
        let mut rng = seeded_rng(1);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let healthy = net.transfer(a, b, 0, SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(healthy, Delivery::At(SimTime::from_millis(1)));
        net.degrade_link_bidi(a, b, LinkSpec::new(SimDuration::from_millis(50), 1e6)).unwrap();
        let slow = net.transfer(a, b, 0, SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(slow, Delivery::At(SimTime::from_millis(50)));
        net.restore_link_bidi(a, b).unwrap();
        let again = net.transfer(a, b, 0, SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(again, Delivery::At(SimTime::from_millis(1)));
        assert_eq!(net.stats.get("faults_link_degraded"), 2);
        assert_eq!(net.stats.get("faults_link_restored"), 2);
        // Degrading a non-existent link is an error.
        assert!(net.degrade_link(a, NodeId::new(2), LinkClass::Wan.spec()).is_err());
    }

    #[test]
    fn canned_classes_integrate() {
        let mut net = Network::new();
        net.add_node(NodeId::new(0), "dc");
        net.add_node(NodeId::new(1), "dc");
        net.add_link_bidi(NodeId::new(0), NodeId::new(1), LinkClass::Wan.spec());
        let rtt = net.path_latency(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(rtt, SimDuration::from_millis(40));
    }
}
