//! §II smart city: an urban sensor field.
//!
//! Sensors sit on a city grid; activity is Zipf-skewed across cells
//! (downtown is hot) and modulated by a diurnal curve. The generated
//! records feed the E1 cross-space sync throughput experiment and the
//! stream-engine benches.

use mv_common::geom::Point;
use mv_common::sample::{exp_sample, Zipf};
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use mv_stream::StreamRecord;
use rand::Rng;

/// Parameters.
#[derive(Debug, Clone)]
pub struct SmartCityParams {
    /// Sensors deployed.
    pub sensors: usize,
    /// City side, metres.
    pub city_side: f64,
    /// Grid cells per side for the hot-spot skew.
    pub cells_per_side: usize,
    /// Zipf skew across cells.
    pub zipf_alpha: f64,
    /// Mean readings per sensor per second (before skew/diurnal shaping).
    pub base_rate: f64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmartCityParams {
    fn default() -> Self {
        SmartCityParams {
            sensors: 2_000,
            city_side: 10_000.0,
            cells_per_side: 16,
            zipf_alpha: 1.0,
            base_rate: 1.0,
            duration: SimDuration::from_secs(60),
            seed: 29,
        }
    }
}

/// The generated field.
#[derive(Debug)]
pub struct SensorField {
    /// Sensor positions (index = sensor id).
    pub positions: Vec<Point>,
    /// Readings, time-ordered (key = sensor id, value = measurement).
    pub readings: Vec<StreamRecord>,
}

impl SensorField {
    /// Generate sensors and their reading stream.
    pub fn generate(params: &SmartCityParams) -> Self {
        let mut rng = seeded_rng(params.seed);
        let cells = params.cells_per_side * params.cells_per_side;
        let zipf = Zipf::new(cells, params.zipf_alpha);
        let cell_side = params.city_side / params.cells_per_side as f64;
        // Sensors land in Zipf-hot cells.
        let positions: Vec<Point> = (0..params.sensors)
            .map(|_| {
                let c = zipf.sample(&mut rng);
                let cx = (c % params.cells_per_side) as f64;
                let cy = (c / params.cells_per_side) as f64;
                Point::new(
                    cx * cell_side + rng.gen_range(0.0..cell_side),
                    cy * cell_side + rng.gen_range(0.0..cell_side),
                )
            })
            .collect();
        // Each sensor emits a Poisson stream; rate follows a diurnal
        // curve (one "day" compressed into the run).
        let mut readings = Vec::new();
        let dur_us = params.duration.as_micros() as f64;
        for (id, _) in positions.iter().enumerate() {
            let mut t = 0.0f64;
            loop {
                // Diurnal modulation in [0.3, 1.7].
                let phase = t / dur_us * std::f64::consts::TAU;
                let rate = params.base_rate * (1.0 + 0.7 * phase.sin()).max(0.3);
                t += exp_sample(&mut rng, 1e6 / rate);
                if t >= dur_us {
                    break;
                }
                let value = 20.0 + 5.0 * phase.sin() + rng.gen_range(-1.0..1.0);
                readings
                    .push(StreamRecord::physical(SimTime::from_micros(t as u64), id as u64, value));
            }
        }
        readings.sort_by_key(|r| (r.ts, r.key));
        SensorField { positions, readings }
    }

    /// Readings per second, averaged over the run.
    pub fn mean_rate(&self, duration: SimDuration) -> f64 {
        self.readings.len() as f64 / duration.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_tracks_configuration() {
        let params = SmartCityParams {
            sensors: 100,
            duration: SimDuration::from_secs(20),
            ..Default::default()
        };
        let f = SensorField::generate(&params);
        assert_eq!(f.positions.len(), 100);
        // ~100 sensors × ~1/s × 20 s, diurnal-modulated.
        let n = f.readings.len();
        assert!((1000..4000).contains(&n), "readings {n}");
        assert!(f.readings.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn hot_cells_hold_disproportionate_sensors() {
        let params = SmartCityParams::default();
        let f = SensorField::generate(&params);
        let cell_side = params.city_side / params.cells_per_side as f64;
        let mut counts = vec![0usize; params.cells_per_side * params.cells_per_side];
        for p in &f.positions {
            let cx = ((p.x / cell_side) as usize).min(params.cells_per_side - 1);
            let cy = ((p.y / cell_side) as usize).min(params.cells_per_side - 1);
            counts[cy * params.cells_per_side + cx] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let mean = params.sensors / counts.len();
        assert!(max > mean * 5, "hot cell {max} vs mean {mean}");
    }

    #[test]
    fn positions_stay_in_city() {
        let params = SmartCityParams::default();
        let f = SensorField::generate(&params);
        for p in &f.positions {
            assert!((0.0..=params.city_side).contains(&p.x));
            assert!((0.0..=params.city_side).contains(&p.y));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SensorField::generate(&SmartCityParams::default());
        let b = SensorField::generate(&SmartCityParams::default());
        assert_eq!(a.readings.len(), b.readings.len());
        assert_eq!(a.positions, b.positions);
    }
}
