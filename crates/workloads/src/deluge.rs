//! The §III data deluge: a million-entity update/query storm.
//!
//! This is the macro-benchmark driver workload (DESIGN.md §13): a
//! co-space with `entities` concurrently active entities whose update
//! traffic is Zipf(α)-skewed across entity ranks (a few avatars and
//! sensors generate most of the writes) and punctuated by flash-crowd
//! bursts — every `burst_every` ticks, `burst_len` ticks carry
//! `burst_multiplier`× the base op volume, concentrated on a hot venue
//! region (the §IV-E "Black Friday" shape at the whole-world scale).
//!
//! Everything is seeded and deterministic: the same [`DelugeParams`]
//! always produce the same trace, byte for byte (see
//! [`DelugeTrace::canonical_bytes`] and the proptests below). The trace
//! is *pre-generated* so benchmark loops measure the serving stack, not
//! the RNG.

use mv_common::geom::Point;
use mv_common::sample::Zipf;
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use mv_core::EntityKind;
use rand::Rng;

/// Attribute names the deluge writes, indexed by [`DelugeOp::Attr`].
pub const ATTR_NAMES: [&str; 4] = ["hp", "score", "stock", "temp"];

/// Parameters for the deluge generator.
#[derive(Debug, Clone)]
pub struct DelugeParams {
    /// Concurrently active entities (spawned before tick 0).
    pub entities: usize,
    /// Simulated ticks to generate.
    pub ticks: u64,
    /// Sim time per tick.
    pub tick: SimDuration,
    /// Base update ops per tick (before burst multiplication).
    pub ops_per_tick: usize,
    /// Zipf exponent over entity ranks (entity 0 is hottest).
    pub zipf_alpha: f64,
    /// Fraction of ops that are attribute writes (rest are moves).
    pub attr_fraction: f64,
    /// A flash crowd starts every `burst_every` ticks (0 = never).
    pub burst_every: u64,
    /// Burst duration in ticks.
    pub burst_len: u64,
    /// Op-volume multiple during a burst tick.
    pub burst_multiplier: u32,
    /// World side length, metres (positions stay in `[0, world_side)`).
    pub world_side: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DelugeParams {
    fn default() -> Self {
        DelugeParams {
            entities: 10_000,
            ticks: 16,
            tick: SimDuration::from_millis(100),
            ops_per_tick: 2_000,
            zipf_alpha: 0.9,
            attr_fraction: 0.25,
            burst_every: 8,
            burst_len: 2,
            burst_multiplier: 4,
            world_side: 10_000.0,
            seed: 8,
        }
    }
}

/// One pre-generated update op. Entity is an index into the spawn list
/// (rank order: index 0 is the Zipf-hottest entity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelugeOp {
    /// Move the entity to an absolute position.
    Move {
        /// Entity index (spawn-list rank).
        entity: u32,
        /// Destination.
        to: Point,
    },
    /// Write an attribute.
    Attr {
        /// Entity index (spawn-list rank).
        entity: u32,
        /// Index into [`ATTR_NAMES`].
        name: u8,
        /// New value.
        value: f64,
    },
}

impl DelugeOp {
    /// The targeted entity index.
    pub fn entity(&self) -> u32 {
        match *self {
            DelugeOp::Move { entity, .. } | DelugeOp::Attr { entity, .. } => entity,
        }
    }
}

/// One tick of the trace.
#[derive(Debug, Clone)]
pub struct DelugeTick {
    /// Tick start on the sim clock.
    pub start: SimTime,
    /// Whether this tick falls inside a flash-crowd window.
    pub burst: bool,
    /// The tick's ops, in arrival order.
    pub ops: Vec<DelugeOp>,
}

/// The full pre-generated trace.
#[derive(Debug, Clone)]
pub struct DelugeTrace {
    /// Spawn specs, index = entity rank (0 = hottest).
    pub spawns: Vec<(String, EntityKind, Point)>,
    /// Per-tick op batches.
    pub ticks: Vec<DelugeTick>,
    /// The flash-crowd venue (bursts concentrate moves around it).
    pub venue: Point,
    /// The parameters that produced the trace.
    pub params: DelugeParams,
}

/// Entity kinds cycled through the spawn list (mixes both
/// authoritative spaces so the twin-sync path is exercised).
const KINDS: [EntityKind; 4] =
    [EntityKind::Avatar, EntityKind::Person, EntityKind::Sensor, EntityKind::Vehicle];

/// Generate the deluge trace for `params`.
pub fn generate(params: &DelugeParams) -> DelugeTrace {
    let mut rng = seeded_rng(params.seed);
    let side = params.world_side;
    let zipf = Zipf::new(params.entities.max(1), params.zipf_alpha);
    let spawns: Vec<(String, EntityKind, Point)> = (0..params.entities)
        .map(|i| {
            let kind = KINDS[i % KINDS.len()];
            let p = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            (format!("d{i}"), kind, p)
        })
        .collect();
    let venue = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
    let mut ticks = Vec::with_capacity(params.ticks as usize);
    for t in 0..params.ticks {
        let burst = params.burst_every > 0
            && params.burst_len > 0
            && t % params.burst_every < params.burst_len
            && t >= params.burst_every.min(params.ticks); // warm-up: no burst in the first cycle
        let volume = if burst {
            params.ops_per_tick * params.burst_multiplier as usize
        } else {
            params.ops_per_tick
        };
        let mut ops = Vec::with_capacity(volume);
        for _ in 0..volume {
            let entity = zipf.sample(&mut rng) as u32;
            if rng.gen::<f64>() < params.attr_fraction {
                let name = rng.gen_range(0..ATTR_NAMES.len()) as u8;
                ops.push(DelugeOp::Attr { entity, name, value: rng.gen_range(0.0..100.0) });
            } else {
                // Bursts pull the crowd toward the venue; base load is a
                // random waypoint anywhere in the world.
                let to = if burst {
                    Point::new(
                        (venue.x + rng.gen_range(-250.0..250.0)).clamp(0.0, side),
                        (venue.y + rng.gen_range(-250.0..250.0)).clamp(0.0, side),
                    )
                } else {
                    Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side))
                };
                ops.push(DelugeOp::Move { entity, to });
            }
        }
        ticks.push(DelugeTick {
            start: SimTime::ZERO + params.tick.mul_f64(t as f64),
            burst,
            ops,
        });
    }
    DelugeTrace { spawns, ticks, venue, params: params.clone() }
}

impl DelugeTrace {
    /// Total op count across all ticks.
    pub fn total_ops(&self) -> usize {
        self.ticks.iter().map(|t| t.ops.len()).sum()
    }

    /// Canonical byte encoding of the whole trace — the determinism
    /// witness (same seed ⇒ byte-identical; see the proptests).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.spawns.len() * 24 + self.total_ops() * 24);
        out.extend_from_slice(&(self.spawns.len() as u64).to_le_bytes());
        for (name, kind, p) in &self.spawns {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.push(*kind as u8);
            out.extend_from_slice(&p.x.to_le_bytes());
            out.extend_from_slice(&p.y.to_le_bytes());
        }
        out.extend_from_slice(&self.venue.x.to_le_bytes());
        out.extend_from_slice(&self.venue.y.to_le_bytes());
        out.extend_from_slice(&(self.ticks.len() as u64).to_le_bytes());
        for tick in &self.ticks {
            out.extend_from_slice(&tick.start.as_micros().to_le_bytes());
            out.push(u8::from(tick.burst));
            out.extend_from_slice(&(tick.ops.len() as u64).to_le_bytes());
            for op in &tick.ops {
                match *op {
                    DelugeOp::Move { entity, to } => {
                        out.push(1);
                        out.extend_from_slice(&entity.to_le_bytes());
                        out.extend_from_slice(&to.x.to_le_bytes());
                        out.extend_from_slice(&to.y.to_le_bytes());
                    }
                    DelugeOp::Attr { entity, name, value } => {
                        out.push(2);
                        out.extend_from_slice(&entity.to_le_bytes());
                        out.push(name);
                        out.extend_from_slice(&value.to_le_bytes());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn volume_and_shape_track_configuration() {
        let params = DelugeParams::default();
        let trace = generate(&params);
        assert_eq!(trace.spawns.len(), params.entities);
        assert_eq!(trace.ticks.len(), params.ticks as usize);
        for (i, tick) in trace.ticks.iter().enumerate() {
            assert_eq!(tick.start.as_micros(), i as u64 * params.tick.as_micros());
        }
    }

    #[test]
    fn burst_ticks_carry_the_configured_load_multiple() {
        let params = DelugeParams::default();
        let trace = generate(&params);
        assert!(trace.ticks.iter().any(|t| t.burst), "no burst generated");
        assert!(trace.ticks.iter().any(|t| !t.burst), "everything is burst");
        for tick in &trace.ticks {
            let expect = if tick.burst {
                params.ops_per_tick * params.burst_multiplier as usize
            } else {
                params.ops_per_tick
            };
            assert_eq!(tick.ops.len(), expect, "burst={}", tick.burst);
        }
    }

    #[test]
    fn burst_moves_concentrate_on_the_venue() {
        let params = DelugeParams::default();
        let trace = generate(&params);
        let near = |p: Point| p.dist(trace.venue) < 500.0;
        let frac_near = |burst: bool| {
            let (mut near_n, mut total) = (0usize, 0usize);
            for tick in trace.ticks.iter().filter(|t| t.burst == burst) {
                for op in &tick.ops {
                    if let DelugeOp::Move { to, .. } = op {
                        total += 1;
                        near_n += usize::from(near(*to));
                    }
                }
            }
            near_n as f64 / total.max(1) as f64
        };
        assert!(frac_near(true) > 0.9, "burst moves near venue: {}", frac_near(true));
        assert!(frac_near(false) < 0.2, "base moves spread out: {}", frac_near(false));
    }

    #[test]
    fn entity_frequency_ranks_follow_the_zipf_law() {
        // With α = 0.9 over n entities, rank r's expected share is
        // r^-α / H. Check the observed top-rank shares against the pmf
        // within a ×2 tolerance band (sampling noise at this volume is
        // far smaller).
        let params = DelugeParams {
            entities: 1_000,
            ticks: 20,
            ops_per_tick: 10_000,
            ..Default::default()
        };
        let trace = generate(&params);
        let zipf = Zipf::new(params.entities, params.zipf_alpha);
        let mut counts = vec![0u64; params.entities];
        let mut total = 0u64;
        for tick in &trace.ticks {
            for op in &tick.ops {
                counts[op.entity() as usize] += 1;
                total += 1;
            }
        }
        for rank in [0usize, 1, 2, 10, 100] {
            let observed = counts[rank] as f64 / total as f64;
            let expected = zipf.pmf(rank);
            assert!(
                observed > expected * 0.5 && observed < expected * 2.0,
                "rank {rank}: observed {observed:.5} vs pmf {expected:.5}"
            );
        }
        // Skew sanity: the hottest entity sees far more than the median.
        assert!(counts[0] > counts[500] * 20, "{} vs {}", counts[0], counts[500]);
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let params = DelugeParams::default();
        let a = generate(&params).canonical_bytes();
        let b = generate(&params).canonical_bytes();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_same_seed_traces_are_byte_identical(
            seed in 0u64..1_000,
            entities in 1usize..200,
            ops in 1usize..200,
            alpha in 0.0f64..1.5,
        ) {
            let params = DelugeParams {
                entities,
                ticks: 6,
                ops_per_tick: ops,
                zipf_alpha: alpha,
                seed,
                ..Default::default()
            };
            let a = generate(&params).canonical_bytes();
            let b = generate(&params).canonical_bytes();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_burst_windows_hold_the_multiplier(
            seed in 0u64..1_000,
            every in 2u64..6,
            len in 1u64..3,
            mult in 2u32..6,
        ) {
            let params = DelugeParams {
                entities: 50,
                ticks: 24,
                ops_per_tick: 40,
                burst_every: every,
                burst_len: len.min(every),
                burst_multiplier: mult,
                seed,
                ..Default::default()
            };
            let trace = generate(&params);
            for tick in &trace.ticks {
                let expect = if tick.burst {
                    params.ops_per_tick * mult as usize
                } else {
                    params.ops_per_tick
                };
                prop_assert_eq!(tick.ops.len(), expect);
            }
        }

        #[test]
        fn prop_ops_stay_in_domain(seed in 0u64..500) {
            let params = DelugeParams {
                entities: 64,
                ticks: 4,
                ops_per_tick: 64,
                seed,
                ..Default::default()
            };
            let trace = generate(&params);
            for tick in &trace.ticks {
                for op in &tick.ops {
                    prop_assert!((op.entity() as usize) < params.entities);
                    match *op {
                        DelugeOp::Move { to, .. } => {
                            prop_assert!(to.x >= 0.0 && to.x <= params.world_side);
                            prop_assert!(to.y >= 0.0 && to.y <= params.world_side);
                        }
                        DelugeOp::Attr { name, value, .. } => {
                            prop_assert!((name as usize) < ATTR_NAMES.len());
                            prop_assert!((0.0..100.0).contains(&value));
                        }
                    }
                }
            }
        }
    }
}
