//! The §II metaverse marketplace, with the §IV-E flash-sale burst.
//!
//! *"during the sales, metaverse databases need to handle large amounts
//! of requests not only from the virtual shop, but also from the
//! physical shop"*. The generator produces a request stream with a
//! baseline Poisson rate that multiplies during the sale window, product
//! popularity following Zipf, and a physical/virtual shopper mix.

use mv_common::sample::{exp_sample, Zipf};
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use mv_common::Space;
use rand::Rng;

/// Marketplace parameters.
#[derive(Debug, Clone)]
pub struct MarketParams {
    /// Distinct products.
    pub products: usize,
    /// Zipf skew of product popularity.
    pub zipf_alpha: f64,
    /// Baseline request rate (requests per second).
    pub base_rate: f64,
    /// Rate multiplier during the sale window.
    pub burst_multiplier: f64,
    /// Sale window `(start, end)`.
    pub sale_window: (SimTime, SimTime),
    /// Total generated duration.
    pub duration: SimDuration,
    /// Fraction of requests from physical shoppers.
    pub physical_fraction: f64,
    /// Mean request service time (for serverless sizing).
    pub service_time: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MarketParams {
    fn default() -> Self {
        MarketParams {
            products: 1_000,
            zipf_alpha: 1.0,
            base_rate: 50.0,
            burst_multiplier: 20.0,
            sale_window: (SimTime::from_secs(30), SimTime::from_secs(60)),
            duration: SimDuration::from_secs(90),
            physical_fraction: 0.3,
            service_time: SimDuration::from_millis(20),
            seed: 13,
        }
    }
}

/// One purchase request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaleRequest {
    /// Arrival time.
    pub ts: SimTime,
    /// Product rank (0 = hottest).
    pub product: usize,
    /// Requesting shopper's space.
    pub space: Space,
    /// Service time of this request.
    pub service: SimDuration,
}

/// The generated workload.
#[derive(Debug)]
pub struct FlashSale {
    /// Time-ordered requests.
    pub requests: Vec<SaleRequest>,
    /// The parameters used.
    pub params: MarketParams,
}

impl FlashSale {
    /// Generate the request stream.
    pub fn generate(params: &MarketParams) -> Self {
        let mut rng = seeded_rng(params.seed);
        let zipf = Zipf::new(params.products, params.zipf_alpha);
        let mut requests = Vec::new();
        let mut t_us = 0.0f64;
        let end_us = params.duration.as_micros() as f64;
        while t_us < end_us {
            let now = SimTime::from_micros(t_us as u64);
            let in_sale = now >= params.sale_window.0 && now < params.sale_window.1;
            let rate =
                params.base_rate * if in_sale { params.burst_multiplier } else { 1.0 };
            // Poisson arrivals at the current rate.
            t_us += exp_sample(&mut rng, 1e6 / rate);
            if t_us >= end_us {
                break;
            }
            let space = if rng.gen_bool(params.physical_fraction) {
                Space::Physical
            } else {
                Space::Virtual
            };
            // Service times: exponential around the mean.
            let service = SimDuration::from_micros(
                exp_sample(&mut rng, params.service_time.as_micros() as f64) as u64 + 1,
            );
            requests.push(SaleRequest {
                ts: SimTime::from_micros(t_us as u64),
                product: zipf.sample(&mut rng),
                space,
                service,
            });
        }
        FlashSale { requests, params: params.clone() }
    }

    /// Requests within a time window.
    pub fn requests_between(&self, from: SimTime, to: SimTime) -> usize {
        self.requests.iter().filter(|r| r.ts >= from && r.ts < to).count()
    }

    /// Offered rate (req/s) inside vs. outside the sale window.
    pub fn burst_ratio(&self) -> f64 {
        let (s, e) = self.params.sale_window;
        let sale_secs = e.since(s).as_secs_f64();
        let total_secs = self.params.duration.as_secs_f64();
        let in_sale = self.requests_between(s, e) as f64 / sale_secs;
        let outside = (self.requests.len() - self.requests_between(s, e)) as f64
            / (total_secs - sale_secs);
        if outside == 0.0 {
            f64::INFINITY
        } else {
            in_sale / outside
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_multiplies_the_rate() {
        let sale = FlashSale::generate(&MarketParams::default());
        let ratio = sale.burst_ratio();
        assert!(
            (10.0..40.0).contains(&ratio),
            "configured 20x burst, measured {ratio}"
        );
    }

    #[test]
    fn requests_are_time_ordered_and_in_domain() {
        let sale = FlashSale::generate(&MarketParams::default());
        assert!(sale.requests.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(sale.requests.iter().all(|r| r.product < 1_000));
        assert!(!sale.requests.is_empty());
    }

    #[test]
    fn hot_products_dominate() {
        let sale = FlashSale::generate(&MarketParams::default());
        let hot = sale.requests.iter().filter(|r| r.product < 10).count();
        assert!(
            hot * 3 > sale.requests.len(),
            "top-10 products should draw >1/3 of traffic, got {hot}/{}",
            sale.requests.len()
        );
    }

    #[test]
    fn space_mix_matches_fraction() {
        let sale = FlashSale::generate(&MarketParams {
            physical_fraction: 0.5,
            ..Default::default()
        });
        let phys = sale.requests.iter().filter(|r| r.space == Space::Physical).count();
        let frac = phys as f64 / sale.requests.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "physical fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FlashSale::generate(&MarketParams::default());
        let b = FlashSale::generate(&MarketParams::default());
        assert_eq!(a.requests, b.requests);
    }
}
