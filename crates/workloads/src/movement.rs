//! Random-waypoint movement.
//!
//! The standard mobility model: each mover picks a waypoint uniformly in
//! the field, walks toward it at its speed, and picks a new one on
//! arrival. Deterministic per seed; `step` advances all movers by `dt`
//! seconds and returns positions.

use mv_common::geom::{Aabb, Point};
use mv_common::seeded_rng;
use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
struct Mover {
    pos: Point,
    waypoint: Point,
    speed: f64, // m/s
}

/// A field of random-waypoint movers.
#[derive(Debug)]
pub struct MoverField {
    bounds: Aabb,
    movers: Vec<Mover>,
    rng: StdRng,
}

impl MoverField {
    /// Create `n` movers within `bounds` with speeds in `speed_range`.
    pub fn new(bounds: Aabb, n: usize, speed_range: (f64, f64), seed: u64) -> Self {
        assert!(speed_range.0 > 0.0 && speed_range.1 >= speed_range.0);
        let mut rng = seeded_rng(seed);
        let movers = (0..n)
            .map(|_| {
                let pos = Point::new(
                    rng.gen_range(bounds.lo.x..bounds.hi.x),
                    rng.gen_range(bounds.lo.y..bounds.hi.y),
                );
                let waypoint = Point::new(
                    rng.gen_range(bounds.lo.x..bounds.hi.x),
                    rng.gen_range(bounds.lo.y..bounds.hi.y),
                );
                Mover { pos, waypoint, speed: rng.gen_range(speed_range.0..=speed_range.1) }
            })
            .collect();
        MoverField { bounds, movers, rng }
    }

    /// Number of movers.
    pub fn len(&self) -> usize {
        self.movers.len()
    }

    /// True when the field has no movers.
    pub fn is_empty(&self) -> bool {
        self.movers.is_empty()
    }

    /// Current positions.
    pub fn positions(&self) -> Vec<Point> {
        self.movers.iter().map(|m| m.pos).collect()
    }

    /// Advance all movers by `dt` seconds; returns `(index, new_pos)` for
    /// every mover (they all move every step).
    pub fn step(&mut self, dt: f64) -> Vec<(usize, Point)> {
        let mut out = Vec::with_capacity(self.movers.len());
        for (i, m) in self.movers.iter_mut().enumerate() {
            let mut remaining = m.speed * dt;
            while remaining > 0.0 {
                let to_wp = m.waypoint.sub(m.pos);
                let dist = to_wp.norm();
                if dist <= remaining {
                    m.pos = m.waypoint;
                    remaining -= dist;
                    m.waypoint = Point::new(
                        self.rng.gen_range(self.bounds.lo.x..self.bounds.hi.x),
                        self.rng.gen_range(self.bounds.lo.y..self.bounds.hi.y),
                    );
                } else {
                    m.pos = m.pos.add(to_wp.normalized().scale(remaining));
                    remaining = 0.0;
                }
            }
            out.push((i, m.pos));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> MoverField {
        MoverField::new(
            Aabb::new(Point::ORIGIN, Point::new(100.0, 100.0)),
            50,
            (1.0, 3.0),
            7,
        )
    }

    #[test]
    fn movers_stay_in_bounds() {
        let mut f = field();
        for _ in 0..200 {
            f.step(1.0);
        }
        for p in f.positions() {
            assert!((0.0..=100.0).contains(&p.x) && (0.0..=100.0).contains(&p.y), "{p:?}");
        }
    }

    #[test]
    fn step_distance_respects_speed() {
        let mut f = field();
        let before = f.positions();
        f.step(2.0);
        let after = f.positions();
        for (b, a) in before.iter().zip(&after) {
            // Max speed 3 m/s × 2 s = 6 m (waypoint turns only shorten
            // the straight-line displacement).
            assert!(b.dist(*a) <= 6.0 + 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = field();
        let mut b = field();
        a.step(1.0);
        b.step(1.0);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn movers_actually_move() {
        let mut f = field();
        let before = f.positions();
        f.step(1.0);
        let moved = f
            .positions()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.dist(**b) > 0.0)
            .count();
        assert_eq!(moved, 50);
    }
}
