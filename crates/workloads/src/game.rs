//! §II location-based gaming.
//!
//! Players roam a city grid (random waypoint); points of interest (POIs
//! — gyms, spawn points, quests) are scattered with hot spots; an
//! *encounter* fires when a player comes within trigger range of a POI.
//! The workload exercises moving-queries-over-moving-objects (each
//! player's view is a moving range query) and the pub/sub layer
//! (encounters publish geo-textual events).

use crate::movement::MoverField;
use mv_common::geom::{Aabb, Point};
use mv_common::sample::Zipf;
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use rand::Rng;

/// Game parameters.
#[derive(Debug, Clone)]
pub struct GameParams {
    /// Players in the city.
    pub players: usize,
    /// Points of interest.
    pub pois: usize,
    /// City side length, metres.
    pub city_side: f64,
    /// Encounter trigger radius.
    pub trigger_radius: f64,
    /// Tick interval.
    pub tick: SimDuration,
    /// Session length.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GameParams {
    fn default() -> Self {
        GameParams {
            players: 200,
            pois: 100,
            city_side: 5_000.0,
            trigger_radius: 30.0,
            tick: SimDuration::from_millis(500),
            duration: SimDuration::from_secs(60),
            seed: 17,
        }
    }
}

/// An encounter between a player and a POI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Encounter {
    /// When.
    pub ts: SimTime,
    /// Player index.
    pub player: usize,
    /// POI index.
    pub poi: usize,
}

/// The generated session.
#[derive(Debug)]
pub struct GameWorkload {
    /// POI positions (static).
    pub pois: Vec<Point>,
    /// Player position reports: `(time, player, pos)`.
    pub movements: Vec<(SimTime, usize, Point)>,
    /// Encounters, time-ordered.
    pub encounters: Vec<Encounter>,
}

impl GameWorkload {
    /// Generate a session.
    pub fn generate(params: &GameParams) -> Self {
        let bounds = Aabb::new(Point::ORIGIN, Point::new(params.city_side, params.city_side));
        let mut rng = seeded_rng(params.seed);
        // POIs cluster: a few hot plazas attract many POIs.
        let hot = Zipf::new(16, 1.2);
        let plazas: Vec<Point> = (0..16)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..params.city_side),
                    rng.gen_range(0.0..params.city_side),
                )
            })
            .collect();
        let pois: Vec<Point> = (0..params.pois)
            .map(|_| {
                let plaza = plazas[hot.sample(&mut rng)];
                Point::new(
                    (plaza.x + rng.gen_range(-200.0..200.0)).clamp(0.0, params.city_side),
                    (plaza.y + rng.gen_range(-200.0..200.0)).clamp(0.0, params.city_side),
                )
            })
            .collect();

        let mut players =
            MoverField::new(bounds, params.players, (1.0, 2.5), params.seed ^ 0xabc);
        let mut movements = Vec::new();
        let mut encounters = Vec::new();
        // Cooldown: one encounter per (player, poi) per minute of game time.
        let mut last_hit: std::collections::BTreeMap<(usize, usize), SimTime> =
            Default::default();
        let steps = params.duration.as_micros() / params.tick.as_micros();
        let dt = params.tick.as_secs_f64();
        let r2 = params.trigger_radius * params.trigger_radius;
        for s in 1..=steps {
            let now = SimTime::ZERO + params.tick.mul_f64(s as f64);
            for (i, p) in players.step(dt) {
                movements.push((now, i, p));
                for (j, poi) in pois.iter().enumerate() {
                    if p.dist_sq(*poi) <= r2 {
                        let ok = last_hit
                            .get(&(i, j))
                            .is_none_or(|&t| now.since(t) > SimDuration::from_secs(60));
                        if ok {
                            last_hit.insert((i, j), now);
                            encounters.push(Encounter { ts: now, player: i, poi: j });
                        }
                    }
                }
            }
        }
        GameWorkload { pois, movements, encounters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_produces_movement_and_encounters() {
        let w = GameWorkload::generate(&GameParams::default());
        assert_eq!(w.pois.len(), 100);
        assert_eq!(w.movements.len(), 200 * 120); // players × ticks
        assert!(!w.encounters.is_empty(), "an hour of roaming should hit POIs");
        assert!(w.encounters.windows(2).all(|e| e[0].ts <= e[1].ts));
    }

    #[test]
    fn encounters_respect_trigger_radius() {
        let params = GameParams::default();
        let w = GameWorkload::generate(&params);
        // Reconstruct positions at encounter times.
        let pos_at: std::collections::BTreeMap<(u64, usize), Point> = w
            .movements
            .iter()
            .map(|(t, i, p)| ((t.as_micros(), *i), *p))
            .collect();
        for e in &w.encounters {
            let p = pos_at[&(e.ts.as_micros(), e.player)];
            assert!(
                p.dist(w.pois[e.poi]) <= params.trigger_radius + 1e-9,
                "encounter outside radius"
            );
        }
    }

    #[test]
    fn cooldown_prevents_duplicate_spam() {
        let w = GameWorkload::generate(&GameParams::default());
        // No (player, poi) pair may fire twice within 60 s.
        let mut last: std::collections::BTreeMap<(usize, usize), SimTime> = Default::default();
        for e in &w.encounters {
            if let Some(prev) = last.get(&(e.player, e.poi)) {
                assert!(e.ts.since(*prev) > SimDuration::from_secs(60));
            }
            last.insert((e.player, e.poi), e.ts);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GameWorkload::generate(&GameParams::default());
        let b = GameWorkload::generate(&GameParams::default());
        assert_eq!(a.encounters, b.encounters);
    }
}
