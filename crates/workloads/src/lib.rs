#![forbid(unsafe_code)]
//! `mv-workloads` — generators for the paper's five §II scenarios.
//!
//! Every experiment needs realistic load *shapes*; these generators are
//! the substitution (DESIGN.md §2) for the production traces we do not
//! have. All are seeded and deterministic.
//!
//! * [`movement`] — random-waypoint movers (players, shoppers, troops);
//! * [`military`] — the §II military exercise: a physical 5 km × 5 km
//!   sub-exercise inside a 100 km × 100 km virtual theatre;
//! * [`marketplace`] — the §II metaverse mall, including the §IV-E
//!   "Black Friday" flash-sale burst from both spaces;
//! * [`game`] — §II location-based gaming: players roaming a city grid
//!   with points of interest and encounters;
//! * [`healthcare`] — §II smart healthcare: vital-sign streams with
//!   injected anomalies for remote monitoring;
//! * [`smartcity`] — §II smart city: a sensor grid with Zipf-skewed hot
//!   cells and diurnal rates;
//! * [`deluge`] — the §III data deluge itself: a million-entity
//!   update/query storm with Zipf(0.9) entity skew and flash-crowd
//!   bursts, driving the macro-benchmark (DESIGN.md §13).

pub mod deluge;
pub mod game;
pub mod healthcare;
pub mod marketplace;
pub mod military;
pub mod movement;
pub mod smartcity;

pub use deluge::{DelugeOp, DelugeParams, DelugeTrace};
pub use game::{GameParams, GameWorkload};
pub use healthcare::{HealthParams, VitalsStream};
pub use marketplace::{FlashSale, MarketParams};
pub use military::{ExerciseParams, MilitaryExercise};
pub use movement::MoverField;
pub use smartcity::{SensorField, SmartCityParams};
