//! The §II military exercise scenario.
//!
//! *"a physical exercise over a physical space of 5 km by 5 km compared
//! to a virtual model that simulates a war over 100 km by 100 km space"*:
//! physical troops and vehicles move in the small box and are tracked by
//! sensors; virtual forces manoeuvre across the full theatre; the
//! command centre periodically orders virtual air-raids that must be
//! relayed to the ground.

use crate::movement::MoverField;
use mv_common::geom::{Aabb, Point};
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use rand::Rng;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ExerciseParams {
    /// Physical troops in the 5 km box.
    pub physical_troops: usize,
    /// Virtual units across the theatre.
    pub virtual_units: usize,
    /// Sensor report interval.
    pub report_interval: SimDuration,
    /// Exercise length.
    pub duration: SimDuration,
    /// Mean time between virtual strikes.
    pub strike_interval: SimDuration,
    /// Strike blast radius, metres.
    pub blast_radius: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExerciseParams {
    fn default() -> Self {
        ExerciseParams {
            physical_troops: 500,
            virtual_units: 5_000,
            report_interval: SimDuration::from_millis(1000),
            duration: SimDuration::from_secs(120),
            strike_interval: SimDuration::from_secs(15),
            blast_radius: 250.0,
            seed: 3,
        }
    }
}

/// One timeline item of the exercise.
#[derive(Debug, Clone, PartialEq)]
pub enum ExerciseOp {
    /// A sensed physical position report: (troop index, position).
    PhysicalReport(usize, Point),
    /// A virtual unit manoeuvre: (unit index, position).
    VirtualMove(usize, Point),
    /// A commanded strike at a point in the virtual theatre.
    Strike(Point),
}

/// The generated exercise: a time-ordered operation stream.
#[derive(Debug)]
pub struct MilitaryExercise {
    /// Physical sub-exercise bounds (5 km box at the theatre's centre).
    pub physical_bounds: Aabb,
    /// Full virtual theatre (100 km box).
    pub theatre_bounds: Aabb,
    /// Time-ordered `(time, op)` stream.
    pub timeline: Vec<(SimTime, ExerciseOp)>,
    /// Strike blast radius.
    pub blast_radius: f64,
}

impl MilitaryExercise {
    /// Generate the exercise.
    pub fn generate(params: &ExerciseParams) -> Self {
        let theatre = Aabb::new(Point::ORIGIN, Point::new(100_000.0, 100_000.0));
        let physical = Aabb::new(Point::new(47_500.0, 47_500.0), Point::new(52_500.0, 52_500.0));
        let mut rng = seeded_rng(params.seed);
        let mut troops =
            MoverField::new(physical, params.physical_troops, (1.0, 2.0), params.seed ^ 1);
        let mut units =
            MoverField::new(theatre, params.virtual_units, (5.0, 15.0), params.seed ^ 2);

        let mut timeline = Vec::new();
        let steps = params.duration.as_micros() / params.report_interval.as_micros();
        let dt = params.report_interval.as_secs_f64();
        let mut next_strike = params.strike_interval.mul_f64(rng.gen_range(0.5..1.5));
        for s in 1..=steps {
            let now = SimTime::ZERO + params.report_interval.mul_f64(s as f64);
            for (i, p) in troops.step(dt) {
                timeline.push((now, ExerciseOp::PhysicalReport(i, p)));
            }
            for (i, p) in units.step(dt) {
                timeline.push((now, ExerciseOp::VirtualMove(i, p)));
            }
            if SimTime::ZERO + next_strike <= now {
                // Strikes concentrate near the physical box: the virtual
                // commander targets the contested ground.
                let target = Point::new(
                    rng.gen_range(physical.lo.x - 2_000.0..physical.hi.x + 2_000.0),
                    rng.gen_range(physical.lo.y - 2_000.0..physical.hi.y + 2_000.0),
                );
                timeline.push((now, ExerciseOp::Strike(target)));
                next_strike = next_strike + params.strike_interval.mul_f64(rng.gen_range(0.5..1.5));
            }
        }
        MilitaryExercise {
            physical_bounds: physical,
            theatre_bounds: theatre,
            timeline,
            blast_radius: params.blast_radius,
        }
    }

    /// Count of each op kind (diagnostics).
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let mut reports = 0;
        let mut moves = 0;
        let mut strikes = 0;
        for (_, op) in &self.timeline {
            match op {
                ExerciseOp::PhysicalReport(..) => reports += 1,
                ExerciseOp::VirtualMove(..) => moves += 1,
                ExerciseOp::Strike(_) => strikes += 1,
            }
        }
        (reports, moves, strikes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_and_bounds_match_the_paper() {
        let ex = MilitaryExercise::generate(&ExerciseParams {
            physical_troops: 50,
            virtual_units: 200,
            duration: SimDuration::from_secs(10),
            ..Default::default()
        });
        assert_eq!(ex.theatre_bounds.area(), 1e10); // 100 km × 100 km
        assert_eq!(ex.physical_bounds.area(), 25e6); // 5 km × 5 km
        assert!(ex.theatre_bounds.contains_box(&ex.physical_bounds));
        for (_, op) in &ex.timeline {
            match op {
                ExerciseOp::PhysicalReport(_, p) => {
                    assert!(ex.physical_bounds.contains(*p), "{p:?} outside physical box")
                }
                ExerciseOp::VirtualMove(_, p) => assert!(ex.theatre_bounds.contains(*p)),
                ExerciseOp::Strike(_) => {}
            }
        }
    }

    #[test]
    fn timeline_is_time_ordered_and_complete() {
        let ex = MilitaryExercise::generate(&ExerciseParams {
            physical_troops: 10,
            virtual_units: 20,
            duration: SimDuration::from_secs(30),
            ..Default::default()
        });
        assert!(ex.timeline.windows(2).all(|w| w[0].0 <= w[1].0));
        let (reports, moves, strikes) = ex.op_counts();
        assert_eq!(reports, 10 * 30);
        assert_eq!(moves, 20 * 30);
        assert!(strikes >= 1, "a 30 s exercise should see a strike");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ExerciseParams {
            physical_troops: 5,
            virtual_units: 5,
            duration: SimDuration::from_secs(5),
            ..Default::default()
        };
        let a = MilitaryExercise::generate(&p);
        let b = MilitaryExercise::generate(&p);
        assert_eq!(a.timeline, b.timeline);
    }
}
