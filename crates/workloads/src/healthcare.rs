//! §II smart healthcare: remote vital-sign monitoring.
//!
//! Patients stream heart-rate samples; a configurable fraction of
//! patients develop tachycardia episodes (sustained elevated rate) that
//! a monitoring pipeline must detect. The ground truth (episode windows)
//! is kept so detection precision/recall is measurable.

use mv_common::sample::normal_sample;
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use mv_stream::StreamRecord;
use rand::Rng;

/// Parameters.
#[derive(Debug, Clone)]
pub struct HealthParams {
    /// Monitored patients.
    pub patients: usize,
    /// Sampling interval per patient.
    pub sample_interval: SimDuration,
    /// Monitoring duration.
    pub duration: SimDuration,
    /// Fraction of patients who develop an episode.
    pub episode_fraction: f64,
    /// Episode length.
    pub episode_len: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HealthParams {
    fn default() -> Self {
        HealthParams {
            patients: 100,
            sample_interval: SimDuration::from_millis(1000),
            duration: SimDuration::from_secs(300),
            episode_fraction: 0.15,
            episode_len: SimDuration::from_secs(40),
            seed: 23,
        }
    }
}

/// An episode's ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// Patient index.
    pub patient: usize,
    /// Start.
    pub start: SimTime,
    /// End.
    pub end: SimTime,
}

/// The generated vitals stream.
#[derive(Debug)]
pub struct VitalsStream {
    /// Heart-rate records (key = patient index).
    pub records: Vec<StreamRecord>,
    /// Ground-truth episodes.
    pub episodes: Vec<Episode>,
}

impl VitalsStream {
    /// Generate.
    pub fn generate(params: &HealthParams) -> Self {
        let mut rng = seeded_rng(params.seed);
        let mut episodes = Vec::new();
        let mut per_patient_baseline = Vec::with_capacity(params.patients);
        for p in 0..params.patients {
            per_patient_baseline.push(normal_sample(&mut rng, 72.0, 6.0));
            if rng.gen_bool(params.episode_fraction) {
                let latest_start =
                    params.duration.as_micros().saturating_sub(params.episode_len.as_micros());
                let start = SimTime::from_micros(rng.gen_range(0..latest_start.max(1)));
                episodes.push(Episode { patient: p, start, end: start + params.episode_len });
            }
        }
        let mut records = Vec::new();
        let steps = params.duration.as_micros() / params.sample_interval.as_micros();
        for s in 0..steps {
            let now = SimTime::ZERO + params.sample_interval.mul_f64(s as f64);
            for (p, baseline) in per_patient_baseline.iter().enumerate() {
                let in_episode = episodes
                    .iter()
                    .any(|e| e.patient == p && now >= e.start && now < e.end);
                let mean = if in_episode { 135.0 } else { *baseline };
                let hr = normal_sample(&mut rng, mean, 4.0).max(30.0);
                records.push(StreamRecord::physical(now, p as u64, hr));
            }
        }
        VitalsStream { records, episodes }
    }

    /// Simple threshold detector: patient flagged when a window-mean of
    /// `window` samples exceeds `threshold`. Returns flagged patients.
    pub fn detect(&self, threshold: f64, window: usize) -> Vec<usize> {
        let mut per_patient: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
        for r in &self.records {
            per_patient.entry(r.key).or_default().push(r.value);
        }
        let mut flagged = Vec::new();
        for (p, vals) in per_patient {
            let hit = vals
                .windows(window)
                .any(|w| w.iter().sum::<f64>() / window as f64 > threshold);
            if hit {
                flagged.push(p as usize);
            }
        }
        flagged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_catches_episodes_with_high_precision() {
        let v = VitalsStream::generate(&HealthParams::default());
        assert!(!v.episodes.is_empty());
        let flagged = v.detect(110.0, 5);
        let truth: std::collections::BTreeSet<usize> =
            v.episodes.iter().map(|e| e.patient).collect();
        let tp = flagged.iter().filter(|p| truth.contains(p)).count();
        let recall = tp as f64 / truth.len() as f64;
        let precision = if flagged.is_empty() { 1.0 } else { tp as f64 / flagged.len() as f64 };
        assert!(recall > 0.9, "recall {recall}");
        assert!(precision > 0.9, "precision {precision}");
    }

    #[test]
    fn healthy_patients_stay_in_range() {
        let v = VitalsStream::generate(&HealthParams {
            episode_fraction: 0.0,
            ..Default::default()
        });
        assert!(v.episodes.is_empty());
        assert!(v.detect(110.0, 5).is_empty());
        let max = v.records.iter().map(|r| r.value).fold(0.0, f64::max);
        assert!(max < 110.0, "healthy max HR {max}");
    }

    #[test]
    fn record_volume_matches_schedule() {
        let params = HealthParams {
            patients: 10,
            duration: SimDuration::from_secs(30),
            ..Default::default()
        };
        let v = VitalsStream::generate(&params);
        assert_eq!(v.records.len(), 10 * 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = VitalsStream::generate(&HealthParams::default());
        let b = VitalsStream::generate(&HealthParams::default());
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.episodes, b.episodes);
        assert_eq!(a.records[0], b.records[0]);
    }
}
