//! Lightweight metrics: counters and streaming histograms.
//!
//! Every experiment harness reports latency percentiles and throughput;
//! [`Histogram`] keeps raw samples (experiments are bounded, so memory is
//! fine) and computes exact quantiles, which keeps the reported tables
//! honest — no HDR bucketing error to explain away.

use std::fmt;

/// An exact-quantile histogram over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty histogram with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Histogram { samples: Vec::with_capacity(cap), sorted: true }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().cloned().fold(f64::INFINITY, f64::min)
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// Exact quantile `q in [0,1]` by nearest-rank (0 when empty).
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// Interpolated percentile `p in [0,100]` (0 when empty).
    ///
    /// Uses the linear-interpolation definition (R-7): rank
    /// `r = (n-1)·p/100`; when `r` lands exactly on a sample index the
    /// sample is returned as-is, otherwise the two neighbours are
    /// blended by the fractional rank. The exact-boundary case matters:
    /// interpolating `lo + (samples[hi] - samples[lo]) * frac` with
    /// `frac == 0` must not peek at `samples[lo + 1]` — for `p = 100`
    /// that index is out of bounds, and for interior boundary ranks it
    /// silently blended in the next sample under FP rounding.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = (self.samples.len() as f64 - 1.0) * p / 100.0;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            // Exact-boundary rank: the percentile *is* this sample.
            return self.samples[lo];
        }
        let frac = rank - lo as f64;
        self.samples[lo] + (self.samples[hi] - self.samples[lo]) * frac
    }

    /// Median.
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.50)
    }
    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }
    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Drop all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut h = self.clone();
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            h.count(),
            h.mean(),
            h.p50(),
            h.p95(),
            h.p99(),
            h.max()
        )
    }
}

/// A named set of monotonically increasing counters with deterministic
/// iteration order (BTreeMap), used for experiment accounting (messages
/// sent, bytes saved, cache hits…).
#[derive(Debug, Clone, Default)]
pub struct Counters {
    inner: std::collections::BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.inner.entry(name).or_insert(0) += delta;
    }

    /// Increment counter `name` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.get(name).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.inner.iter().map(|(k, v)| (*k, *v))
    }

    /// Merge another counter set into this one (summing shared names).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_exact() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.p50(), 3.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_max_of_all_negative_samples() {
        // Regression: max() used to fold from 0.0, so a histogram holding
        // only negative samples (e.g. signed divergence deltas) reported a
        // phantom maximum of 0.0 instead of its true largest sample.
        let mut h = Histogram::new();
        h.record(-5.0);
        h.record(-2.0);
        h.record(-9.0);
        assert_eq!(h.max(), -2.0);
        assert_eq!(h.min(), -9.0);
        // Empty stays 0, mirroring min()/mean().
        assert_eq!(Histogram::new().max(), 0.0);
    }

    #[test]
    fn percentile_exact_boundary_rank_returns_the_sample() {
        // Regression: when (n-1)·p/100 lands exactly on a sample index,
        // percentile() must return that sample verbatim — no
        // interpolation against a neighbour (which reads one past the
        // end at p=100 and skews interior boundary ranks).
        let mut h = Histogram::new();
        for v in [10.0, 20.0, 30.0, 40.0, 50.0] {
            h.record(v);
        }
        // (5-1)·25/100 = 1.0 exactly → samples[1].
        assert_eq!(h.percentile(25.0), 20.0);
        assert_eq!(h.percentile(50.0), 30.0);
        assert_eq!(h.percentile(75.0), 40.0);
        // Endpoints are exact boundaries too.
        assert_eq!(h.percentile(0.0), 10.0);
        assert_eq!(h.percentile(100.0), 50.0);
        // Interior non-boundary ranks interpolate linearly:
        // rank = 4·62.5/100 = 2.5 → midway between 30 and 40.
        assert_eq!(h.percentile(62.5), 35.0);
        // Out-of-range p clamps.
        assert_eq!(h.percentile(-5.0), 10.0);
        assert_eq!(h.percentile(250.0), 50.0);
        // Empty histogram mirrors quantile().
        assert_eq!(Histogram::new().percentile(50.0), 0.0);
        // Single sample: every p is a boundary.
        let mut one = Histogram::new();
        one.record(7.0);
        assert_eq!(one.percentile(100.0), 7.0);
        assert_eq!(one.percentile(37.0), 7.0);
    }

    #[test]
    fn histogram_merge_combines() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn histogram_interleaved_record_and_quantile() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.p50(), 10.0);
        h.record(0.0); // must re-sort lazily
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut c = Counters::new();
        c.incr("msgs");
        c.add("msgs", 2);
        c.add("bytes", 100);
        assert_eq!(c.get("msgs"), 3);
        assert_eq!(c.get("missing"), 0);
        let mut d = Counters::new();
        d.add("msgs", 7);
        c.merge(&d);
        assert_eq!(c.get("msgs"), 10);
        assert_eq!(c.to_string(), "bytes=100 msgs=10");
    }
}
