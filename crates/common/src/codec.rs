//! Checked narrowing for wire-format fields.
//!
//! Every encoder in the workspace frames variable-length data with a
//! `u32` length prefix (and a few other `u32` wire fields: counts,
//! shard indices). Writing `len as u32` at each site silently truncates
//! if a payload ever crosses 4 GiB — the frame would decode as a
//! *shorter* record and the checksum of the remainder would fail in a
//! way that looks like corruption, not like an oversized write. The
//! workspace lint (`cast-truncation`) bans the bare cast on codec
//! paths; this helper is the sanctioned spelling.

/// Convert a `usize` destined for a `u32` wire field (length prefix,
/// count, shard index), checking the narrowing.
///
/// Debug builds assert; release builds saturate to `u32::MAX`, which a
/// reader's bounds check then rejects as a hostile length instead of
/// mis-framing the stream. For every value this workspace actually
/// produces (payloads are far below 4 GiB) the result is bit-identical
/// to the old `as u32` cast, so experiment output does not move.
#[inline]
pub fn wire_u32(n: usize) -> u32 {
    debug_assert!(
        u64::try_from(n).unwrap_or(u64::MAX) <= u64::from(u32::MAX),
        "value {n} exceeds the u32 wire field"
    );
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_u32_is_identity_in_range() {
        for n in [0usize, 1, 251, 65_535, 1 << 20] {
            assert_eq!(wire_u32(n), n as u32);
        }
        assert_eq!(wire_u32(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn wire_u32_saturates_in_release() {
        assert_eq!(wire_u32(usize::MAX), u32::MAX);
    }
}
