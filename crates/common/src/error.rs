//! Workspace-wide error type.
//!
//! Library code in every `mv-*` crate returns [`MvResult`] on fallible user
//! paths instead of panicking; the variants are deliberately coarse — this
//! is a research platform, not a service — but each carries enough context
//! to diagnose a failing experiment.

use std::fmt;

/// Convenient alias used across the workspace.
pub type MvResult<T> = Result<T, MvError>;

/// The error type shared by every crate in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MvError {
    /// A lookup referenced an id that does not exist.
    NotFound { kind: &'static str, id: u64 },
    /// An operation conflicts with concurrent state (e.g. write-write
    /// conflict under snapshot isolation, or a double registration).
    Conflict(String),
    /// The caller supplied an argument outside the accepted domain.
    InvalidArgument(String),
    /// A transaction or protocol round was aborted.
    Aborted(String),
    /// Verification of a cryptographic proof or checksum failed.
    VerificationFailed(String),
    /// A resource limit (capacity, quota, bound) was exceeded.
    Exhausted(String),
    /// A network partition or unreachable node prevented the operation.
    Unreachable { node: u64 },
    /// The component is in a state that does not permit the operation.
    IllegalState(String),
}

impl fmt::Display for MvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvError::NotFound { kind, id } => write!(f, "{kind} {id} not found"),
            MvError::Conflict(m) => write!(f, "conflict: {m}"),
            MvError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            MvError::Aborted(m) => write!(f, "aborted: {m}"),
            MvError::VerificationFailed(m) => write!(f, "verification failed: {m}"),
            MvError::Exhausted(m) => write!(f, "exhausted: {m}"),
            MvError::Unreachable { node } => write!(f, "node {node} unreachable"),
            MvError::IllegalState(m) => write!(f, "illegal state: {m}"),
        }
    }
}

impl std::error::Error for MvError {}

impl MvError {
    /// Shorthand for a [`MvError::NotFound`].
    pub fn not_found(kind: &'static str, id: u64) -> Self {
        MvError::NotFound { kind, id }
    }

    /// True if this error represents a transient condition that a caller
    /// may reasonably retry (aborts and unreachability), as opposed to a
    /// programming or verification error.
    pub fn is_retryable(&self) -> bool {
        matches!(self, MvError::Aborted(_) | MvError::Unreachable { .. } | MvError::Conflict(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = MvError::not_found("entity", 7);
        assert_eq!(e.to_string(), "entity 7 not found");
        let e = MvError::Conflict("ww on key 3".into());
        assert!(e.to_string().contains("ww on key 3"));
    }

    #[test]
    fn retryability_classification() {
        assert!(MvError::Aborted("x".into()).is_retryable());
        assert!(MvError::Unreachable { node: 1 }.is_retryable());
        assert!(MvError::Conflict("x".into()).is_retryable());
        assert!(!MvError::VerificationFailed("x".into()).is_retryable());
        assert!(!MvError::InvalidArgument("x".into()).is_retryable());
    }
}
