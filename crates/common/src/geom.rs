//! 2-D geometry for the spatial substrate.
//!
//! The co-space scenarios (troop movement over a 100 km × 100 km theatre,
//! shoppers in a mall, players on a city grid, a virtual walkthrough) are
//! all fundamentally planar, so the platform standardizes on 2-D points
//! and axis-aligned boxes; a `z`/floor dimension, where needed (HDoV
//! walkthroughs), is modelled as discrete cells by the caller.

use serde::{Deserialize, Serialize};

/// A point (or free vector) in the plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Construct a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt on hot comparison paths).
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector addition. (Named like `std::ops::Add::add` on purpose: the
    /// call sites read as vector algebra; implementing the operator trait
    /// for a type that is both point and vector invites misuse.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Point) -> Point {
        Point::new(self.x + other.x, self.y + other.y)
    }

    /// Vector subtraction (`self - other`).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Point) -> Point {
        Point::new(self.x - other.x, self.y - other.y)
    }

    /// Scale by a factor.
    #[inline]
    pub fn scale(self, f: f64) -> Point {
        Point::new(self.x * f, self.y * f)
    }

    /// Vector length.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Unit vector in this direction (zero vector stays zero).
    pub fn normalized(self) -> Point {
        let n = self.norm();
        if n == 0.0 {
            Point::ORIGIN
        } else {
            self.scale(1.0 / n)
        }
    }

    /// Linear interpolation between `self` (t=0) and `other` (t=1).
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Clamp each coordinate into `[lo, hi]`.
    pub fn clamp(self, lo: f64, hi: f64) -> Point {
        Point::new(self.x.clamp(lo, hi), self.y.clamp(lo, hi))
    }
}

/// An axis-aligned bounding box, `lo` inclusive, `hi` inclusive.
///
/// Inclusive upper bounds make range queries over discretely sampled
/// positions unambiguous (a point lying exactly on the boundary belongs to
/// the box).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub lo: Point,
    pub hi: Point,
}

impl Aabb {
    /// Construct from corners; coordinates are reordered so `lo <= hi`.
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square box centred at `c` with half-extent `r`.
    pub fn centered(c: Point, r: f64) -> Self {
        Aabb::new(Point::new(c.x - r, c.y - r), Point::new(c.x + r, c.y + r))
    }

    /// The whole plane (useful as a query default).
    pub fn everything() -> Self {
        Aabb {
            lo: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
            hi: Point::new(f64::INFINITY, f64::INFINITY),
        }
    }

    /// Does the box contain `p`?
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Do the boxes overlap (boundary touch counts)?
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.lo.x <= other.hi.x
            && self.hi.x >= other.lo.x
            && self.lo.y <= other.hi.y
            && self.hi.y >= other.lo.y
    }

    /// Is `other` entirely inside `self`?
    #[inline]
    pub fn contains_box(&self, other: &Aabb) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// The smallest box covering both.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Grow to cover `p`.
    pub fn expand_to(&mut self, p: Point) {
        self.lo.x = self.lo.x.min(p.x);
        self.lo.y = self.lo.y.min(p.y);
        self.hi.x = self.hi.x.max(p.x);
        self.hi.y = self.hi.y.max(p.y);
    }

    /// Width × height.
    #[inline]
    pub fn area(&self) -> f64 {
        (self.hi.x - self.lo.x) * (self.hi.y - self.lo.y)
    }

    /// Half the perimeter (the R-tree split heuristic metric).
    #[inline]
    pub fn margin(&self) -> f64 {
        (self.hi.x - self.lo.x) + (self.hi.y - self.lo.y)
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) * 0.5, (self.lo.y + self.hi.y) * 0.5)
    }

    /// Area added by extending this box to also cover `other`.
    pub fn enlargement(&self, other: &Aabb) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Smallest distance from the box to point `p` (0 when inside) —
    /// the lower bound used by best-first kNN search.
    pub fn min_dist(&self, p: Point) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_algebra() {
        let a = Point::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dist(Point::ORIGIN), 5.0);
        assert_eq!(a.sub(a), Point::ORIGIN);
        assert_eq!(a.scale(2.0), Point::new(6.0, 8.0));
        let u = a.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Point::ORIGIN.normalized(), Point::ORIGIN);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn aabb_reorders_corners() {
        let b = Aabb::new(Point::new(5.0, -1.0), Point::new(-5.0, 1.0));
        assert_eq!(b.lo, Point::new(-5.0, -1.0));
        assert_eq!(b.hi, Point::new(5.0, 1.0));
        assert_eq!(b.area(), 20.0);
        assert_eq!(b.center(), Point::ORIGIN);
    }

    #[test]
    fn containment_is_boundary_inclusive() {
        let b = Aabb::new(Point::ORIGIN, Point::new(1.0, 1.0));
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(b.contains(Point::new(0.0, 0.5)));
        assert!(!b.contains(Point::new(1.0001, 0.5)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Aabb::new(Point::ORIGIN, Point::new(2.0, 2.0));
        let b = Aabb::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = Aabb::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&b);
        assert!(u.contains_box(&a) && u.contains_box(&b));
        assert_eq!(a.enlargement(&b), u.area() - a.area());
    }

    #[test]
    fn min_dist_lower_bound() {
        let b = Aabb::new(Point::ORIGIN, Point::new(1.0, 1.0));
        assert_eq!(b.min_dist(Point::new(0.5, 0.5)), 0.0);
        assert!((b.min_dist(Point::new(2.0, 1.0)) - 1.0).abs() < 1e-12);
        // Corner distance.
        assert!((b.min_dist(Point::new(2.0, 2.0)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn expand_to_covers_point() {
        let mut b = Aabb::centered(Point::ORIGIN, 1.0);
        b.expand_to(Point::new(5.0, -3.0));
        assert!(b.contains(Point::new(5.0, -3.0)));
        assert!(b.contains(Point::new(-1.0, 1.0)));
    }
}
