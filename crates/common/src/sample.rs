//! Skewed samplers for workload generation.
//!
//! The paper's §III observes that metaverse data "may break the 3Vs" —
//! workloads are bursty and heavily skewed (a flash sale concentrates on a
//! few hot products; a few city cells generate most sensor readings). The
//! generators in `mv-workloads` draw from the samplers here.

use rand::Rng;

/// A Zipf(α) sampler over `{0, 1, …, n-1}` using the classic rejection-free
/// inverse-CDF over precomputed cumulative weights.
///
/// Precomputation is O(n) once; sampling is O(log n) via binary search.
/// Rank 0 is the hottest item.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` items with exponent `alpha` (`alpha = 0`
    /// is uniform; typical hot-spot workloads use 0.8–1.2).
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(alpha >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against FP drift: the last entry must be exactly 1.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of items in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain has a single item.
    pub fn is_empty(&self) -> bool {
        false // construction forbids n == 0
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i >= self.cdf.len() {
            return 0.0;
        }
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Draw from an exponential distribution with the given mean.
///
/// Used for inter-arrival times (Poisson processes) throughout the
/// workload generators.
pub fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    // Inverse CDF; guard u away from 0 to avoid ln(0).
    let u: f64 = rng.gen::<f64>().max(1e-12);
    -mean * u.ln()
}

/// Draw from a normal distribution via Box–Muller (no extra deps).
pub fn normal_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Sample a symmetric Dirichlet(α) vector of length `k` (via Gamma(α,1)
/// draws using the Marsaglia–Tsang method for α ≥ 1 and the boost trick
/// for α < 1). Used for Non-IID data partitioning in `mv-collab`.
pub fn dirichlet_sample<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(alpha > 0.0 && k > 0);
    let mut draws: Vec<f64> = (0..k).map(|_| gamma_sample(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Degenerate fallback: uniform.
        return vec![1.0 / k as f64; k];
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Gamma(shape, 1) sampler (Marsaglia–Tsang).
pub fn gamma_sample<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0);
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = rng.gen::<f64>().max(1e-12);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal_sample(rng, 0.0, 1.0);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Laplace(0, b) noise — the local-differential-privacy mechanism used in
/// `mv-collab` (§IV-D: "differential privacy" as an emerging technology).
pub fn laplace_sample<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    let u: f64 = rng.gen::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).max(1e-12).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = seeded_rng(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999] * 10);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12, "pmf({i}) = {}", z.pmf(i));
        }
        assert_eq!(z.pmf(4), 0.0);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 0.9);
        let s: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_domain() {
        let z = Zipf::new(7, 1.5);
        let mut rng = seeded_rng(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn exp_sample_mean_is_close() {
        let mut rng = seeded_rng(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exp_sample(&mut rng, 10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = seeded_rng(4);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal_sample(&mut rng, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn dirichlet_sums_to_one_and_skews() {
        let mut rng = seeded_rng(5);
        let v = dirichlet_sample(&mut rng, 0.1, 8);
        assert_eq!(v.len(), 8);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // With alpha = 0.1 the mass should concentrate: max component big.
        let mx = v.iter().cloned().fold(0.0, f64::max);
        assert!(mx > 0.3, "expected concentration, max={mx}");
    }

    #[test]
    fn laplace_is_centered() {
        let mut rng = seeded_rng(6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| laplace_sample(&mut rng, 1.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
