#![forbid(unsafe_code)]
//! `mv-common` — shared substrate for the cospace platform.
//!
//! Every other crate in the workspace builds on the primitives defined here:
//!
//! * [`id`] — strongly-typed identifiers for entities, nodes, clients, …
//! * [`time`] — a discrete virtual clock ([`time::SimTime`]) so that all
//!   experiments are deterministic and independent of wall-clock jitter;
//! * [`hash`] — an FxHash-style fast hasher plus [`hash::FastMap`] /
//!   [`hash::FastSet`] aliases for hot paths (per the Rust perf guide,
//!   SipHash is needlessly slow for integer keys and HashDoS is not a
//!   concern inside a simulator);
//! * [`geom`] — 2-D points, bounding boxes and the little vector algebra
//!   the spatial crates need;
//! * [`sample`] — Zipf and other skewed samplers used by the workload
//!   generators;
//! * [`metrics`] — counters and streaming histograms (p50/p95/p99) used by
//!   every experiment harness;
//! * [`table`] — a tiny fixed-width table printer for experiment output;
//! * [`error`] — the workspace-wide error type [`MvError`];
//! * [`codec`] — checked narrowing helpers ([`codec::wire_u32`]) for the
//!   `u32` wire fields every encoder writes.
//!
//! The paper ("The Metaverse Data Deluge", ICDE 2023) describes data that
//! lives in two interacting spaces; the [`Space`] enum is the tag used
//! across the whole workspace to mark which side of the co-space a datum
//! originated from (§IV-F "Organization of Data").

pub mod codec;
pub mod error;
pub mod geom;
pub mod hash;
pub mod id;
pub mod metrics;
pub mod sample;
pub mod table;
pub mod time;

pub use error::{MvError, MvResult};

use serde::{Deserialize, Serialize};

/// Which side of the co-space a datum, user, or event belongs to.
///
/// The metaverse integrates a *physical* space (sensors, shoppers, troops)
/// with a *virtual* space (avatars, virtual shops, simulated forces).
/// §IV-F of the paper discusses whether data from the two spaces should be
/// stored together or apart; tagging every record with its `Space` is the
/// "unified" strategy and the cheapest to start from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Space {
    /// Originates from the physical world (sensed).
    Physical,
    /// Originates from the virtual world (computed / user-generated).
    Virtual,
}

impl Space {
    /// The other space.
    #[inline]
    pub fn other(self) -> Space {
        match self {
            Space::Physical => Space::Virtual,
            Space::Virtual => Space::Physical,
        }
    }

    /// All spaces, in a fixed order.
    pub const ALL: [Space; 2] = [Space::Physical, Space::Virtual];
}

impl std::fmt::Display for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Space::Physical => write!(f, "physical"),
            Space::Virtual => write!(f, "virtual"),
        }
    }
}

/// Construct the workspace-standard deterministic RNG from a seed.
///
/// All experiments and property tests derive their randomness from
/// explicitly seeded [`rand::rngs::StdRng`] instances so that every table
/// in EXPERIMENTS.md is reproducible bit-for-bit.
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn space_other_roundtrips() {
        for s in Space::ALL {
            assert_eq!(s.other().other(), s);
            assert_ne!(s.other(), s);
        }
    }

    #[test]
    fn space_display() {
        assert_eq!(Space::Physical.to_string(), "physical");
        assert_eq!(Space::Virtual.to_string(), "virtual");
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
