//! Virtual time.
//!
//! Everything in the workspace runs on simulated time so that experiments
//! are deterministic. [`SimTime`] is a microsecond-resolution instant,
//! [`SimDuration`] the matching span, and [`VirtualClock`] a shared,
//! monotonically advancing clock owned by a simulation driver (usually the
//! discrete-event loop in `mv-net`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// An instant on the simulated timeline, in microseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (used as an "infinite" deadline sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }
    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// Milliseconds since the origin (fractional).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// Seconds since the origin (fractional).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration since an earlier instant; saturates at zero if `earlier`
    /// is actually later (late/out-of-order data is common in the fusion
    /// layer, and a panic there would be wrong).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }
    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }
    /// Construct from fractional seconds (rounded to the nearest µs).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Microseconds in this span.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// Milliseconds in this span (fractional).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// Seconds in this span (fractional).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scale the span by a factor (used for jitter and backoff).
    #[inline]
    pub fn mul_f64(self, f: f64) -> Self {
        SimDuration((self.0 as f64 * f).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// The simulation driver advances it; everyone else only reads. Attempts
/// to move the clock backwards are ignored (monotonicity is an invariant
/// the event loop relies on).
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// A clock at the origin.
    pub const fn new() -> Self {
        Self { now_us: AtomicU64::new(0) }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.now_us.load(Ordering::Acquire))
    }

    /// Advance to `t` if `t` is later than now; returns the (possibly
    /// unchanged) current time.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let mut cur = self.now_us.load(Ordering::Acquire);
        while t.0 > cur {
            match self.now_us.compare_exchange_weak(
                cur,
                t.0,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime(cur)
    }

    /// Advance the clock by `d`.
    pub fn advance_by(&self, d: SimDuration) -> SimTime {
        let prev = self.now_us.fetch_add(d.0, Ordering::AcqRel);
        SimTime(prev + d.0)
    }
}

/// Bits of the commit-sequence suffix inside an oracle timestamp (the
/// low bits that disambiguate commits landing at the same sim µs).
pub const TS_SEQ_BITS: u32 = 16;

/// A deterministic commit-timestamp oracle driven by the sim clock.
///
/// Transaction timestamps must be (a) strictly monotonic — they define
/// the serial order MVCC validation certifies — and (b) comparable with
/// simulated time, so a version written "at t=5ms" orders after every
/// commit from earlier ticks regardless of allocation interleaving.
/// [`TimestampOracle::next`] therefore embeds the sim clock in the high
/// bits (`now.as_micros() << TS_SEQ_BITS`) and bumps a sequence suffix
/// when several commits land inside one simulated microsecond. Given the
/// same sequence of `next` calls, the oracle produces the same
/// timestamps — determinism comes from the caller's schedule, never from
/// wall clocks.
#[derive(Debug, Default)]
pub struct TimestampOracle {
    last: AtomicU64,
}

impl TimestampOracle {
    /// An oracle at the origin (no timestamp allocated yet).
    pub const fn new() -> Self {
        Self { last: AtomicU64::new(0) }
    }

    /// The most recently allocated (or observed) timestamp; `0` before
    /// the first allocation. Snapshots read here: a snapshot at
    /// `current()` sees every commit allocated so far and none after.
    #[inline]
    pub fn current(&self) -> u64 {
        self.last.load(Ordering::SeqCst)
    }

    /// Allocate the next timestamp at sim time `now`: the larger of
    /// `last + 1` and `now << TS_SEQ_BITS`, so results are strictly
    /// monotonic and never behind the sim clock.
    pub fn next(&self, now: SimTime) -> u64 {
        let floor = now.as_micros().saturating_mul(1 << TS_SEQ_BITS);
        let mut cur = self.last.load(Ordering::SeqCst);
        loop {
            let candidate = floor.max(cur.saturating_add(1));
            match self.last.compare_exchange_weak(
                cur,
                candidate,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return candidate,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Fast-forward past `ts` (recovery replays call this with each
    /// logged commit timestamp so post-recovery allocations stay above
    /// everything already durable). Never moves backwards.
    pub fn advance_past(&self, ts: u64) {
        self.last.fetch_max(ts, Ordering::SeqCst);
    }

    /// The sim-clock microseconds embedded in an oracle timestamp.
    #[inline]
    pub const fn sim_micros_of(ts: u64) -> u64 {
        ts >> TS_SEQ_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(5);
        let t2 = t + SimDuration::from_millis(3);
        assert_eq!(t2.as_micros(), 8_000);
        assert_eq!((t2 - t).as_millis_f64(), 3.0);
    }

    #[test]
    fn since_saturates_for_out_of_order() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_millis(1));
    }

    #[test]
    fn clock_is_monotonic() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_millis(10));
        assert_eq!(c.now(), SimTime::from_millis(10));
        // Going backwards is a no-op.
        c.advance_to(SimTime::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(10));
        c.advance_by(SimDuration::from_millis(1));
        assert_eq!(c.now(), SimTime::from_millis(11));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-1.0).as_micros(), 0);
    }

    #[test]
    fn oracle_is_strictly_monotonic_and_clock_driven() {
        let o = TimestampOracle::new();
        assert_eq!(o.current(), 0);
        let a = o.next(SimTime::from_micros(3));
        let b = o.next(SimTime::from_micros(3));
        let c = o.next(SimTime::from_micros(3));
        assert_eq!(a, 3 << TS_SEQ_BITS, "first ts at t=3µs embeds the clock");
        assert_eq!((b, c), (a + 1, a + 2), "same-µs commits get sequence suffixes");
        // A later sim instant jumps the timestamp past the whole suffix range.
        let d = o.next(SimTime::from_micros(4));
        assert_eq!(d, 4 << TS_SEQ_BITS);
        assert_eq!(TimestampOracle::sim_micros_of(d), 4);
        // The sim clock running "backwards" (out-of-order callers) still
        // yields strictly increasing timestamps.
        let e = o.next(SimTime::from_micros(1));
        assert_eq!(e, d + 1);
        assert_eq!(o.current(), e);
    }

    #[test]
    fn oracle_advance_past_never_regresses() {
        let o = TimestampOracle::new();
        o.advance_past(500);
        assert_eq!(o.current(), 500);
        o.advance_past(100);
        assert_eq!(o.current(), 500);
        assert_eq!(o.next(SimTime::ZERO), 501);
    }

    #[test]
    fn oracle_concurrent_allocations_are_unique() {
        let o = std::sync::Arc::new(TimestampOracle::new());
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let o = std::sync::Arc::clone(&o);
                    s.spawn(move || {
                        (0..500).map(|j| o.next(SimTime::from_micros(i * 7 + j % 5))).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("no panic")).collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 2000, "every allocation distinct");
    }
}
