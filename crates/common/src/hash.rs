//! Fast hashing for hot paths.
//!
//! The default std hasher (SipHash 1-3) is designed to resist HashDoS,
//! which is irrelevant inside a simulator and measurably slow for the
//! integer keys (ids, grid cells, versions) that dominate this workspace.
//! [`FxHasher`] reimplements the rustc/Firefox "Fx" multiply-xor hash —
//! the perf guide's first recommendation — so we do not need to add a
//! dependency outside the allowed crate list.
//!
//! Use [`FastMap`]/[`FastSet`] wherever iteration order does not matter;
//! use `BTreeMap` where deterministic iteration order is observable
//! (experiment output must be reproducible).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (64-bit golden-ratio-ish).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash: for each 8-byte word, `state = (state rotl 5 ^ word) * SEED`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, tail) = bytes.split_at(8);
            self.add(u64::from_le_bytes(head.try_into().unwrap()));
            bytes = tail;
        }
        if !bytes.is_empty() {
            let mut buf = [0u8; 8];
            buf[..bytes.len()].copy_from_slice(bytes);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hash.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hash.
pub type FastSet<K> = HashSet<K, FxBuildHasher>;

/// Create an empty [`FastMap`] with at least `cap` capacity.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Create an empty [`FastSet`] with at least `cap` capacity.
pub fn fast_set_with_capacity<K>(cap: usize) -> FastSet<K> {
    FastSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Hash one value with the Fx hash (handy for content fingerprints).
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hash_is_stable_per_value() {
        assert_eq!(fx_hash_one(&12345u64), fx_hash_one(&12345u64));
        assert_ne!(fx_hash_one(&12345u64), fx_hash_one(&12346u64));
        assert_eq!(fx_hash_one(&"abc"), fx_hash_one(&"abc"));
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Strings differing only in a sub-8-byte tail must differ.
        assert_ne!(fx_hash_one(&"aaaaaaaab"), fx_hash_one(&"aaaaaaaac"));
    }

    #[test]
    fn distribution_smoke() {
        // Sequential integer keys should spread over the low bits (the
        // bits hashbrown indexes with): most of 4096 keys should land in
        // distinct buckets of a 4096-bucket table.
        let mut buckets = vec![false; 4096];
        let mut distinct = 0usize;
        for i in 0..4096u64 {
            let b = (fx_hash_one(&i) & 0xfff) as usize;
            if !buckets[b] {
                buckets[b] = true;
                distinct += 1;
            }
        }
        assert!(distinct > 2200, "poor distribution: {distinct}/4096");
    }

    #[test]
    fn with_capacity_helpers() {
        let m: FastMap<u32, u32> = fast_map_with_capacity(100);
        assert!(m.capacity() >= 100);
        let s: FastSet<u32> = fast_set_with_capacity(50);
        assert!(s.capacity() >= 50);
    }
}
