//! Strongly-typed identifiers.
//!
//! Raw `u64`s invite mixing up an entity id with a node id; each domain
//! gets its own newtype via the `define_id!` macro. All ids are `Copy`, hash fast
//! (they feed [`crate::hash::FastMap`]), and order deterministically.

use std::sync::atomic::{AtomicU64, Ordering};

/// Defines an id newtype with a monotonic generator.
#[macro_export]
macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
            serde::Serialize, serde::Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Wrap a raw value.
            #[inline]
            pub const fn new(v: u64) -> Self {
                Self(v)
            }

            /// The raw value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// An entity that exists in the co-space: a soldier, a shopper, an
    /// avatar, a book, a sensor-tracked vehicle…
    EntityId
);
define_id!(
    /// A node in the simulated network (device, edge broker, cloud
    /// executor, storage server, data-center coordinator).
    NodeId
);
define_id!(
    /// A subscriber / end-client of the dissemination or pub/sub layer.
    ClientId
);
define_id!(
    /// A data object tracked by the dissemination layer (e.g. one
    /// scoreboard value, one product's quantity-on-hand, one avatar pose).
    ObjectId
);
define_id!(
    /// A continuous query registered with the stream engine.
    QueryId
);
define_id!(
    /// A transaction in the distributed transaction layer.
    TxnId
);
define_id!(
    /// An event detected by the fusion layer or raised in either space.
    EventId
);
define_id!(
    /// A party participating in data collaboration (§IV-B).
    PartyId
);

/// A monotonically increasing id generator, safe to share across threads.
///
/// Each subsystem owns its own generator so ids stay dense per domain,
/// which keeps them friendly to `Vec`-indexed side tables.
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// A generator starting at zero.
    pub const fn new() -> Self {
        Self { next: AtomicU64::new(0) }
    }

    /// A generator starting at `start`.
    pub const fn starting_at(start: u64) -> Self {
        Self { next: AtomicU64::new(start) }
    }

    /// Allocate the next raw id.
    #[inline]
    pub fn next_raw(&self) -> u64 {
        // lint:allow(relaxed-ordering): id allocation needs atomicity only — uniqueness holds under any ordering, and nothing is published via this counter
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate the next id of type `T`.
    #[inline]
    pub fn next<T: From<u64>>(&self) -> T {
        T::from(self.next_raw())
    }

    /// How many ids have been allocated so far.
    pub fn allocated(&self) -> u64 {
        // lint:allow(relaxed-ordering): monotonic statistic read; callers only need some recent value, not a synchronized snapshot
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types() {
        let e = EntityId::new(1);
        let n = NodeId::new(1);
        // Same raw value, different types; both display their kind.
        assert_eq!(e.raw(), n.raw());
        assert!(e.to_string().starts_with("EntityId#"));
        assert!(n.to_string().starts_with("NodeId#"));
    }

    #[test]
    fn idgen_is_monotonic_and_dense() {
        let g = IdGen::new();
        let a: EntityId = g.next();
        let b: EntityId = g.next();
        let c: EntityId = g.next();
        assert_eq!((a.raw(), b.raw(), c.raw()), (0, 1, 2));
        assert_eq!(g.allocated(), 3);
    }

    #[test]
    fn idgen_threaded_uniqueness() {
        use std::sync::Arc;
        let g = Arc::new(IdGen::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }

    #[test]
    fn idgen_starting_at() {
        let g = IdGen::starting_at(100);
        assert_eq!(g.next_raw(), 100);
        assert_eq!(g.next_raw(), 101);
    }
}
