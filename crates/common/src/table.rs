//! Fixed-width ASCII tables for experiment output.
//!
//! The `experiments` binary in `mv-bench` prints one table per experiment;
//! keeping the renderer here lets integration tests assert on table
//! structure without depending on the bench crate.

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the arity differs from the header count
    /// (a mis-shapen experiment table is a bug, not a runtime condition).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for rows of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers, in order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a `String` (also available via `Display`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Render into a caller-owned buffer. Unlike [`Self::render`], a
    /// reused buffer makes per-tick pretty-printing allocation-free in
    /// steady state: cells are written straight into `out` (no
    /// intermediate per-row strings), and the only scratch is a
    /// stack-allocated column-width array for tables up to
    /// [`Self::STACK_COLS`] columns wide.
    pub fn render_into(&self, out: &mut String) {
        let _ = self.render_to(out);
    }

    /// Column count renderable without a heap-allocated width scratch —
    /// comfortably above the widest experiment table.
    pub const STACK_COLS: usize = 24;

    fn render_to<W: std::fmt::Write>(&self, out: &mut W) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut stack = [0usize; Self::STACK_COLS];
        let mut heap = Vec::new();
        let widths: &mut [usize] = if cols <= Self::STACK_COLS {
            // lint:allow(panic-path): cols <= STACK_COLS holds on this branch; the slice cannot overrun the stack scratch
            &mut stack[..cols]
        } else {
            heap.resize(cols, 0);
            &mut heap
        };
        for (w, h) in widths.iter_mut().zip(&self.headers) {
            *w = h.len();
        }
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let rule = total.max(self.title.len());
        let write_rule = |out: &mut W| -> std::fmt::Result {
            for _ in 0..rule {
                out.write_char('-')?;
            }
            out.write_char('\n')
        };
        let write_row = |out: &mut W, cells: &[String], widths: &[usize]| -> std::fmt::Result {
            out.write_char('|')?;
            for (cell, w) in cells.iter().zip(widths) {
                write!(out, " {cell:>w$} |", w = *w)?;
            }
            out.write_char('\n')
        };
        writeln!(out, "{}", self.title)?;
        write_rule(out)?;
        write_row(out, &self.headers, widths)?;
        write_rule(out)?;
        for row in &self.rows {
            write_row(out, row, widths)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.render_to(f)
    }
}

/// Format a float with 2 decimals (the experiment tables' house style).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format an integer-valued count.
pub fn n(v: u64) -> String {
    v.to_string()
}

/// Format a ratio as a `x`-suffixed speedup (e.g. `3.42x`).
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-name"));
        // Every data line has the same length as the header line.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // round-half-even is fine either way
        assert_eq!(n(42), "42");
        assert_eq!(speedup(3.4167), "3.42x");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn render_into_reuse_is_allocation_free_in_steady_state() {
        let mut t = Table::new("profile", &["stage", "mean_us", "note"]);
        t.row(&["ingest".into(), "12.50".into(), "3.42x".into()]);
        t.row(&["fanout".into(), "3.25".into(), "-".into()]);
        let mut out = String::new();
        t.render_into(&mut out);
        let cap = out.capacity();
        for _ in 0..500 {
            out.clear();
            t.render_into(&mut out);
        }
        assert_eq!(out.capacity(), cap, "reused render buffer must not regrow");
        assert_eq!(out, t.render());
        assert_eq!(out, t.to_string());
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("x", &["c"]);
        assert!(t.is_empty());
        t.row(&["v".into()]);
        assert_eq!(t.len(), 1);
    }
}
