//! Fixed-width ASCII tables for experiment output.
//!
//! The `experiments` binary in `mv-bench` prints one table per experiment;
//! keeping the renderer here lets integration tests assert on table
//! structure without depending on the bench crate.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the arity differs from the header count
    /// (a mis-shapen experiment table is a bug, not a runtime condition).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for rows of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers, in order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a `String` (also available via `Display`).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "-".repeat(total.max(self.title.len())));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:>w$} |", w = w);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(total.max(self.title.len())));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with 2 decimals (the experiment tables' house style).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format an integer-valued count.
pub fn n(v: u64) -> String {
    v.to_string()
}

/// Format a ratio as a `x`-suffixed speedup (e.g. `3.42x`).
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-name"));
        // Every data line has the same length as the header line.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // round-half-even is fine either way
        assert_eq!(n(42), "42");
        assert_eq!(speedup(3.4167), "3.42x");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("x", &["c"]);
        assert!(t.is_empty());
        t.row(&["v".into()]);
        assert_eq!(t.len(), 1);
    }
}
