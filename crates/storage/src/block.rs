//! A fixed-size block store with a free bitmap and extent files.
//!
//! The lowest rung of the Fig. 7 storage layer: raw blocks for the
//! stores above (the simulated "Azure disk storage"). Files are inode
//! records mapping to block lists; allocation favours contiguity with a
//! simple first-fit-from-hint policy.

use mv_common::{MvError, MvResult};

/// Block size in bytes.
pub const BLOCK_SIZE: usize = 4096;

/// The store.
#[derive(Debug)]
pub struct BlockStore {
    blocks: Vec<Box<[u8; BLOCK_SIZE]>>,
    free: Vec<bool>,
    alloc_hint: usize,
    free_count: usize,
}

impl BlockStore {
    /// A store with `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        BlockStore {
            blocks: (0..capacity).map(|_| Box::new([0u8; BLOCK_SIZE])).collect(),
            free: vec![true; capacity],
            alloc_hint: 0,
            free_count: capacity,
        }
    }

    /// Total blocks.
    pub fn capacity(&self) -> usize {
        self.blocks.len()
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> usize {
        self.free_count
    }

    /// Allocate one block.
    pub fn alloc(&mut self) -> MvResult<usize> {
        if self.free_count == 0 {
            return Err(MvError::Exhausted("block store full".into()));
        }
        let n = self.free.len();
        for i in 0..n {
            let idx = (self.alloc_hint + i) % n;
            if self.free[idx] {
                self.free[idx] = false;
                self.free_count -= 1;
                self.alloc_hint = (idx + 1) % n;
                return Ok(idx);
            }
        }
        unreachable!("free_count said a block was available");
    }

    /// Allocate `n` blocks (not necessarily contiguous).
    pub fn alloc_extent(&mut self, n: usize) -> MvResult<Vec<usize>> {
        if n > self.free_count {
            return Err(MvError::Exhausted(format!(
                "need {n} blocks, {} free",
                self.free_count
            )));
        }
        (0..n).map(|_| self.alloc()).collect()
    }

    /// Free a block (zeroing it).
    pub fn dealloc(&mut self, idx: usize) -> MvResult<()> {
        if idx >= self.free.len() {
            return Err(MvError::InvalidArgument(format!("block {idx} out of range")));
        }
        if self.free[idx] {
            return Err(MvError::IllegalState(format!("double free of block {idx}")));
        }
        self.free[idx] = true;
        self.free_count += 1;
        self.blocks[idx].fill(0);
        Ok(())
    }

    /// Write within one block.
    pub fn write(&mut self, idx: usize, offset: usize, data: &[u8]) -> MvResult<()> {
        if idx >= self.blocks.len() {
            return Err(MvError::InvalidArgument(format!("block {idx} out of range")));
        }
        if self.free[idx] {
            return Err(MvError::IllegalState(format!("write to unallocated block {idx}")));
        }
        if offset + data.len() > BLOCK_SIZE {
            return Err(MvError::InvalidArgument("write crosses block boundary".into()));
        }
        self.blocks[idx][offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read within one block.
    pub fn read(&self, idx: usize, offset: usize, len: usize) -> MvResult<&[u8]> {
        if idx >= self.blocks.len() {
            return Err(MvError::InvalidArgument(format!("block {idx} out of range")));
        }
        if offset + len > BLOCK_SIZE {
            return Err(MvError::InvalidArgument("read crosses block boundary".into()));
        }
        self.blocks
            .get(idx)
            .and_then(|b| b.get(offset..offset + len))
            .ok_or_else(|| MvError::InvalidArgument("read crosses block boundary".into()))
    }

    /// Store a byte payload as a fresh extent; returns the block list.
    pub fn write_payload(&mut self, data: &[u8]) -> MvResult<Vec<usize>> {
        let nblocks = data.len().div_ceil(BLOCK_SIZE).max(1);
        let extent = self.alloc_extent(nblocks)?;
        for (i, &blk) in extent.iter().enumerate() {
            let start = i * BLOCK_SIZE;
            let end = (start + BLOCK_SIZE).min(data.len());
            if start < data.len() {
                self.write(blk, 0, &data[start..end])?;
            }
        }
        Ok(extent)
    }

    /// Read back a payload of `len` bytes from an extent.
    pub fn read_payload(&self, extent: &[usize], len: usize) -> MvResult<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        for (i, &blk) in extent.iter().enumerate() {
            let start = i * BLOCK_SIZE;
            if start >= len {
                break;
            }
            let take = (len - start).min(BLOCK_SIZE);
            out.extend_from_slice(self.read(blk, 0, take)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut bs = BlockStore::new(8);
        let b = bs.alloc().unwrap();
        bs.write(b, 100, b"hello").unwrap();
        assert_eq!(bs.read(b, 100, 5).unwrap(), b"hello");
        assert_eq!(bs.free_blocks(), 7);
    }

    #[test]
    fn exhaustion_and_double_free() {
        let mut bs = BlockStore::new(2);
        let a = bs.alloc().unwrap();
        let b = bs.alloc().unwrap();
        assert!(bs.alloc().is_err());
        bs.dealloc(a).unwrap();
        assert!(bs.dealloc(a).is_err());
        assert!(bs.alloc().is_ok());
        bs.dealloc(b).unwrap();
    }

    #[test]
    fn freed_blocks_are_zeroed() {
        let mut bs = BlockStore::new(2);
        let a = bs.alloc().unwrap();
        bs.write(a, 0, b"secret").unwrap();
        bs.dealloc(a).unwrap();
        let a2 = bs.alloc().unwrap();
        // first-fit with hint may return a different block; grab both.
        let data = bs.read(a2, 0, 6).unwrap();
        assert_eq!(data, &[0u8; 6]);
    }

    #[test]
    fn boundary_checks() {
        let mut bs = BlockStore::new(1);
        let b = bs.alloc().unwrap();
        assert!(bs.write(b, BLOCK_SIZE - 2, b"xyz").is_err());
        assert!(bs.read(b, BLOCK_SIZE - 2, 3).is_err());
        assert!(bs.write(99, 0, b"x").is_err());
        // Writing to a free block is rejected.
        bs.dealloc(b).unwrap();
        assert!(bs.write(b, 0, b"x").is_err());
    }

    #[test]
    fn multi_block_payload_roundtrip() {
        let mut bs = BlockStore::new(8);
        let payload: Vec<u8> = (0..(BLOCK_SIZE * 2 + 100)).map(|i| (i % 251) as u8).collect();
        let extent = bs.write_payload(&payload).unwrap();
        assert_eq!(extent.len(), 3);
        let back = bs.read_payload(&extent, payload.len()).unwrap();
        assert_eq!(back, payload);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_payload_roundtrip_and_space_accounting(
            payloads in proptest::collection::vec(
                proptest::collection::vec(0u8..=255, 0..9000), 1..6),
        ) {
            let mut bs = BlockStore::new(32);
            let mut live: Vec<(Vec<usize>, Vec<u8>)> = Vec::new();
            for p in &payloads {
                let need = p.len().div_ceil(BLOCK_SIZE).max(1);
                match bs.write_payload(p) {
                    Ok(extent) => {
                        prop_assert_eq!(extent.len(), need);
                        live.push((extent, p.clone()));
                    }
                    Err(_) => {
                        // Exhaustion must be honest: free count below need.
                        prop_assert!(bs.free_blocks() < need);
                    }
                }
            }
            let used: usize = live.iter().map(|(e, _)| e.len()).sum();
            prop_assert_eq!(bs.free_blocks(), 32 - used);
            for (extent, data) in &live {
                prop_assert_eq!(&bs.read_payload(extent, data.len()).unwrap(), data);
            }
            // Free everything; capacity returns.
            for (extent, _) in &live {
                for &b in extent {
                    bs.dealloc(b).unwrap();
                }
            }
            prop_assert_eq!(bs.free_blocks(), 32);
        }
    }

    #[test]
    fn empty_payload_still_gets_a_block() {
        let mut bs = BlockStore::new(2);
        let extent = bs.write_payload(&[]).unwrap();
        assert_eq!(extent.len(), 1);
        assert_eq!(bs.read_payload(&extent, 0).unwrap(), Vec::<u8>::new());
    }
}
