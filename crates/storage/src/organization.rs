//! Data organization across the two spaces (§IV-F).
//!
//! *"…should the location of a shopper in the physical mall be stored
//! together with the location of an online shopper … On one hand, we can
//! simply tag data to reflect the space it belongs to. This offers a
//! unified view … However, for operations that involve only data from a
//! particular space, the performance may be penalized. On the other hand,
//! we can organize the data from the two spaces separately. But, this may
//! end up duplicating resources. Moreover, it may be possible to have a
//! hybrid strategy."*
//!
//! The model: every logical row exists per (table, key) with potentially
//! a physical-space and a virtual-space payload.
//!
//! * **Unified** — one store; both payloads live in one merged record.
//!   Cross-space reads are one probe; single-space reads drag the other
//!   space's bytes along, and writes are read-modify-write.
//! * **Separate** — one store per space. Single-space ops are minimal;
//!   cross-space reads cost two probes (and two stores' worth of
//!   structures).
//! * **Hybrid** — tables listed as `unified_tables` use the merged
//!   layout; everything else is separate. E9 shows each layout winning
//!   its own regime, which is precisely the paper's point.

use crate::kv::KvStore;
use bytes::{BufMut, Bytes, BytesMut};
use mv_common::codec::wire_u32;
use mv_common::metrics::Counters;
use mv_common::Space;

/// Layout strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// One tagged store.
    Unified,
    /// Per-space stores.
    Separate,
    /// Unified for the listed tables, separate otherwise.
    Hybrid {
        /// Tables stored merged.
        unified_tables: Vec<String>,
    },
}

impl Layout {
    fn unified_for(&self, table: &str) -> bool {
        match self {
            Layout::Unified => true,
            Layout::Separate => false,
            Layout::Hybrid { unified_tables } => unified_tables.iter().any(|t| t == table),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Layout::Unified => "unified",
            Layout::Separate => "separate",
            Layout::Hybrid { .. } => "hybrid",
        }
    }
}

fn encode_pair(phys: Option<&[u8]>, virt: Option<&[u8]>) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        8 + phys.map_or(0, <[u8]>::len) + virt.map_or(0, <[u8]>::len),
    );
    let p = phys.unwrap_or(&[]);
    let v = virt.unwrap_or(&[]);
    buf.put_u32_le(wire_u32(p.len()));
    buf.put_u32_le(wire_u32(v.len()));
    // A zero-length payload is "absent"; presence flags keep empty-vs-
    // missing distinct.
    buf.put_u8(phys.is_some() as u8);
    buf.put_u8(virt.is_some() as u8);
    buf.put_slice(p);
    buf.put_slice(v);
    buf.freeze()
}

fn decode_pair(data: &[u8]) -> (Option<Bytes>, Option<Bytes>) {
    let plen = u32::from_le_bytes(data[0..4].try_into().expect("header")) as usize;
    let vlen = u32::from_le_bytes(data[4..8].try_into().expect("header")) as usize;
    let has_p = data[8] == 1;
    let has_v = data[9] == 1;
    let p = &data[10..10 + plen];
    let v = &data[10 + plen..10 + plen + vlen];
    (
        has_p.then(|| Bytes::copy_from_slice(p)),
        has_v.then(|| Bytes::copy_from_slice(v)),
    )
}

fn row_key(table: &str, key: &str) -> Bytes {
    Bytes::from(format!("{table}\u{1}{key}"))
}

/// The organization layer.
#[derive(Debug)]
pub struct DataOrganization {
    layout: Layout,
    unified: KvStore,
    physical: KvStore,
    virtual_: KvStore,
    /// `probes`, `bytes_read`, `bytes_written` counters.
    pub stats: Counters,
}

impl DataOrganization {
    /// Build with a layout.
    pub fn new(layout: Layout) -> Self {
        DataOrganization {
            layout,
            unified: KvStore::new(),
            physical: KvStore::new(),
            virtual_: KvStore::new(),
            stats: Counters::new(),
        }
    }

    /// The configured layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    fn space_store(&mut self, space: Space) -> &mut KvStore {
        match space {
            Space::Physical => &mut self.physical,
            Space::Virtual => &mut self.virtual_,
        }
    }

    /// Write one space's payload of a row.
    pub fn put(&mut self, space: Space, table: &str, key: &str, value: &[u8]) {
        let rk = row_key(table, key);
        if self.layout.unified_for(table) {
            // Read-modify-write of the merged record.
            self.stats.incr("probes");
            let (mut p, mut v) = match self.unified.get(&rk) {
                Some(cur) => {
                    self.stats.add("bytes_read", cur.len() as u64);
                    decode_pair(&cur)
                }
                None => (None, None),
            };
            match space {
                Space::Physical => p = Some(Bytes::copy_from_slice(value)),
                Space::Virtual => v = Some(Bytes::copy_from_slice(value)),
            }
            let enc = encode_pair(p.as_deref(), v.as_deref());
            self.stats.add("bytes_written", enc.len() as u64);
            self.unified.put(rk, enc);
        } else {
            self.stats.add("bytes_written", value.len() as u64);
            let value = Bytes::copy_from_slice(value);
            self.space_store(space).put(rk, value);
        }
        self.stats.incr("probes");
    }

    /// Read one space's payload of a row.
    pub fn get_single(&mut self, space: Space, table: &str, key: &str) -> Option<Bytes> {
        let rk = row_key(table, key);
        self.stats.incr("probes");
        if self.layout.unified_for(table) {
            let cur = self.unified.get(&rk)?;
            self.stats.add("bytes_read", cur.len() as u64);
            let (p, v) = decode_pair(&cur);
            match space {
                Space::Physical => p,
                Space::Virtual => v,
            }
        } else {
            let store = match space {
                Space::Physical => &self.physical,
                Space::Virtual => &self.virtual_,
            };
            let got = store.get(&rk);
            if let Some(b) = &got {
                self.stats.add("bytes_read", b.len() as u64);
            }
            got
        }
    }

    /// Read both spaces' payloads of a row (the co-space join §IV-F's
    /// unified view exists for).
    pub fn get_cross(&mut self, table: &str, key: &str) -> (Option<Bytes>, Option<Bytes>) {
        let rk = row_key(table, key);
        if self.layout.unified_for(table) {
            self.stats.incr("probes");
            match self.unified.get(&rk) {
                Some(cur) => {
                    self.stats.add("bytes_read", cur.len() as u64);
                    decode_pair(&cur)
                }
                None => (None, None),
            }
        } else {
            self.stats.add("probes", 2);
            let p = self.physical.get(&rk);
            let v = self.virtual_.get(&rk);
            if let Some(b) = &p {
                self.stats.add("bytes_read", b.len() as u64);
            }
            if let Some(b) = &v {
                self.stats.add("bytes_read", b.len() as u64);
            }
            (p, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layouts() -> Vec<Layout> {
        vec![
            Layout::Unified,
            Layout::Separate,
            Layout::Hybrid { unified_tables: vec!["inventory".into()] },
        ]
    }

    #[test]
    fn roundtrip_under_every_layout() {
        for layout in layouts() {
            let mut org = DataOrganization::new(layout.clone());
            org.put(Space::Physical, "inventory", "sku1", b"qty=5");
            org.put(Space::Virtual, "inventory", "sku1", b"qty=50");
            org.put(Space::Physical, "shoppers", "alice", b"aisle3");
            assert_eq!(
                org.get_single(Space::Physical, "inventory", "sku1").as_deref(),
                Some(b"qty=5".as_ref()),
                "{layout:?}"
            );
            assert_eq!(
                org.get_single(Space::Virtual, "inventory", "sku1").as_deref(),
                Some(b"qty=50".as_ref())
            );
            let (p, v) = org.get_cross("inventory", "sku1");
            assert_eq!(p.as_deref(), Some(b"qty=5".as_ref()));
            assert_eq!(v.as_deref(), Some(b"qty=50".as_ref()));
            // Missing side stays distinct from empty.
            let (p, v) = org.get_cross("shoppers", "alice");
            assert_eq!(p.as_deref(), Some(b"aisle3".as_ref()));
            assert!(v.is_none());
            assert!(org.get_single(Space::Virtual, "shoppers", "alice").is_none());
        }
    }

    #[test]
    fn unified_cross_read_is_single_probe() {
        let mut org = DataOrganization::new(Layout::Unified);
        org.put(Space::Physical, "t", "k", b"p");
        org.put(Space::Virtual, "t", "k", b"v");
        let before = org.stats.get("probes");
        org.get_cross("t", "k");
        assert_eq!(org.stats.get("probes") - before, 1);
    }

    #[test]
    fn separate_cross_read_is_two_probes() {
        let mut org = DataOrganization::new(Layout::Separate);
        org.put(Space::Physical, "t", "k", b"p");
        org.put(Space::Virtual, "t", "k", b"v");
        let before = org.stats.get("probes");
        org.get_cross("t", "k");
        assert_eq!(org.stats.get("probes") - before, 2);
    }

    #[test]
    fn unified_single_reads_drag_both_payloads() {
        let mut org = DataOrganization::new(Layout::Unified);
        org.put(Space::Physical, "t", "k", &[0u8; 10]);
        org.put(Space::Virtual, "t", "k", &[0u8; 1000]);
        let before = org.stats.get("bytes_read");
        org.get_single(Space::Physical, "t", "k");
        let dragged = org.stats.get("bytes_read") - before;
        assert!(dragged > 1000, "unified read dragged only {dragged} bytes");

        let mut sep = DataOrganization::new(Layout::Separate);
        sep.put(Space::Physical, "t", "k", &[0u8; 10]);
        sep.put(Space::Virtual, "t", "k", &[0u8; 1000]);
        let before = sep.stats.get("bytes_read");
        sep.get_single(Space::Physical, "t", "k");
        assert_eq!(sep.stats.get("bytes_read") - before, 10);
    }

    #[test]
    fn hybrid_routes_per_table() {
        let mut org = DataOrganization::new(Layout::Hybrid {
            unified_tables: vec!["inventory".into()],
        });
        org.put(Space::Physical, "inventory", "k", b"p");
        org.put(Space::Virtual, "inventory", "k", b"v");
        org.put(Space::Physical, "telemetry", "k", b"p");
        org.put(Space::Virtual, "telemetry", "k", b"v");
        let before = org.stats.get("probes");
        org.get_cross("inventory", "k"); // unified: 1 probe
        org.get_cross("telemetry", "k"); // separate: 2 probes
        assert_eq!(org.stats.get("probes") - before, 3);
    }

    #[test]
    fn pair_codec_distinguishes_empty_and_missing() {
        let enc = encode_pair(Some(b""), None);
        let (p, v) = decode_pair(&enc);
        assert_eq!(p.as_deref(), Some(b"".as_ref()));
        assert!(v.is_none());
    }
}
