//! A log-structured in-memory KV store.
//!
//! The write path is the classic LSM shape: puts land in a mutable
//! memtable (a B-tree); when the memtable exceeds its budget it freezes
//! into an immutable sorted run; reads check memtable → runs newest-first;
//! compaction merges runs, dropping shadowed versions and tombstones.
//! "Disk" is simulated by the run vector — what matters for the
//! experiments is the *shape* of the access paths, not actual I/O.

use bytes::Bytes;
use std::collections::BTreeMap;

/// Number of immutable runs that triggers a full-merge compaction.
const COMPACT_TRIGGER: usize = 8;

/// A sorted immutable run: key → value (None = tombstone).
type Run = Vec<(Bytes, Option<Bytes>)>;

/// The store.
#[derive(Debug)]
pub struct KvStore {
    memtable: BTreeMap<Bytes, Option<Bytes>>,
    memtable_bytes: usize,
    memtable_budget: usize,
    /// Immutable runs, newest last.
    runs: Vec<Run>,
    /// Monotone flush counter (diagnostics).
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

impl KvStore {
    /// A store with the default 1 MiB memtable budget.
    pub fn new() -> Self {
        Self::with_memtable_budget(1 << 20)
    }

    /// A store with an explicit memtable budget in bytes.
    pub fn with_memtable_budget(budget: usize) -> Self {
        assert!(budget > 0);
        KvStore {
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            memtable_budget: budget,
            runs: Vec::new(),
            flushes: 0,
            compactions: 0,
        }
    }

    /// Insert or overwrite a key.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        let (key, value) = (key.into(), value.into());
        self.memtable_bytes += key.len() + value.len();
        self.memtable.insert(key, Some(value));
        self.maybe_flush();
    }

    /// Delete a key (writes a tombstone).
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        let key = key.into();
        self.memtable_bytes += key.len();
        self.memtable.insert(key, None);
        self.maybe_flush();
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        if let Some(v) = self.memtable.get(key) {
            return v.clone();
        }
        for run in self.runs.iter().rev() {
            if let Ok(idx) = run.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
                return run[idx].1.clone();
            }
        }
        None
    }

    /// Range scan over `[lo, hi)`, newest version per key, tombstones
    /// elided, ascending key order.
    pub fn scan(&self, lo: &[u8], hi: &[u8]) -> Vec<(Bytes, Bytes)> {
        // Merge: memtable wins, then newer runs win.
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        for run in &self.runs {
            let start = run.partition_point(|(k, _)| k.as_ref() < lo);
            for (k, v) in &run[start..] {
                if k.as_ref() >= hi {
                    break;
                }
                merged.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in self.memtable.range::<[u8], _>((
            std::ops::Bound::Included(lo),
            std::ops::Bound::Excluded(hi),
        )) {
            merged.insert(k.clone(), v.clone());
        }
        merged.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect()
    }

    /// Freeze the memtable into a run if over budget.
    fn maybe_flush(&mut self) {
        if self.memtable_bytes >= self.memtable_budget {
            self.flush();
        }
    }

    /// Force-freeze the memtable (used before snapshots/recovery points).
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let run: Run = std::mem::take(&mut self.memtable).into_iter().collect();
        self.memtable_bytes = 0;
        self.runs.push(run);
        self.flushes += 1;
        if self.runs.len() >= COMPACT_TRIGGER {
            self.compact();
        }
    }

    /// Merge all runs into one, dropping shadowed versions and tombstones
    /// that no longer shadow anything.
    pub fn compact(&mut self) {
        if self.runs.len() <= 1 {
            return;
        }
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        for run in self.runs.drain(..) {
            for (k, v) in run {
                merged.insert(k, v);
            }
        }
        // After a full merge, tombstones shadow nothing and can drop.
        let run: Run = merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        self.runs.push(run);
        self.compactions += 1;
    }

    /// Number of immutable runs (diagnostics).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Live key count (scan-based; diagnostics only).
    pub fn len(&self) -> usize {
        self.scan(&[], &[0xffu8; 64]).len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use proptest::prelude::*;
    use rand::Rng;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_overwrite_delete() {
        let mut kv = KvStore::new();
        kv.put(b("a"), b("1"));
        assert_eq!(kv.get(b"a"), Some(b("1")));
        kv.put(b("a"), b("2"));
        assert_eq!(kv.get(b"a"), Some(b("2")));
        kv.delete(b("a"));
        assert_eq!(kv.get(b"a"), None);
        assert_eq!(kv.get(b"zzz"), None);
    }

    #[test]
    fn reads_span_memtable_and_runs() {
        let mut kv = KvStore::with_memtable_budget(64);
        for i in 0..100u32 {
            kv.put(Bytes::from(format!("key{i:03}")), Bytes::from(format!("v{i}")));
        }
        assert!(kv.run_count() > 0, "small budget must have flushed");
        for i in 0..100u32 {
            assert_eq!(
                kv.get(format!("key{i:03}").as_bytes()),
                Some(Bytes::from(format!("v{i}"))),
                "key{i}"
            );
        }
    }

    #[test]
    fn newer_run_shadows_older() {
        let mut kv = KvStore::with_memtable_budget(1 << 20);
        kv.put(b("k"), b("old"));
        kv.flush();
        kv.put(b("k"), b("new"));
        kv.flush();
        assert_eq!(kv.get(b"k"), Some(b("new")));
        kv.compact();
        assert_eq!(kv.get(b"k"), Some(b("new")));
        assert_eq!(kv.run_count(), 1);
    }

    #[test]
    fn tombstones_survive_flush_until_compaction() {
        let mut kv = KvStore::new();
        kv.put(b("k"), b("v"));
        kv.flush();
        kv.delete(b("k"));
        kv.flush();
        assert_eq!(kv.get(b"k"), None);
        kv.compact();
        assert_eq!(kv.get(b"k"), None);
        assert!(kv.is_empty());
    }

    #[test]
    fn scan_merges_and_orders() {
        let mut kv = KvStore::with_memtable_budget(48);
        kv.put(b("b"), b("2"));
        kv.put(b("d"), b("4"));
        kv.flush();
        kv.put(b("a"), b("1"));
        kv.put(b("c"), b("3"));
        kv.delete(b("d"));
        let hits = kv.scan(b"a", b"e");
        let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(keys, vec![b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
        // Range excludes the upper bound.
        let partial = kv.scan(b"a", b"c");
        assert_eq!(partial.len(), 2);
    }

    #[test]
    fn automatic_compaction_kicks_in() {
        let mut kv = KvStore::with_memtable_budget(16);
        for i in 0..200u32 {
            kv.put(Bytes::from(format!("k{i}")), Bytes::from(vec![0u8; 8]));
        }
        assert!(kv.compactions > 0);
        assert!(kv.run_count() < COMPACT_TRIGGER);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_btreemap_model(
            ops in proptest::collection::vec((0u8..3, "[a-d]{1,3}", "[x-z]{0,3}"), 1..120),
            budget in 16usize..256,
        ) {
            let mut kv = KvStore::with_memtable_budget(budget);
            let mut model: BTreeMap<String, String> = BTreeMap::new();
            for (op, k, v) in &ops {
                match op {
                    0 => {
                        kv.put(Bytes::from(k.clone()), Bytes::from(v.clone()));
                        model.insert(k.clone(), v.clone());
                    }
                    1 => {
                        kv.delete(Bytes::from(k.clone()));
                        model.remove(k);
                    }
                    _ => {
                        let got = kv.get(k.as_bytes()).map(|b| String::from_utf8_lossy(&b).to_string());
                        prop_assert_eq!(got, model.get(k).cloned());
                    }
                }
            }
            // Full scan equals the model.
            let scanned: Vec<(String, String)> = kv
                .scan(b"a", b"zzzz")
                .into_iter()
                .map(|(k, v)| (
                    String::from_utf8_lossy(&k).to_string(),
                    String::from_utf8_lossy(&v).to_string(),
                ))
                .collect();
            let expected: Vec<(String, String)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(scanned, expected);
        }
    }

    #[test]
    fn randomized_stress_against_model() {
        let mut rng = seeded_rng(99);
        let mut kv = KvStore::with_memtable_budget(128);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for _ in 0..5000 {
            let key = format!("key-{}", rng.gen_range(0..300)).into_bytes();
            if rng.gen_bool(0.7) {
                let val = format!("val-{}", rng.gen_range(0..1000)).into_bytes();
                kv.put(Bytes::from(key.clone()), Bytes::from(val.clone()));
                model.insert(key, val);
            } else {
                kv.delete(Bytes::from(key.clone()));
                model.remove(&key);
            }
        }
        for i in 0..300 {
            let key = format!("key-{i}").into_bytes();
            assert_eq!(
                kv.get(&key).map(|b| b.to_vec()),
                model.get(&key).cloned(),
                "key-{i}"
            );
        }
    }
}
