//! A log-structured in-memory KV store.
//!
//! The write path is the classic LSM shape: puts land in a mutable
//! memtable (a B-tree); when the memtable exceeds its budget it freezes
//! into an immutable sorted run; reads check memtable → runs newest-first;
//! compaction merges runs, dropping shadowed versions and tombstones.
//! "Disk" is simulated by the run vector — what matters for the
//! experiments is the *shape* of the access paths, not actual I/O.
//!
//! Two classic LSM refinements keep the shape honest at ingest scale
//! (§IV-F's "massive volumes of data … generated continuously"):
//!
//! * **Per-run bloom filters** ([`crate::bloom::Bloom`]) — a point get
//!   that misses the memtable consults each run's filter before binary
//!   searching it, so lookups of absent keys cost bit tests instead of
//!   `O(runs)` searches. E17 measures the probe savings.
//! * **Size-tiered compaction** — instead of a full merge of *all* runs
//!   at a fixed run count (write amplification proportional to total
//!   data on every trigger), runs are bucketed into size tiers and only
//!   an age-contiguous window of `tier_fanout` similar-sized runs is
//!   merged at a time. Write amplification per flushed byte is bounded
//!   by the tier depth (`O(log_fanout(data/budget))`) and the run count
//!   stays `O(fanout · tiers)`. Tombstones drop only when the merge
//!   window includes the oldest run (nothing older can be shadowed).
//!
//! [`KvStore::compact`] remains the *major* compaction (merge everything
//! into one run, drop all tombstones), used before snapshots.

use crate::bloom::Bloom;
use bytes::Bytes;
use mv_common::metrics::Counters;
use std::cell::Cell;
use std::collections::BTreeMap;

/// Tuning knobs for the store.
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Memtable freeze threshold in bytes.
    pub memtable_budget: usize,
    /// Bloom-filter budget per run; `0` disables filters (every get
    /// binary-searches every run it reaches — the E17 baseline).
    pub bloom_bits_per_key: usize,
    /// How many similar-sized, age-contiguous runs trigger a tier merge.
    pub tier_fanout: usize,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig { memtable_budget: 1 << 20, bloom_bits_per_key: 10, tier_fanout: 4 }
    }
}

/// A sorted immutable run: key → value (None = tombstone), plus its
/// bloom filter and byte size (the tiering key).
#[derive(Debug)]
struct Run {
    entries: Vec<(Bytes, Option<Bytes>)>,
    bytes: usize,
    bloom: Option<Bloom>,
}

impl Run {
    fn build(entries: Vec<(Bytes, Option<Bytes>)>, bloom_bits_per_key: usize) -> Self {
        let bytes = entries
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, Bytes::len))
            .sum();
        let bloom = (bloom_bits_per_key > 0).then(|| {
            Bloom::from_keys(
                entries.iter().map(|(k, _)| k.as_ref()),
                entries.len(),
                bloom_bits_per_key,
            )
        });
        Run { entries, bytes, bloom }
    }

    /// Size tier: log2 bucket of the run's byte size. Runs within a
    /// factor-of-two of each other share a tier.
    fn tier(&self) -> u32 {
        (self.bytes.max(1) as u64).ilog2()
    }
}

/// The store.
#[derive(Debug)]
pub struct KvStore {
    memtable: BTreeMap<Bytes, Option<Bytes>>,
    memtable_bytes: usize,
    config: KvConfig,
    /// Immutable runs, newest last.
    runs: Vec<Run>,
    /// Monotone flush counter (diagnostics).
    pub flushes: u64,
    /// Compactions performed (tier merges + major compactions).
    pub compactions: u64,
    /// Bytes read into / written out of compaction merges.
    compaction_read_bytes: u64,
    compaction_write_bytes: u64,
    /// Read-path accounting (Cells: `get` takes `&self`).
    run_probes: Cell<u64>,
    bloom_skips: Cell<u64>,
    /// Reused k-way merge cursors (one per window run); cleared and
    /// refilled per compaction so steady-state merges allocate only the
    /// output run itself.
    merge_cursors: Vec<usize>,
}

impl KvStore {
    /// A store with the default configuration (1 MiB memtable budget,
    /// 10-bit bloom filters, fanout-4 size-tiered compaction).
    pub fn new() -> Self {
        Self::with_config(KvConfig::default())
    }

    /// A store with an explicit memtable budget in bytes.
    pub fn with_memtable_budget(budget: usize) -> Self {
        Self::with_config(KvConfig { memtable_budget: budget, ..KvConfig::default() })
    }

    /// A store with explicit tuning knobs. A zero memtable budget is
    /// clamped to one byte (flush-per-write), zero fanout to two.
    pub fn with_config(config: KvConfig) -> Self {
        let config = KvConfig {
            memtable_budget: config.memtable_budget.max(1),
            tier_fanout: config.tier_fanout.max(2),
            ..config
        };
        KvStore {
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            config,
            runs: Vec::new(),
            flushes: 0,
            compactions: 0,
            compaction_read_bytes: 0,
            compaction_write_bytes: 0,
            run_probes: Cell::new(0),
            bloom_skips: Cell::new(0),
            merge_cursors: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> KvConfig {
        self.config
    }

    /// Byte cost of one memtable entry.
    fn entry_size(key: &Bytes, value: &Option<Bytes>) -> usize {
        key.len() + value.as_ref().map_or(0, Bytes::len)
    }

    /// Insert into the memtable with exact accounting: replacing an
    /// existing entry credits back the replaced entry's bytes, so
    /// overwrite-heavy workloads do not inflate `memtable_bytes` and
    /// flush prematurely.
    fn insert_mem(&mut self, key: Bytes, value: Option<Bytes>) {
        let added = Self::entry_size(&key, &value);
        if let Some(old) = self.memtable.insert(key.clone(), value) {
            let replaced = Self::entry_size(&key, &old);
            self.memtable_bytes = self.memtable_bytes.saturating_sub(replaced);
        }
        self.memtable_bytes += added;
        self.maybe_flush();
    }

    /// Insert or overwrite a key.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.insert_mem(key.into(), Some(value.into()));
    }

    /// Delete a key (writes a tombstone).
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        self.insert_mem(key.into(), None);
    }

    /// Point lookup. Runs are consulted newest-first; each run's bloom
    /// filter is checked before its entries, so absent keys skip the
    /// binary search on all but false-positive runs.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        if let Some(v) = self.memtable.get(key) {
            return v.clone();
        }
        for run in self.runs.iter().rev() {
            if let Some(bloom) = &run.bloom {
                if !bloom.may_contain(key) {
                    self.bloom_skips.set(self.bloom_skips.get() + 1);
                    continue;
                }
            }
            self.run_probes.set(self.run_probes.get() + 1);
            if let Ok(idx) = run.entries.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
                return run.entries[idx].1.clone();
            }
        }
        None
    }

    /// Range scan over `[lo, hi)`, newest version per key, tombstones
    /// elided, ascending key order.
    pub fn scan(&self, lo: &[u8], hi: &[u8]) -> Vec<(Bytes, Bytes)> {
        // Merge: memtable wins, then newer runs win.
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        for run in &self.runs {
            let start = run.entries.partition_point(|(k, _)| k.as_ref() < lo);
            for (k, v) in &run.entries[start..] {
                if k.as_ref() >= hi {
                    break;
                }
                merged.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in self.memtable.range::<[u8], _>((
            std::ops::Bound::Included(lo),
            std::ops::Bound::Excluded(hi),
        )) {
            merged.insert(k.clone(), v.clone());
        }
        merged.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect()
    }

    /// Freeze the memtable into a run if over budget.
    fn maybe_flush(&mut self) {
        if self.memtable_bytes >= self.config.memtable_budget {
            self.flush();
        }
    }

    /// Force-freeze the memtable (used before snapshots/recovery points).
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries: Vec<(Bytes, Option<Bytes>)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        self.memtable_bytes = 0;
        self.runs.push(Run::build(entries, self.config.bloom_bits_per_key));
        self.flushes += 1;
        self.maybe_tier_compact();
    }

    /// Size-tiered compaction: find the oldest age-contiguous window of
    /// `tier_fanout` runs sharing a size tier and merge it into one run
    /// in place. Repeats until no tier is over-full (a merge can promote
    /// its output into a tier that then itself overflows).
    fn maybe_tier_compact(&mut self) {
        loop {
            let Some((start, len)) = self.find_tier_window() else {
                return;
            };
            self.merge_window(start, len);
        }
    }

    /// Oldest contiguous window of `tier_fanout` same-tier runs, if any.
    fn find_tier_window(&self) -> Option<(usize, usize)> {
        let fanout = self.config.tier_fanout;
        let mut start = 0;
        while start < self.runs.len() {
            let tier = self.runs[start].tier();
            let mut end = start + 1;
            while end < self.runs.len() && self.runs[end].tier() == tier {
                end += 1;
            }
            if end - start >= fanout {
                return Some((start, fanout));
            }
            start = end;
        }
        None
    }

    /// Merge `len` runs starting at `start` (age-contiguous; newer runs
    /// shadow older). Tombstones drop only when the window includes the
    /// oldest run — otherwise they may still shadow entries below.
    ///
    /// The merge is a cursor-based k-way pass over the window's sorted
    /// entries, straight into a `Vec` sized to the worst case. The
    /// previous implementation funnelled every entry through a
    /// `BTreeMap` (one node allocation per entry, `O(total log total)`
    /// ordered inserts) only to drain it again; the k-way pass is
    /// `O(total · k)` key comparisons with `k = tier_fanout` (usually 4)
    /// and allocates nothing but the output run. Output is identical:
    /// sorted unique keys, newest version wins, same tombstone rule.
    fn merge_window(&mut self, start: usize, len: usize) {
        let drop_tombstones = start == 0;
        let total: usize =
            self.runs.iter().skip(start).take(len).map(|r| r.entries.len()).sum();
        self.merge_cursors.clear();
        self.merge_cursors.resize(len, 0);
        let mut entries: Vec<(Bytes, Option<Bytes>)> = Vec::with_capacity(total);
        loop {
            // Find the smallest key under any cursor. On ties the newer
            // run (larger window index) shadows: advance the older
            // cursor past its dead entry and keep scanning.
            let mut best: Option<usize> = None;
            for wi in 0..len {
                // lint:allow(panic-path): wi < len and start + len <= runs.len(): the compaction window the caller selected
                let run = &self.runs[start + wi].entries;
                // lint:allow(panic-path): wi < len == merge_cursors.len(); resized above
                let Some((key, _)) = run.get(self.merge_cursors[wi]) else { continue };
                match best {
                    None => best = Some(wi),
                    Some(b) => {
                        // lint:allow(panic-path): b is a window index whose cursor run.get() just yielded; all three indices in-bounds by construction
                        let best_key = &self.runs[start + b].entries[self.merge_cursors[b]].0;
                        if key < best_key {
                            best = Some(wi);
                        } else if key == best_key {
                            // wi > b, so wi is the newer run.
                            // lint:allow(panic-path): b < len == merge_cursors.len(); resized above
                            self.merge_cursors[b] += 1;
                            best = Some(wi);
                        }
                    }
                }
            }
            let Some(wi) = best else { break };
            // lint:allow(panic-path): best = Some(wi) only after run.get(cursor) yielded exactly this entry
            let (key, value) = self.runs[start + wi].entries[self.merge_cursors[wi]].clone();
            // lint:allow(panic-path): wi < len == merge_cursors.len(); resized above
            self.merge_cursors[wi] += 1;
            if !drop_tombstones || value.is_some() {
                entries.push((key, value));
            }
        }
        for run in self.runs.drain(start..start + len) {
            self.compaction_read_bytes += run.bytes as u64;
        }
        let run = Run::build(entries, self.config.bloom_bits_per_key);
        self.compaction_write_bytes += run.bytes as u64;
        self.runs.insert(start, run);
        self.compactions += 1;
    }

    /// Major compaction: merge all runs into one, dropping shadowed
    /// versions and tombstones that no longer shadow anything.
    pub fn compact(&mut self) {
        if self.runs.len() <= 1 {
            return;
        }
        self.merge_window(0, self.runs.len());
    }

    /// Number of immutable runs (diagnostics).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total bytes held in immutable runs.
    pub fn run_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.bytes).sum()
    }

    /// Current memtable fill in bytes (exact, overwrite-aware).
    pub fn memtable_bytes(&self) -> usize {
        self.memtable_bytes
    }

    /// Flush/compaction/filter accounting as a mergeable counter set:
    /// `flushes`, `compactions`, `compaction_read_bytes`,
    /// `compaction_write_bytes` (write amplification numerator),
    /// `run_probes` (binary searches performed), `bloom_skips` (probes a
    /// filter avoided).
    pub fn stats(&self) -> Counters {
        let mut c = Counters::new();
        c.add("flushes", self.flushes);
        c.add("compactions", self.compactions);
        c.add("compaction_read_bytes", self.compaction_read_bytes);
        c.add("compaction_write_bytes", self.compaction_write_bytes);
        c.add("run_probes", self.run_probes.get());
        c.add("bloom_skips", self.bloom_skips.get());
        c
    }

    /// Live key count (scan-based; diagnostics only).
    pub fn len(&self) -> usize {
        self.scan(&[], &[0xffu8; 64]).len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use proptest::prelude::*;
    use rand::Rng;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_overwrite_delete() {
        let mut kv = KvStore::new();
        kv.put(b("a"), b("1"));
        assert_eq!(kv.get(b"a"), Some(b("1")));
        kv.put(b("a"), b("2"));
        assert_eq!(kv.get(b"a"), Some(b("2")));
        kv.delete(b("a"));
        assert_eq!(kv.get(b"a"), None);
        assert_eq!(kv.get(b"zzz"), None);
    }

    #[test]
    fn reads_span_memtable_and_runs() {
        let mut kv = KvStore::with_memtable_budget(64);
        for i in 0..100u32 {
            kv.put(Bytes::from(format!("key{i:03}")), Bytes::from(format!("v{i}")));
        }
        assert!(kv.run_count() > 0, "small budget must have flushed");
        for i in 0..100u32 {
            assert_eq!(
                kv.get(format!("key{i:03}").as_bytes()),
                Some(Bytes::from(format!("v{i}"))),
                "key{i}"
            );
        }
    }

    #[test]
    fn newer_run_shadows_older() {
        let mut kv = KvStore::with_memtable_budget(1 << 20);
        kv.put(b("k"), b("old"));
        kv.flush();
        kv.put(b("k"), b("new"));
        kv.flush();
        assert_eq!(kv.get(b"k"), Some(b("new")));
        kv.compact();
        assert_eq!(kv.get(b"k"), Some(b("new")));
        assert_eq!(kv.run_count(), 1);
    }

    #[test]
    fn tombstones_survive_flush_until_compaction() {
        let mut kv = KvStore::new();
        kv.put(b("k"), b("v"));
        kv.flush();
        kv.delete(b("k"));
        kv.flush();
        assert_eq!(kv.get(b"k"), None);
        kv.compact();
        assert_eq!(kv.get(b"k"), None);
        assert!(kv.is_empty());
    }

    #[test]
    fn scan_merges_and_orders() {
        let mut kv = KvStore::with_memtable_budget(48);
        kv.put(b("b"), b("2"));
        kv.put(b("d"), b("4"));
        kv.flush();
        kv.put(b("a"), b("1"));
        kv.put(b("c"), b("3"));
        kv.delete(b("d"));
        let hits = kv.scan(b"a", b"e");
        let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(keys, vec![b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
        // Range excludes the upper bound.
        let partial = kv.scan(b"a", b"c");
        assert_eq!(partial.len(), 2);
    }

    #[test]
    fn size_tiered_compaction_bounds_run_count() {
        let mut kv = KvStore::with_config(KvConfig {
            memtable_budget: 16,
            tier_fanout: 4,
            ..KvConfig::default()
        });
        for i in 0..400u32 {
            kv.put(Bytes::from(format!("k{i}")), Bytes::from(vec![0u8; 8]));
        }
        assert!(kv.compactions > 0, "tier merges must have fired");
        // Run count is bounded by fanout × tier depth, far below the
        // flush count (one run per ~put at this budget).
        assert!(kv.flushes > 50, "sanity: lots of flushes happened");
        assert!(
            kv.run_count() <= 16,
            "size tiering must bound the run count: {} runs after {} flushes",
            kv.run_count(),
            kv.flushes
        );
        // Every key is still readable through the tiers.
        for i in 0..400u32 {
            assert!(kv.get(format!("k{i}").as_bytes()).is_some(), "k{i}");
        }
    }

    #[test]
    fn tier_merges_do_not_drop_covered_tombstones() {
        // A tombstone merged in a window that excludes the oldest run
        // must survive (it still shadows the value below).
        let mut kv = KvStore::with_config(KvConfig {
            memtable_budget: 1 << 20,
            tier_fanout: 2,
            bloom_bits_per_key: 10,
        });
        // Oldest run: a large value for "k" (big enough to sit in a
        // higher size tier than the tombstone runs that follow).
        kv.put(b("k"), Bytes::from(vec![7u8; 256]));
        kv.flush();
        // Two small runs containing the tombstone and an unrelated key:
        // same (small) tier, contiguous, newer than the big run — the
        // fanout-2 window merges them without touching the oldest run.
        kv.delete(b("k"));
        kv.flush();
        kv.put(b("x"), b(""));
        kv.flush();
        assert!(kv.compactions > 0, "the two small runs must have merged");
        assert!(kv.run_count() >= 2, "the oldest run must not be in the window");
        assert_eq!(kv.get(b"k"), None, "tombstone still shadows the old value");
        assert_eq!(kv.get(b"x"), Some(b("")));
        // A major compaction finally drops both.
        kv.compact();
        assert_eq!(kv.get(b"k"), None);
        assert_eq!(kv.run_count(), 1);
    }

    #[test]
    fn overwrites_do_not_inflate_memtable_accounting() {
        // Regression (satellite): put/delete used to add the new entry's
        // bytes without crediting the replaced entry, so N overwrites of
        // one key counted N× the size and flushed prematurely.
        let budget = 1 << 16;
        let mut kv = KvStore::with_memtable_budget(budget);
        // Each entry is ~24 bytes; 10k overwrites would previously count
        // ~240 KB >> budget and force flushes. Exact accounting keeps the
        // memtable at one entry's worth of bytes: zero flushes.
        for i in 0..10_000u32 {
            kv.put(b("hot-key"), Bytes::from(format!("value-{i:08}")));
        }
        assert_eq!(kv.flushes, 0, "overwrites of one key must not flush under budget");
        assert_eq!(kv.memtable_bytes(), "hot-key".len() + "value-00009999".len());
        assert_eq!(kv.get(b"hot-key"), Some(b("value-00009999")));
        // Delete-over-put shrinks the accounted bytes to the tombstone.
        kv.delete(b("hot-key"));
        assert_eq!(kv.memtable_bytes(), "hot-key".len());
        // And put-over-delete swaps the tombstone back out.
        kv.put(b("hot-key"), b("v"));
        assert_eq!(kv.memtable_bytes(), "hot-key".len() + 1);
    }

    #[test]
    fn bloom_filters_skip_runs_on_missing_keys() {
        let mut kv = KvStore::with_config(KvConfig {
            memtable_budget: 256,
            bloom_bits_per_key: 10,
            tier_fanout: 4,
        });
        for i in 0..500u32 {
            kv.put(Bytes::from(format!("key-{i:04}")), Bytes::from(vec![1u8; 16]));
        }
        assert!(kv.run_count() > 1);
        for i in 0..500u32 {
            assert_eq!(kv.get(format!("absent-{i}").as_bytes()), None);
        }
        let stats = kv.stats();
        let probes = stats.get("run_probes");
        let skips = stats.get("bloom_skips");
        assert!(
            skips > 9 * probes,
            "filters must absorb the vast majority of absent-key probes: \
             {skips} skips vs {probes} probes"
        );
    }

    #[test]
    fn bloom_disabled_probes_every_run() {
        let mut kv = KvStore::with_config(KvConfig {
            memtable_budget: 256,
            bloom_bits_per_key: 0,
            tier_fanout: 4,
        });
        for i in 0..200u32 {
            kv.put(Bytes::from(format!("key-{i:04}")), Bytes::from(vec![1u8; 16]));
        }
        let runs = kv.run_count() as u64;
        assert!(runs > 1);
        assert_eq!(kv.get(b"absent"), None);
        assert_eq!(kv.stats().get("run_probes"), runs, "no filters: every run probed");
        assert_eq!(kv.stats().get("bloom_skips"), 0);
    }

    #[test]
    fn compaction_stats_track_bytes_moved() {
        let mut kv = KvStore::with_memtable_budget(64);
        for i in 0..200u32 {
            kv.put(Bytes::from(format!("k{i:03}")), Bytes::from(vec![2u8; 16]));
        }
        let stats = kv.stats();
        assert!(stats.get("compactions") > 0);
        assert!(stats.get("compaction_read_bytes") > 0);
        assert!(stats.get("compaction_write_bytes") > 0);
        // Merges only dedup/drop, never invent bytes.
        assert!(stats.get("compaction_write_bytes") <= stats.get("compaction_read_bytes"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_btreemap_model(
            ops in proptest::collection::vec((0u8..3, "[a-d]{1,3}", "[x-z]{0,3}"), 1..120),
            budget in 16usize..256,
            fanout in 2usize..5,
            bloom_bits in 0usize..12,
        ) {
            let mut kv = KvStore::with_config(KvConfig {
                memtable_budget: budget,
                bloom_bits_per_key: bloom_bits,
                tier_fanout: fanout,
            });
            let mut model: BTreeMap<String, String> = BTreeMap::new();
            for (op, k, v) in &ops {
                match op {
                    0 => {
                        kv.put(Bytes::from(k.clone()), Bytes::from(v.clone()));
                        model.insert(k.clone(), v.clone());
                    }
                    1 => {
                        kv.delete(Bytes::from(k.clone()));
                        model.remove(k);
                    }
                    _ => {
                        let got = kv.get(k.as_bytes()).map(|b| String::from_utf8_lossy(&b).to_string());
                        prop_assert_eq!(got, model.get(k).cloned());
                    }
                }
            }
            // Full scan equals the model.
            let scanned: Vec<(String, String)> = kv
                .scan(b"a", b"zzzz")
                .into_iter()
                .map(|(k, v)| (
                    String::from_utf8_lossy(&k).to_string(),
                    String::from_utf8_lossy(&v).to_string(),
                ))
                .collect();
            let expected: Vec<(String, String)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(scanned, expected);
        }
    }

    #[test]
    fn randomized_stress_against_model() {
        let mut rng = seeded_rng(99);
        let mut kv = KvStore::with_memtable_budget(128);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for _ in 0..5000 {
            let key = format!("key-{}", rng.gen_range(0..300)).into_bytes();
            if rng.gen_bool(0.7) {
                let val = format!("val-{}", rng.gen_range(0..1000)).into_bytes();
                kv.put(Bytes::from(key.clone()), Bytes::from(val.clone()));
                model.insert(key, val);
            } else {
                kv.delete(Bytes::from(key.clone()));
                model.remove(&key);
            }
        }
        for i in 0..300 {
            let key = format!("key-{i}").into_bytes();
            assert_eq!(
                kv.get(&key).map(|b| b.to_vec()),
                model.get(&key).cloned(),
                "key-{i}"
            );
        }
    }
}
