//! Per-run bloom filters for the LSM read path.
//!
//! An LSM point lookup that misses the memtable must probe every
//! immutable run newest-first; on a missing key that is `O(runs)` binary
//! searches for nothing. A bloom filter in front of each run answers
//! "definitely not here" from a handful of bit tests, so a miss touches
//! the run's sorted entries only on the (rare) false positive — the
//! standard LevelDB/RocksDB trick, sized here by bits-per-key.
//!
//! The filter uses double hashing (Kirsch–Mitzenmacher): two independent
//! Fx hashes `h1`, `h2` derive the `k` probe positions as
//! `h1 + i·h2 mod m`, which preserves the classic false-positive rate
//! without `k` full hash passes over the key.

use mv_common::hash::FxHasher;
use std::hash::Hasher as _;

/// A fixed-size bloom filter over byte-string keys.
#[derive(Debug, Clone)]
pub struct Bloom {
    bits: Vec<u64>,
    /// Total bit count (`bits.len() * 64`).
    nbits: u64,
    /// Number of probe positions per key.
    k: u32,
}

fn hash_with_seed(key: &[u8], seed: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(seed);
    h.write(key);
    h.finish()
}

impl Bloom {
    /// A filter sized for `expected_keys` at `bits_per_key` bits each.
    /// `k` is derived as `bits_per_key · ln 2`, clamped to `[1, 8]` —
    /// the optimum for the classic false-positive formula.
    pub fn with_params(expected_keys: usize, bits_per_key: usize) -> Self {
        let nbits = (expected_keys.max(1) * bits_per_key.max(1)).max(64) as u64;
        let words = nbits.div_ceil(64) as usize;
        let k = ((bits_per_key as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 8);
        Bloom { bits: vec![0u64; words], nbits: words as u64 * 64, k }
    }

    /// Build a filter over an iterator of keys.
    pub fn from_keys<'a>(
        keys: impl Iterator<Item = &'a [u8]>,
        expected_keys: usize,
        bits_per_key: usize,
    ) -> Self {
        let mut bloom = Bloom::with_params(expected_keys, bits_per_key);
        for key in keys {
            bloom.insert(key);
        }
        bloom
    }

    #[inline]
    fn probes(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h1 = hash_with_seed(key, 0x9e37_79b9_7f4a_7c15);
        // An even h2 would cycle through a subgroup of the bit positions;
        // forcing it odd keeps the probe sequence full-period.
        let h2 = hash_with_seed(key, 0xc2b2_ae3d_27d4_eb4f) | 1;
        (0..self.k as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits)
    }

    /// Add a key.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<u64> = self.probes(key).collect();
        for pos in positions {
            self.bits[(pos / 64) as usize] |= 1 << (pos % 64);
        }
    }

    /// True when the key *may* be present; false means definitely absent.
    #[inline]
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.probes(key)
            .all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Size of the filter in bytes (diagnostics / space accounting).
    pub fn byte_len(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_always_found() {
        let keys: Vec<Vec<u8>> = (0..1_000u32).map(|i| format!("key-{i}").into_bytes()).collect();
        let bloom = Bloom::from_keys(keys.iter().map(Vec::as_slice), keys.len(), 10);
        for k in &keys {
            assert!(bloom.may_contain(k), "no false negatives allowed");
        }
    }

    #[test]
    fn false_positive_rate_is_near_theory() {
        let keys: Vec<Vec<u8>> = (0..10_000u32).map(|i| format!("in-{i}").into_bytes()).collect();
        let bloom = Bloom::from_keys(keys.iter().map(Vec::as_slice), keys.len(), 10);
        let mut fps = 0u32;
        let probes = 10_000u32;
        for i in 0..probes {
            if bloom.may_contain(format!("out-{i}").as_bytes()) {
                fps += 1;
            }
        }
        // 10 bits/key with optimal k gives ~1% FP; allow generous slack.
        let rate = fps as f64 / probes as f64;
        assert!(rate < 0.05, "false-positive rate {rate} too high");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = Bloom::with_params(100, 10);
        assert!(!bloom.may_contain(b"anything"));
        assert!(bloom.byte_len() >= 100 * 10 / 8);
    }

    #[test]
    fn tiny_filters_are_clamped_to_a_useful_floor() {
        // Zero expected keys / 1 bit per key still yields a working filter.
        let mut bloom = Bloom::with_params(0, 1);
        bloom.insert(b"x");
        assert!(bloom.may_contain(b"x"));
    }
}
