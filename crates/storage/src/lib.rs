#![forbid(unsafe_code)]
//! `mv-storage` — the heterogeneous storage layer of Fig. 7.
//!
//! §IV-E2: the cloud-storage layer *"contains heterogeneous data stores,
//! including the key-value (KV) store, object store, block store, etc."* —
//! and §IV-F asks how data from the two spaces should be *organized*
//! (together, apart, or hybrid) and for *"novel buffer management and
//! caching schemes … conscious of the semantics"*.
//!
//! * [`kv`] — a log-structured KV store: mutable memtable, immutable
//!   sorted runs, per-run [`bloom`] filters, size-tiered compaction,
//!   range scans, tombstones;
//! * [`sharded_kv`] — the KV store partitioned across key-hash shards
//!   with the `mv_core::sharded` ownership discipline (durable ingest
//!   fast path, E17);
//! * [`wal`] — a write-ahead log with crash/recovery simulation;
//! * [`group_commit`] — the batched WAL: records coalesce into one
//!   checksum-framed batch per sync, with byte/record/deadline triggers
//!   and whole-batch crash atomicity;
//! * [`bloom`] — double-hashed bloom filters for the LSM read path;
//! * [`object`] — a content-addressed object store with refcounted
//!   deduplication (shared avatar assets land here in E13);
//! * [`block`] — a fixed-size block store with a free bitmap and extent
//!   allocation;
//! * [`bufferpool`] — a page cache with LRU, LFU and the **space-aware**
//!   eviction policy §IV-F sketches (physical-space pages are protected
//!   over virtual-space pages);
//! * [`organization`] — the §IV-F unified / separate / hybrid layouts,
//!   measurable against single-space and cross-space access mixes (E9).

pub mod block;
pub mod bloom;
pub mod bufferpool;
pub mod codec;
pub mod group_commit;
pub mod kv;
pub mod object;
pub mod organization;
pub mod sharded_kv;
pub mod wal;

pub use block::BlockStore;
pub use bloom::Bloom;
pub use bufferpool::{BufferPool, EvictionPolicy, PageId};
pub use group_commit::{GroupCommitPolicy, GroupCommitWal};
pub use kv::{KvConfig, KvStore};
pub use object::ObjectStore;
pub use organization::{DataOrganization, Layout};
pub use sharded_kv::ShardedKv;
pub use wal::{RecoveryReport, Wal, WalRecord, WalRecordRef};
