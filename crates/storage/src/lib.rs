//! `mv-storage` — the heterogeneous storage layer of Fig. 7.
//!
//! §IV-E2: the cloud-storage layer *"contains heterogeneous data stores,
//! including the key-value (KV) store, object store, block store, etc."* —
//! and §IV-F asks how data from the two spaces should be *organized*
//! (together, apart, or hybrid) and for *"novel buffer management and
//! caching schemes … conscious of the semantics"*.
//!
//! * [`kv`] — a log-structured KV store: mutable memtable, immutable
//!   sorted runs, merge compaction, range scans, tombstones;
//! * [`wal`] — a write-ahead log with crash/recovery simulation;
//! * [`object`] — a content-addressed object store with refcounted
//!   deduplication (shared avatar assets land here in E13);
//! * [`block`] — a fixed-size block store with a free bitmap and extent
//!   allocation;
//! * [`bufferpool`] — a page cache with LRU, LFU and the **space-aware**
//!   eviction policy §IV-F sketches (physical-space pages are protected
//!   over virtual-space pages);
//! * [`organization`] — the §IV-F unified / separate / hybrid layouts,
//!   measurable against single-space and cross-space access mixes (E9).

pub mod block;
pub mod bufferpool;
pub mod kv;
pub mod object;
pub mod organization;
pub mod wal;

pub use block::BlockStore;
pub use bufferpool::{BufferPool, EvictionPolicy, PageId};
pub use kv::KvStore;
pub use object::ObjectStore;
pub use organization::{DataOrganization, Layout};
pub use wal::{Wal, WalRecord};
