//! Panic-free little-endian decode helpers for the recovery paths.
//!
//! Recovery code reads bytes that survived a crash — or that a fault
//! schedule deliberately mangled — so every read here is total: out of
//! range returns `None`, never panics. `mv-lint`'s `panic-path` rule
//! holds the WAL, group-commit, and transport decode paths to that
//! standard; these helpers are how they meet it.

/// Read a little-endian `u32` at byte offset `at`.
pub fn read_u32_le(bytes: &[u8], at: usize) -> Option<u32> {
    let chunk: [u8; 4] = bytes.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(chunk))
}

/// Read a little-endian `u64` at byte offset `at`.
pub fn read_u64_le(bytes: &[u8], at: usize) -> Option<u64> {
    let chunk: [u8; 8] = bytes.get(at..at.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_le_bytes(chunk))
}

/// Read a `u32` length prefix at `at`, then that many bytes after it.
/// Returns the chunk and the offset just past it.
pub fn read_chunk(bytes: &[u8], at: usize) -> Option<(&[u8], usize)> {
    let len = read_u32_le(bytes, at)? as usize;
    let start = at.checked_add(4)?;
    let end = start.checked_add(len)?;
    Some((bytes.get(start..end)?, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_range() {
        let mut b = 7u32.to_le_bytes().to_vec();
        b.extend_from_slice(&9u64.to_le_bytes());
        assert_eq!(read_u32_le(&b, 0), Some(7));
        assert_eq!(read_u64_le(&b, 4), Some(9));
    }

    #[test]
    fn out_of_range_is_none_not_panic() {
        let b = [1u8, 2, 3];
        assert_eq!(read_u32_le(&b, 0), None);
        assert_eq!(read_u32_le(&b, usize::MAX), None);
        assert_eq!(read_u64_le(&b, 1), None);
        assert_eq!(read_chunk(&b, usize::MAX - 2), None);
    }

    #[test]
    fn chunk_round_trip_and_hostile_length() {
        let mut b = Vec::new();
        b.extend_from_slice(&3u32.to_le_bytes());
        b.extend_from_slice(b"abc");
        let (chunk, used) = read_chunk(&b, 0).unwrap();
        assert_eq!((chunk, used), (&b"abc"[..], 7));
        // A length field claiming more bytes than exist must not panic.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(b"abc");
        assert_eq!(read_chunk(&hostile, 0), None);
    }
}
