//! Panic-free little-endian decode helpers for the recovery paths.
//!
//! Recovery code reads bytes that survived a crash — or that a fault
//! schedule deliberately mangled — so every read here is total: out of
//! range returns `None`, never panics. `mv-lint`'s `panic-path` rule
//! holds the WAL, group-commit, and transport decode paths to that
//! standard; these helpers are how they meet it.

/// Read a little-endian `u32` at byte offset `at`.
pub fn read_u32_le(bytes: &[u8], at: usize) -> Option<u32> {
    let chunk: [u8; 4] = bytes.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(chunk))
}

/// Read a little-endian `u64` at byte offset `at`.
pub fn read_u64_le(bytes: &[u8], at: usize) -> Option<u64> {
    let chunk: [u8; 8] = bytes.get(at..at.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_le_bytes(chunk))
}

/// Read a `u32` length prefix at `at`, then that many bytes after it.
/// Returns the chunk and the offset just past it.
pub fn read_chunk(bytes: &[u8], at: usize) -> Option<(&[u8], usize)> {
    let len = read_u32_le(bytes, at)? as usize;
    let start = at.checked_add(4)?;
    let end = start.checked_add(len)?;
    Some((bytes.get(start..end)?, end))
}

/// A checked little-endian cursor over borrowed bytes.
///
/// Every decode path in the workspace used to carry its own copy of
/// this cursor (offset math in the WAL, a private `Reader` in the
/// durable engine); this is the shared one. All reads are total —
/// out-of-range returns `None`, never panics — and all slice outputs
/// borrow from the input (`&'a [u8]`), so callers can route, validate,
/// and filter without copying; owned copies happen only where an owned
/// type is actually constructed.
#[derive(Debug, Clone, Copy)]
pub struct SliceReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> SliceReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SliceReader { buf, at: 0 }
    }

    /// Borrow the next `n` bytes and advance past them.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let chunk = self.buf.get(self.at..end)?;
        self.at = end;
        Some(chunk)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|b| b.first().copied())
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let chunk: [u8; 4] = self.take(4)?.try_into().ok()?;
        Some(u32::from_le_bytes(chunk))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let chunk: [u8; 8] = self.take(8)?.try_into().ok()?;
        Some(u64::from_le_bytes(chunk))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Option<f64> {
        let chunk: [u8; 8] = self.take(8)?.try_into().ok()?;
        Some(f64::from_le_bytes(chunk))
    }

    /// Read a `u32` length prefix then borrow that many bytes.
    pub fn chunk(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Byte offset of the cursor from the start of the buffer.
    pub fn position(&self) -> usize {
        self.at
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// True once the cursor has consumed the whole buffer — decoders
    /// use this to reject trailing garbage.
    pub fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_range() {
        let mut b = 7u32.to_le_bytes().to_vec();
        b.extend_from_slice(&9u64.to_le_bytes());
        assert_eq!(read_u32_le(&b, 0), Some(7));
        assert_eq!(read_u64_le(&b, 4), Some(9));
    }

    #[test]
    fn out_of_range_is_none_not_panic() {
        let b = [1u8, 2, 3];
        assert_eq!(read_u32_le(&b, 0), None);
        assert_eq!(read_u32_le(&b, usize::MAX), None);
        assert_eq!(read_u64_le(&b, 1), None);
        assert_eq!(read_chunk(&b, usize::MAX - 2), None);
    }

    #[test]
    fn slice_reader_walks_a_frame_borrowing_chunks() {
        let mut b = Vec::new();
        b.push(7u8);
        b.extend_from_slice(&3u32.to_le_bytes());
        b.extend_from_slice(b"abc");
        b.extend_from_slice(&42u64.to_le_bytes());
        b.extend_from_slice(&1.5f64.to_le_bytes());
        let mut r = SliceReader::new(&b);
        assert_eq!(r.u8(), Some(7));
        let chunk = r.chunk().unwrap();
        assert_eq!(chunk, b"abc");
        // The chunk borrows the input buffer — same allocation.
        assert!(std::ptr::eq(chunk.as_ptr(), b[5..].as_ptr()));
        assert_eq!(r.u64(), Some(42));
        assert_eq!(r.f64(), Some(1.5));
        assert!(r.done());
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.position(), b.len());
    }

    #[test]
    fn slice_reader_is_total_on_truncated_and_hostile_input() {
        let mut r = SliceReader::new(&[1, 2, 3]);
        assert_eq!(r.u32(), None, "short read must not advance-panic");
        assert_eq!(r.u8(), Some(1), "failed read must not consume bytes");
        // Hostile length prefix far past the buffer.
        let mut hostile = u32::MAX.to_le_bytes().to_vec();
        hostile.extend_from_slice(b"abc");
        let mut r = SliceReader::new(&hostile);
        assert_eq!(r.chunk(), None);
        let mut r = SliceReader::new(&[]);
        assert_eq!(r.u8(), None);
        assert_eq!(r.u64(), None);
        assert!(r.done());
    }

    #[test]
    fn chunk_round_trip_and_hostile_length() {
        let mut b = Vec::new();
        b.extend_from_slice(&3u32.to_le_bytes());
        b.extend_from_slice(b"abc");
        let (chunk, used) = read_chunk(&b, 0).unwrap();
        assert_eq!((chunk, used), (&b"abc"[..], 7));
        // A length field claiming more bytes than exist must not panic.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(b"abc");
        assert_eq!(read_chunk(&hostile, 0), None);
    }
}
