//! A content-addressed object store with refcounted deduplication.
//!
//! Large immutable blobs (avatar meshes, scene textures, video segments)
//! are stored by content hash; identical payloads stored under different
//! names share one copy. E13 uses the dedup accounting to reproduce the
//! shared-representation claim of §IV-I.

use bytes::Bytes;
use mv_common::hash::{fx_hash_one, FastMap};
use mv_common::Space;
use mv_common::{MvError, MvResult};

/// Object metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMeta {
    /// Content fingerprint.
    pub content_hash: u64,
    /// Payload size in bytes.
    pub size: u64,
    /// Which space produced the object.
    pub space: Space,
}

#[derive(Debug)]
struct Blob {
    data: Bytes,
    refcount: u64,
}

/// The store: names → content hashes → blobs.
#[derive(Debug, Default)]
pub struct ObjectStore {
    names: FastMap<String, ObjectMeta>,
    blobs: FastMap<u64, Blob>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `data` under `name` (overwrites any previous object of that
    /// name). Returns the object's metadata.
    pub fn put(&mut self, name: &str, data: Bytes, space: Space) -> ObjectMeta {
        let content_hash = fx_hash_one(&data.as_ref());
        // Drop the old referent if the name existed.
        if let Some(old) = self.names.remove(name) {
            self.release(old.content_hash);
        }
        let size = data.len() as u64;
        match self.blobs.get_mut(&content_hash) {
            Some(blob) => blob.refcount += 1,
            None => {
                self.blobs.insert(content_hash, Blob { data, refcount: 1 });
            }
        }
        let meta = ObjectMeta { content_hash, size, space };
        self.names.insert(name.to_string(), meta.clone());
        meta
    }

    /// Fetch an object by name.
    pub fn get(&self, name: &str) -> MvResult<Bytes> {
        let meta = self
            .names
            .get(name)
            .ok_or_else(|| MvError::InvalidArgument(format!("unknown object {name}")))?;
        Ok(self.blobs[&meta.content_hash].data.clone())
    }

    /// Metadata lookup.
    pub fn stat(&self, name: &str) -> Option<&ObjectMeta> {
        self.names.get(name)
    }

    /// Delete a name; the blob is reclaimed when the last name drops.
    pub fn delete(&mut self, name: &str) -> bool {
        match self.names.remove(name) {
            Some(meta) => {
                self.release(meta.content_hash);
                true
            }
            None => false,
        }
    }

    fn release(&mut self, content_hash: u64) {
        if let Some(blob) = self.blobs.get_mut(&content_hash) {
            blob.refcount -= 1;
            if blob.refcount == 0 {
                self.blobs.remove(&content_hash);
            }
        }
    }

    /// Number of named objects.
    pub fn object_count(&self) -> usize {
        self.names.len()
    }

    /// Logical bytes (sum over names) vs physical bytes (sum over unique
    /// blobs) — the dedup accounting pair.
    pub fn bytes(&self) -> (u64, u64) {
        let logical = self.names.values().map(|m| m.size).sum();
        let physical = self.blobs.values().map(|b| b.data.len() as u64).sum();
        (logical, physical)
    }

    /// Dedup factor (logical / physical; 1.0 when empty).
    pub fn dedup_factor(&self) -> f64 {
        let (logical, physical) = self.bytes();
        if physical == 0 {
            1.0
        } else {
            logical as f64 / physical as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut s = ObjectStore::new();
        s.put("mesh/1", Bytes::from_static(b"triangles"), Space::Virtual);
        assert_eq!(s.get("mesh/1").unwrap(), Bytes::from_static(b"triangles"));
        assert!(s.get("mesh/2").is_err());
        assert_eq!(s.stat("mesh/1").unwrap().space, Space::Virtual);
    }

    #[test]
    fn identical_content_is_shared() {
        let mut s = ObjectStore::new();
        let payload = Bytes::from(vec![7u8; 1000]);
        for i in 0..10 {
            s.put(&format!("avatar/{i}"), payload.clone(), Space::Virtual);
        }
        let (logical, physical) = s.bytes();
        assert_eq!(logical, 10_000);
        assert_eq!(physical, 1_000);
        assert!((s.dedup_factor() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn blob_reclaimed_when_last_name_drops() {
        let mut s = ObjectStore::new();
        let payload = Bytes::from_static(b"shared");
        s.put("a", payload.clone(), Space::Physical);
        s.put("b", payload, Space::Physical);
        assert!(s.delete("a"));
        assert_eq!(s.get("b").unwrap(), Bytes::from_static(b"shared"));
        assert!(s.delete("b"));
        assert!(!s.delete("b"));
        let (logical, physical) = s.bytes();
        assert_eq!((logical, physical), (0, 0));
    }

    #[test]
    fn overwrite_releases_old_content() {
        let mut s = ObjectStore::new();
        s.put("x", Bytes::from_static(b"old-content"), Space::Virtual);
        s.put("x", Bytes::from_static(b"new-content"), Space::Virtual);
        assert_eq!(s.object_count(), 1);
        let (_, physical) = s.bytes();
        assert_eq!(physical, 11); // only the new blob remains
        assert_eq!(s.get("x").unwrap(), Bytes::from_static(b"new-content"));
    }
}
