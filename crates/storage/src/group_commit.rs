//! Group-commit write-ahead logging.
//!
//! The record-at-a-time [`crate::wal::Wal`] pays a full frame header, a
//! checksum pass, and — on real hardware — a device flush *per record*.
//! At deluge ingest rates the flush dominates: §IV-F's "massive volumes
//! of data … generated continuously at rapid speed" cannot be made
//! durable one fsync at a time. [`GroupCommitWal`] coalesces appended
//! records into an in-memory batch and seals the whole batch into a
//! single checksum-framed unit per `sync()` — one header, one checksum
//! pass, one (simulated) device flush, amortized over the batch
//! (GlassDB-style batching, applied to the log; cf. E5b).
//!
//! **Atomicity unit = the batch.** A batch frame is
//! `[count u32][len u32][checksum u64][records…]`; recovery validates
//! whole frames, so a crash mid-batch (torn write, bit rot) loses the
//! *entire* batch — never a prefix of it. The unsynced pending tail is
//! lost wholesale on crash, exactly like the record WAL's unsynced tail.
//!
//! Sealing is driven by a [`GroupCommitPolicy`]: a batch closes when it
//! reaches `max_records`, `max_bytes`, or its oldest pending record has
//! waited `max_delay` of virtual time — the classic throughput/latency
//! trigger triple — or when the caller forces `sync()`.

use crate::codec;
use crate::wal::{
    checksum, decode_payload_ref, encode_payload, Corruption, RecoveryReport, WalRecord,
    WalRecordRef,
};
use mv_common::codec::wire_u32;
use mv_common::metrics::Counters;
use mv_common::time::{SimDuration, SimTime};
use mv_obs::{SharedTracer, TraceCtx};

/// Batch frame header: record count + payload length + payload checksum.
const BATCH_HEADER: usize = 4 + 4 + 8;

/// When a pending batch seals.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitPolicy {
    /// Seal after this many pending records.
    pub max_records: usize,
    /// Seal once the pending payload reaches this many bytes.
    pub max_bytes: usize,
    /// Seal once the oldest pending record has waited this long
    /// (virtual time; checked on `append`/`tick`).
    pub max_delay: SimDuration,
}

impl Default for GroupCommitPolicy {
    fn default() -> Self {
        GroupCommitPolicy {
            max_records: 256,
            max_bytes: 64 << 10,
            max_delay: SimDuration::from_millis(5),
        }
    }
}

impl GroupCommitPolicy {
    /// A policy that seals on record count alone (byte/deadline triggers
    /// effectively off) — what the E17 batch-size sweep uses.
    pub fn by_records(max_records: usize) -> Self {
        GroupCommitPolicy {
            max_records: max_records.max(1),
            max_bytes: usize::MAX,
            max_delay: SimDuration(u64::MAX),
        }
    }
}

/// The group-commit log.
#[derive(Debug, Default)]
pub struct GroupCommitWal {
    policy: GroupCommitPolicy,
    /// Records made durable by sealed batches, in append order.
    sealed: Vec<WalRecord>,
    /// Record count of each sealed batch, in seal order (batch
    /// boundaries inside `sealed`).
    batch_sizes: Vec<usize>,
    /// Appended but not yet sealed — lost wholesale on crash.
    pending: Vec<WalRecord>,
    /// Encoded payload bytes of the pending batch (records are encoded
    /// on append; sealing only frames + checksums the accumulated
    /// payload — the per-batch, not per-record, commit cost).
    pending_payload: Vec<u8>,
    /// Virtual arrival time of the oldest pending record.
    pending_since: Option<SimTime>,
    /// Byte-encoded image of the sealed batches (checksummed frames).
    log: Vec<u8>,
    last_recovery: Option<RecoveryReport>,
    /// Span collector for traced appends (see [`Self::set_tracer`]).
    tracer: Option<SharedTracer>,
    /// Latest virtual time this WAL has observed (append/tick). `sync()`
    /// and `seal()` take no `now`, so traced spans close at this clock —
    /// group commit never runs the clock backwards, it only coalesces.
    clock: SimTime,
    /// Open `storage.wal.group_commit` spans of the pending batch;
    /// closed wholesale at seal ("sealed") or crash ("lost").
    pending_spans: Vec<u64>,
    /// `batches`, `records_synced`, `synced_bytes`, and per-trigger
    /// counts (`trigger_records`, `trigger_bytes`, `trigger_deadline`,
    /// `trigger_explicit`).
    pub stats: Counters,
}

impl GroupCommitWal {
    /// An empty log with the default policy.
    pub fn new() -> Self {
        Self::with_policy(GroupCommitPolicy::default())
    }

    /// An empty log with an explicit trigger policy.
    pub fn with_policy(policy: GroupCommitPolicy) -> Self {
        GroupCommitWal { policy, ..Default::default() }
    }

    /// The active policy.
    pub fn policy(&self) -> GroupCommitPolicy {
        self.policy
    }

    /// Records appended but not yet sealed into a durable batch — the
    /// group-commit queue depth health probes watch.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Encoded bytes of the unsealed pending batch.
    pub fn queued_bytes(&self) -> usize {
        self.pending_payload.len()
    }

    /// Collect a `storage.wal.group_commit` span per traced append: the
    /// span opens at append time and closes when the record's batch
    /// seals (status "sealed") — so the span's duration *is* the group
    /// commit latency the record paid — or aborts on crash ("lost").
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Append a record at virtual time `now` (not yet durable). Returns
    /// true when this append sealed a batch (count/byte/deadline
    /// trigger). The record is encoded into the pending payload here, so
    /// the later seal costs one frame + one checksum regardless of how
    /// many records the batch holds.
    pub fn append(&mut self, rec: WalRecord, now: SimTime) -> bool {
        self.append_traced(rec, now, None)
    }

    /// [`Self::append`] carrying the record's causal context.
    pub fn append_traced(&mut self, rec: WalRecord, now: SimTime, ctx: Option<TraceCtx>) -> bool {
        self.clock = self.clock.max(now);
        if let (Some(tr), Some(c)) = (&self.tracer, ctx) {
            self.pending_spans.push(tr.child(c, "storage.wal.group_commit", now));
        }
        self.pending_since.get_or_insert(now);
        let start = self.pending_payload.len();
        self.pending_payload.extend_from_slice(&[0u8; 4]);
        encode_payload(&rec, &mut self.pending_payload);
        let rec_len = wire_u32(self.pending_payload.len() - start - 4);
        // The slot always exists: the placeholder was pushed just above.
        if let Some(slot) = self.pending_payload.get_mut(start..start + 4) {
            slot.copy_from_slice(&rec_len.to_le_bytes());
        }
        self.pending.push(rec);
        self.maybe_seal(now)
    }

    /// Check the deadline trigger without appending (call on timer
    /// ticks). Returns true when a batch sealed.
    pub fn tick(&mut self, now: SimTime) -> bool {
        self.clock = self.clock.max(now);
        self.maybe_seal(now)
    }

    fn maybe_seal(&mut self, now: SimTime) -> bool {
        let Some(since) = self.pending_since else {
            return false;
        };
        let trigger = if self.pending.len() >= self.policy.max_records {
            "trigger_records"
        } else if self.pending_payload.len() >= self.policy.max_bytes {
            "trigger_bytes"
        } else if now.since(since) >= self.policy.max_delay {
            "trigger_deadline"
        } else {
            return false;
        };
        self.stats.incr(trigger);
        self.seal();
        true
    }

    /// Force-seal whatever is pending (the explicit group commit).
    /// No-op on an empty pending set.
    pub fn sync(&mut self) {
        if !self.pending.is_empty() {
            self.stats.incr("trigger_explicit");
            self.seal();
        }
    }

    /// Seal the pending records into one checksummed batch frame.
    fn seal(&mut self) {
        let count = self.pending.len();
        debug_assert!(count > 0, "seal() requires pending records");
        // Every traced record in this batch becomes durable now: its
        // group-commit wait ends at the seal instant.
        if let Some(tr) = &self.tracer {
            for span in self.pending_spans.drain(..) {
                tr.close(span, self.clock, "sealed");
            }
        } else {
            self.pending_spans.clear();
        }
        let payload = std::mem::take(&mut self.pending_payload);
        self.log.extend_from_slice(&wire_u32(count).to_le_bytes());
        self.log.extend_from_slice(&wire_u32(payload.len()).to_le_bytes());
        self.log.extend_from_slice(&checksum(&payload).to_le_bytes());
        self.log.extend_from_slice(&payload);
        self.sealed.append(&mut self.pending);
        self.batch_sizes.push(count);
        self.pending_since = None;
        self.stats.incr("batches");
        self.stats.add("records_synced", count as u64);
        self.stats.add("synced_bytes", (BATCH_HEADER + payload.len()) as u64);
    }

    /// Records that would survive a crash (whole sealed batches).
    pub fn durable(&self) -> &[WalRecord] {
        &self.sealed
    }

    /// Record counts of the sealed batches, in seal order.
    pub fn batch_sizes(&self) -> &[usize] {
        &self.batch_sizes
    }

    /// Appended-but-unsealed record count (lost wholesale on crash).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total appended records (sealed + pending).
    pub fn len(&self) -> usize {
        self.sealed.len() + self.pending.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the durable byte log (injection offsets index into this).
    pub fn encoded_len(&self) -> usize {
        self.log.len()
    }

    /// Flip bit `bit` (0–7) of byte `offset` in the durable log.
    /// Returns false (no-op) when `offset` is out of range.
    pub fn inject_bit_flip(&mut self, offset: usize, bit: u8) -> bool {
        match self.log.get_mut(offset) {
            Some(byte) => {
                *byte ^= 1 << (bit & 7);
                true
            }
            None => false,
        }
    }

    /// Tear the durable log down to its first `keep` bytes, as an
    /// interrupted batch write would.
    pub fn inject_torn_write(&mut self, keep: usize) {
        self.log.truncate(keep);
    }

    /// Simulate a crash: the pending tail is lost, and the sealed
    /// batches are re-read from the (possibly corrupted) byte log. The
    /// log is truncated at the first corrupt *batch*; a damaged batch is
    /// dropped in full along with everything after it.
    pub fn crash_with_report(&mut self) -> RecoveryReport {
        // The pending tail dies with the crash; its spans must not leak.
        if let Some(tr) = &self.tracer {
            for span in self.pending_spans.drain(..) {
                tr.abort(span, "lost");
            }
        } else {
            self.pending_spans.clear();
        }
        let (batches, report) = decode_batches(&self.log);
        self.log.truncate(report.valid_bytes);
        self.batch_sizes = batches.iter().map(Vec::len).collect();
        self.sealed = batches.into_iter().flatten().collect();
        self.pending.clear();
        self.pending_payload.clear();
        self.pending_since = None;
        self.last_recovery = Some(report);
        report
    }

    /// Report of the most recent recovery, if any.
    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        self.last_recovery
    }
}

/// Scan a batch log, returning the intact batch prefix and a report.
/// Validation is all-or-nothing per batch frame: a torn tail, checksum
/// mismatch, or undecodable record drops the whole batch and stops.
fn decode_batches(log: &[u8]) -> (Vec<Vec<WalRecord>>, RecoveryReport) {
    let mut batches = Vec::new();
    let mut replayed = 0usize;
    let mut at = 0usize;
    let mut corruption = None;
    'scan: while at < log.len() {
        let (Some(count), Some(len), Some(sum)) = (
            codec::read_u32_le(log, at),
            codec::read_u32_le(log, at + 4),
            codec::read_u64_le(log, at + 8),
        ) else {
            corruption = Some(Corruption::TornTail { at });
            break;
        };
        let (count, len) = (count as usize, len as usize);
        let Some(payload) = log.get(at + BATCH_HEADER..at + BATCH_HEADER + len) else {
            corruption = Some(Corruption::TornTail { at });
            break;
        };
        if checksum(payload) != sum {
            corruption = Some(Corruption::ChecksumMismatch { at });
            break;
        }
        // Split the payload back into records, borrowed-first: the walk
        // validates every record as a zero-copy [`WalRecordRef`] view
        // over the log, and copies into owned records only once the
        // whole batch has proven intact — a damaged batch allocates
        // nothing. The count field sits outside the checksummed payload,
        // so clamp the preallocation by what the payload could possibly
        // hold (≥ 4 bytes per record); a damaged count then fails the
        // record walk instead of provoking a monster allocation.
        let mut refs = Vec::with_capacity(count.min(payload.len() / 4 + 1));
        let mut pr = codec::SliceReader::new(payload);
        for _ in 0..count {
            let Some(rec) = pr.chunk().and_then(decode_payload_ref) else {
                corruption = Some(Corruption::ChecksumMismatch { at });
                break 'scan;
            };
            refs.push(rec);
        }
        if !pr.done() {
            corruption = Some(Corruption::ChecksumMismatch { at });
            break;
        }
        replayed += refs.len();
        batches.push(refs.iter().map(WalRecordRef::to_owned).collect());
        at += BATCH_HEADER + len;
    }
    let report = RecoveryReport {
        replayed,
        valid_bytes: at,
        dropped_bytes: log.len() - at,
        corruption,
    };
    (batches, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn put(i: u32) -> WalRecord {
        WalRecord::Put { key: format!("k{i}").into_bytes(), value: format!("v{i}").into_bytes() }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn record_count_trigger_seals_batches() {
        let mut wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(4));
        for i in 0..10 {
            let sealed = wal.append(put(i), t(0));
            assert_eq!(sealed, i % 4 == 3, "append {i}");
        }
        assert_eq!(wal.durable().len(), 8);
        assert_eq!(wal.pending_len(), 2);
        assert_eq!(wal.batch_sizes(), &[4, 4]);
        assert_eq!(wal.stats.get("trigger_records"), 2);
        wal.sync();
        assert_eq!(wal.durable().len(), 10);
        assert_eq!(wal.batch_sizes(), &[4, 4, 2]);
        assert_eq!(wal.stats.get("trigger_explicit"), 1);
    }

    #[test]
    fn byte_trigger_seals_on_payload_size() {
        let mut wal = GroupCommitWal::with_policy(GroupCommitPolicy {
            max_records: usize::MAX,
            max_bytes: 64,
            max_delay: SimDuration(u64::MAX),
        });
        let mut sealed = false;
        for i in 0..20 {
            sealed |= wal.append(put(i), t(0));
            if sealed {
                break;
            }
        }
        assert!(sealed, "64-byte trigger must fire well before 20 records");
        assert_eq!(wal.stats.get("trigger_bytes"), 1);
    }

    #[test]
    fn deadline_trigger_seals_aged_batches() {
        let mut wal = GroupCommitWal::with_policy(GroupCommitPolicy {
            max_records: usize::MAX,
            max_bytes: usize::MAX,
            max_delay: SimDuration::from_millis(5),
        });
        assert!(!wal.append(put(0), t(0)));
        assert!(!wal.tick(t(4)), "deadline not yet reached");
        assert!(wal.tick(t(5)), "5 ms deadline seals the batch");
        assert_eq!(wal.durable().len(), 1);
        assert_eq!(wal.stats.get("trigger_deadline"), 1);
        // Empty pending: ticks are no-ops.
        assert!(!wal.tick(t(100)));
    }

    #[test]
    fn unsynced_pending_tail_is_lost_on_crash() {
        let mut wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(4));
        for i in 0..6 {
            wal.append(put(i), t(0));
        }
        // One sealed batch of 4, two pending.
        let report = wal.crash_with_report();
        assert_eq!(report.replayed, 4);
        assert_eq!(report.corruption, None);
        assert_eq!(wal.durable().len(), 4);
        assert_eq!(wal.pending_len(), 0);
    }

    /// The satellite claim: crash mid-batch loses the whole batch, never
    /// a prefix of it — `durable()` only ever shrinks by whole batches.
    #[test]
    fn torn_write_mid_batch_drops_the_whole_batch() {
        let mut wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(4));
        for i in 0..8 {
            wal.append(put(i), t(0));
        }
        assert_eq!(wal.batch_sizes(), &[4, 4]);
        let full = wal.encoded_len();
        // Tear inside the *second* batch frame (anywhere past the first).
        let first_batch_end = full / 2;
        wal.inject_torn_write(full - 3);
        let report = wal.crash_with_report();
        assert_eq!(report.replayed, 4, "second batch dropped in full");
        assert_eq!(wal.durable().len(), 4);
        assert_eq!(wal.batch_sizes(), &[4]);
        assert!(matches!(report.corruption, Some(Corruption::TornTail { at }) if at <= first_batch_end));
        // Never a prefix of a batch: replayed is a sum of whole batches.
        assert_eq!(report.replayed % 4, 0);
    }

    #[test]
    fn bit_flip_in_a_batch_truncates_at_that_batch() {
        let mut wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(2));
        for i in 0..6 {
            wal.append(put(i), t(0));
        }
        assert_eq!(wal.batch_sizes(), &[2, 2, 2]);
        // Find the second frame's offset by decoding lengths.
        let log_len = wal.encoded_len();
        assert!(wal.inject_bit_flip(log_len / 2, 1));
        let report = wal.crash_with_report();
        assert!(report.corruption.is_some());
        assert_eq!(report.replayed % 2, 0, "only whole batches replay");
        assert!(report.replayed < 6);
        // Second crash is a fixed point (damage excised).
        let again = wal.crash_with_report();
        assert_eq!(again.replayed, report.replayed);
        assert_eq!(again.corruption, None);
        assert_eq!(wal.last_recovery(), Some(again));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn prop_any_single_bit_flip_loses_only_whole_batches(
            n_records in 1usize..40,
            batch in 1usize..8,
            offset_frac in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let mut wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(batch));
            let records: Vec<WalRecord> = (0..n_records as u32).map(put).collect();
            for rec in &records {
                wal.append(rec.clone(), t(0));
            }
            wal.sync();
            let sizes = wal.batch_sizes().to_vec();
            prop_assert_eq!(sizes.iter().sum::<usize>(), n_records);
            let offset = ((wal.encoded_len() as f64 - 1.0) * offset_frac) as usize;
            prop_assert!(wal.inject_bit_flip(offset, bit));
            let report = wal.crash_with_report();
            // Detected, and the surviving records are exactly the
            // concatenation of some prefix of whole batches.
            prop_assert!(report.corruption.is_some());
            let mut acc = 0usize;
            let valid_boundaries: Vec<usize> = std::iter::once(0)
                .chain(sizes.iter().map(|s| { acc += s; acc }))
                .collect();
            prop_assert!(
                valid_boundaries.contains(&report.replayed),
                "replayed {} must fall on a batch boundary {:?}",
                report.replayed, valid_boundaries
            );
            prop_assert_eq!(wal.durable(), &records[..report.replayed]);
        }
    }

    #[test]
    fn hostile_batch_headers_recover_cleanly_instead_of_panicking() {
        // count = u32::MAX over a tiny (checksum-valid) payload: the
        // record walk must run off the payload end and drop the batch —
        // no monster allocation, no slice panic.
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xAB, 0xCD]);
        let mut log = Vec::new();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&wire_u32(payload.len()).to_le_bytes());
        log.extend_from_slice(&checksum(&payload).to_le_bytes());
        log.extend_from_slice(&payload);
        let (batches, report) = decode_batches(&log);
        assert!(batches.is_empty());
        assert_eq!(report.corruption, Some(Corruption::ChecksumMismatch { at: 0 }));

        // Batch length of u32::MAX: a torn tail, not an OOB read.
        let mut log = Vec::new();
        log.extend_from_slice(&1u32.to_le_bytes());
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&0u64.to_le_bytes());
        let (batches, report) = decode_batches(&log);
        assert!(batches.is_empty());
        assert_eq!(report.corruption, Some(Corruption::TornTail { at: 0 }));

        // A header shorter than BATCH_HEADER bytes: torn tail too.
        let (batches, report) = decode_batches(&[1, 2, 3]);
        assert!(batches.is_empty());
        assert_eq!(report.corruption, Some(Corruption::TornTail { at: 0 }));
    }

    #[test]
    fn empty_and_never_synced_logs_recover_clean() {
        let mut wal = GroupCommitWal::new();
        let report = wal.crash_with_report();
        assert_eq!(
            report,
            RecoveryReport { replayed: 0, valid_bytes: 0, dropped_bytes: 0, corruption: None }
        );
        wal.append(put(1), t(0));
        wal.append(put(2), t(0));
        // Never sealed: the crash wipes everything, cleanly.
        let report = wal.crash_with_report();
        assert_eq!(report.replayed, 0);
        assert!(wal.is_empty());
    }

    #[test]
    fn traced_appends_close_at_seal_and_abort_on_crash() {
        let tracer = mv_obs::SharedTracer::new();
        let mut wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(2));
        wal.set_tracer(tracer.clone());
        let root = tracer.start_trace("test.root", t(0));

        // Two traced appends fill a batch; both spans close "sealed" at
        // the WAL clock of the sealing append.
        wal.append_traced(put(1), t(1), Some(root));
        assert_eq!(tracer.open_count(), 2, "root + one pending wal span");
        wal.append_traced(put(2), t(3), Some(root));
        assert_eq!(tracer.open_count(), 1, "only the root remains open");
        let sealed: Vec<_> = tracer
            .records()
            .into_iter()
            .filter(|r| r.name == "storage.wal.group_commit")
            .collect();
        assert_eq!(sealed.len(), 2);
        assert!(sealed.iter().all(|r| r.status == "sealed" && r.end == t(3)));
        assert_eq!(sealed[0].start, t(1));

        // A pending (unsealed) traced record dies with the crash: its
        // span aborts "lost" instead of leaking.
        wal.append_traced(put(3), t(5), Some(root));
        assert_eq!(tracer.open_count(), 2);
        wal.crash_with_report();
        assert_eq!(tracer.open_count(), 1);
        let lost: Vec<_> =
            tracer.records().into_iter().filter(|r| r.status == "lost").collect();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].end, lost[0].start, "aborted spans have no duration");

        // Untraced appends never touch the tracer.
        wal.append(put(4), t(6));
        wal.sync();
        assert_eq!(tracer.open_count(), 1);
    }

    #[test]
    fn batch_framing_amortizes_header_bytes() {
        // One 64-record batch spends one header; 64 single-record
        // batches spend 64. The byte log shows the amortization.
        let mut grouped = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(64));
        let mut single = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(1));
        for i in 0..64 {
            grouped.append(put(i), t(0));
            single.append(put(i), t(0));
        }
        grouped.sync();
        assert_eq!(grouped.durable().len(), 64);
        assert_eq!(single.durable().len(), 64);
        assert_eq!(grouped.stats.get("batches"), 1);
        assert_eq!(single.stats.get("batches"), 64);
        assert_eq!(
            single.encoded_len() - grouped.encoded_len(),
            63 * BATCH_HEADER,
            "per-batch framing overhead"
        );
    }
}
