//! Write-ahead logging with crash/recovery and corruption simulation.
//!
//! The WAL is the durability half of the KV store: every mutation is
//! appended (and "synced") before being applied. A crash is simulated by
//! rebuilding the store from the log alone; recovery replays records up
//! to the synced horizon. The unsynced tail is lost — exactly the
//! semantics the tests pin down.
//!
//! Durability is only as good as the medium: synced records live in a
//! byte-encoded log of checksummed frames (`[len u32][checksum u64]
//! [payload]`), and the fault layer can flip a bit or tear the tail at a
//! chosen offset ([`Wal::inject_bit_flip`], [`Wal::inject_torn_write`]).
//! Recovery ([`Wal::crash_with_report`]) scans frames and **truncates at
//! the first corrupt record** — everything before it replays, everything
//! after is dropped rather than replayed as garbage — and reports what
//! it did in a [`RecoveryReport`].

use crate::codec;
use crate::kv::KvStore;
use mv_common::codec::wire_u32;
use bytes::Bytes;
use mv_common::hash::FxHasher;
use serde::{Deserialize, Serialize};
use std::hash::Hasher as _;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalRecord {
    /// Insert/overwrite.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Tombstone.
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
}

/// A borrowed view of one logged mutation — the zero-copy decode form.
///
/// Recovery scans decode into this first: the key/value slices borrow
/// the log buffer, so validation, routing, and filtering allocate
/// nothing. [`WalRecordRef::to_owned`] copies only once a record is
/// actually kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecordRef<'a> {
    /// Insert/overwrite (borrowed).
    Put {
        /// Key bytes, borrowing the log.
        key: &'a [u8],
        /// Value bytes, borrowing the log.
        value: &'a [u8],
    },
    /// Tombstone (borrowed).
    Delete {
        /// Key bytes, borrowing the log.
        key: &'a [u8],
    },
}

impl WalRecordRef<'_> {
    /// The key of either variant.
    pub fn key(&self) -> &[u8] {
        match self {
            WalRecordRef::Put { key, .. } | WalRecordRef::Delete { key } => key,
        }
    }

    /// Copy into the owned form (the only allocation on the decode
    /// path).
    pub fn to_owned(&self) -> WalRecord {
        match *self {
            WalRecordRef::Put { key, value } => {
                WalRecord::Put { key: key.to_vec(), value: value.to_vec() }
            }
            WalRecordRef::Delete { key } => WalRecord::Delete { key: key.to_vec() },
        }
    }
}

/// Why recovery stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// The log ended mid-frame (torn write): fewer bytes than the frame
    /// header promised.
    TornTail {
        /// Byte offset of the incomplete frame.
        at: usize,
    },
    /// A frame's payload no longer matches its checksum (bit rot / torn
    /// overwrite inside the frame).
    ChecksumMismatch {
        /// Byte offset of the corrupt frame.
        at: usize,
    },
}

/// What a recovery pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed (the intact durable prefix).
    pub replayed: usize,
    /// Bytes of log kept.
    pub valid_bytes: usize,
    /// Bytes of log discarded (corrupt frame onward).
    pub dropped_bytes: usize,
    /// Why the scan stopped, if it did not consume the whole log.
    pub corruption: Option<Corruption>,
}

/// Frame header: payload length + payload checksum.
const FRAME_HEADER: usize = 4 + 8;

pub(crate) fn checksum(payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(payload);
    h.finish()
}

pub(crate) fn encode_payload(rec: &WalRecord, out: &mut Vec<u8>) {
    match rec {
        WalRecord::Put { key, value } => {
            out.push(1);
            out.extend_from_slice(&wire_u32(key.len()).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(&wire_u32(value.len()).to_le_bytes());
            out.extend_from_slice(value);
        }
        WalRecord::Delete { key } => {
            out.push(2);
            out.extend_from_slice(&wire_u32(key.len()).to_le_bytes());
            out.extend_from_slice(key);
        }
    }
}

fn append_frame(log: &mut Vec<u8>, rec: &WalRecord) {
    let mut payload = Vec::new();
    encode_payload(rec, &mut payload);
    log.extend_from_slice(&wire_u32(payload.len()).to_le_bytes());
    log.extend_from_slice(&checksum(&payload).to_le_bytes());
    log.extend_from_slice(&payload);
}

/// Decode one payload into the borrowed form; `None` on any structural
/// damage (a checksum that still matched makes this vanishingly rare,
/// but recovery must never panic on hostile bytes). Nothing is copied:
/// the returned record borrows `payload`.
pub(crate) fn decode_payload_ref(payload: &[u8]) -> Option<WalRecordRef<'_>> {
    let mut r = codec::SliceReader::new(payload);
    let rec = match r.u8()? {
        1 => WalRecordRef::Put { key: r.chunk()?, value: r.chunk()? },
        2 => WalRecordRef::Delete { key: r.chunk()? },
        _ => return None,
    };
    r.done().then_some(rec)
}

/// Owned-form decode: [`decode_payload_ref`] plus the final copy.
pub(crate) fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    decode_payload_ref(payload).map(|r| r.to_owned())
}

/// Scan `log`, returning the intact record prefix and a report.
fn decode_log(log: &[u8]) -> (Vec<WalRecord>, RecoveryReport) {
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut corruption = None;
    while at < log.len() {
        let (Some(len), Some(sum)) = (codec::read_u32_le(log, at), codec::read_u64_le(log, at + 4))
        else {
            corruption = Some(Corruption::TornTail { at });
            break;
        };
        let len = len as usize;
        let Some(payload) = log.get(at + FRAME_HEADER..at + FRAME_HEADER + len) else {
            // Length field runs past the log: torn write (or a flipped
            // bit in the length itself — indistinguishable, same cure).
            corruption = Some(Corruption::TornTail { at });
            break;
        };
        if checksum(payload) != sum {
            corruption = Some(Corruption::ChecksumMismatch { at });
            break;
        }
        let Some(rec) = decode_payload(payload) else {
            corruption = Some(Corruption::ChecksumMismatch { at });
            break;
        };
        records.push(rec);
        at += FRAME_HEADER + len;
    }
    let report = RecoveryReport {
        replayed: records.len(),
        valid_bytes: at,
        dropped_bytes: log.len() - at,
        corruption,
    };
    (records, report)
}

/// The log. "Durability" is the `synced` watermark: records at indices
/// below it survive a crash; the tail does not. Synced records are also
/// materialized as checksummed byte frames — the thing crashes recover
/// from and faults corrupt.
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<WalRecord>,
    synced: usize,
    /// Byte-encoded image of the synced prefix (checksummed frames).
    log: Vec<u8>,
    last_recovery: Option<RecoveryReport>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record (not yet durable). Returns its LSN.
    pub fn append(&mut self, rec: WalRecord) -> u64 {
        self.records.push(rec);
        self.records.len() as u64 - 1
    }

    /// Make everything appended so far durable (encode it into the
    /// checksummed byte log).
    pub fn sync(&mut self) {
        for rec in self.records.iter().skip(self.synced) {
            append_frame(&mut self.log, rec);
        }
        self.synced = self.records.len();
    }

    /// Records that would survive a crash.
    pub fn durable(&self) -> &[WalRecord] {
        self.records.get(..self.synced).unwrap_or(&[])
    }

    /// Total appended records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Size of the durable byte log (injection offsets index into this).
    pub fn encoded_len(&self) -> usize {
        self.log.len()
    }

    /// Flip bit `bit` (0–7) of byte `offset` in the durable log.
    /// Returns false (no-op) when `offset` is out of range.
    pub fn inject_bit_flip(&mut self, offset: usize, bit: u8) -> bool {
        match self.log.get_mut(offset) {
            Some(byte) => {
                *byte ^= 1 << (bit & 7);
                true
            }
            None => false,
        }
    }

    /// Tear the durable log down to its first `keep` bytes, as an
    /// interrupted write would.
    pub fn inject_torn_write(&mut self, keep: usize) {
        self.log.truncate(keep);
    }

    /// Simulate a crash: the unsynced tail is lost, and the synced
    /// records are re-read from the (possibly corrupted) byte log.
    pub fn crash(&mut self) {
        self.crash_with_report();
    }

    /// [`Self::crash`], reporting what recovery found. The log is
    /// truncated at the first corrupt record; nothing past it replays.
    pub fn crash_with_report(&mut self) -> RecoveryReport {
        let (records, report) = decode_log(&self.log);
        self.log.truncate(report.valid_bytes);
        self.records = records;
        self.synced = self.records.len();
        self.last_recovery = Some(report);
        report
    }

    /// Report of the most recent recovery, if any.
    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        self.last_recovery
    }

    /// Truncate the durable prefix after a checkpoint (records below
    /// `upto` are covered by flushed runs and no longer needed). The
    /// byte log is rewritten to match.
    pub fn checkpoint(&mut self, upto: usize) {
        let upto = upto.min(self.synced);
        self.records.drain(..upto);
        self.synced -= upto;
        let mut log = Vec::new();
        for rec in self.records.iter().take(self.synced) {
            append_frame(&mut log, rec);
        }
        self.log = log;
    }
}

/// A KV store coupled to a WAL: mutations log first, then apply.
#[derive(Debug, Default)]
pub struct DurableKv {
    /// The in-memory store.
    pub kv: KvStore,
    /// The log.
    pub wal: Wal,
}

impl DurableKv {
    /// Fresh store + log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logged put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.wal.append(WalRecord::Put { key: key.to_vec(), value: value.to_vec() });
        self.kv.put(Bytes::copy_from_slice(key), Bytes::copy_from_slice(value));
    }

    /// Logged delete.
    pub fn delete(&mut self, key: &[u8]) {
        self.wal.append(WalRecord::Delete { key: key.to_vec() });
        self.kv.delete(Bytes::copy_from_slice(key));
    }

    /// Group-commit: sync the log.
    pub fn commit(&mut self) {
        self.wal.sync();
    }

    /// Read through to the store.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.kv.get(key)
    }

    /// Simulate a crash and recover: volatile state is discarded and the
    /// durable log replayed into a fresh store.
    pub fn crash_and_recover(&mut self) {
        self.crash_and_recover_report();
    }

    /// [`Self::crash_and_recover`], returning what recovery found (how
    /// many records replayed, and where — if anywhere — the log was
    /// truncated for corruption).
    pub fn crash_and_recover_report(&mut self) -> RecoveryReport {
        let report = self.wal.crash_with_report();
        let mut kv = KvStore::new();
        for rec in self.wal.durable() {
            match rec {
                WalRecord::Put { key, value } => {
                    kv.put(Bytes::from(key.clone()), Bytes::from(value.clone()))
                }
                WalRecord::Delete { key } => kv.delete(Bytes::from(key.clone())),
            }
        }
        self.kv = kv;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn committed_writes_survive_crash() {
        let mut db = DurableKv::new();
        db.put(b"a", b"1");
        db.put(b"b", b"2");
        db.commit();
        db.crash_and_recover();
        assert_eq!(db.get(b"a"), Some(Bytes::from_static(b"1")));
        assert_eq!(db.get(b"b"), Some(Bytes::from_static(b"2")));
    }

    #[test]
    fn uncommitted_tail_is_lost() {
        let mut db = DurableKv::new();
        db.put(b"a", b"1");
        db.commit();
        db.put(b"b", b"2"); // never committed
        db.crash_and_recover();
        assert_eq!(db.get(b"a"), Some(Bytes::from_static(b"1")));
        assert_eq!(db.get(b"b"), None);
    }

    #[test]
    fn deletes_replay_correctly() {
        let mut db = DurableKv::new();
        db.put(b"a", b"1");
        db.delete(b"a");
        db.put(b"a", b"2");
        db.delete(b"a");
        db.commit();
        db.crash_and_recover();
        assert_eq!(db.get(b"a"), None);
    }

    #[test]
    fn double_crash_is_idempotent() {
        let mut db = DurableKv::new();
        db.put(b"x", b"y");
        db.commit();
        db.crash_and_recover();
        db.crash_and_recover();
        assert_eq!(db.get(b"x"), Some(Bytes::from_static(b"y")));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_crash_preserves_exactly_the_committed_prefix(
            ops in proptest::collection::vec((0u8..2, "[a-c]{1,2}", "[x-z]{1,2}"), 1..60),
            commit_every in 1usize..8,
        ) {
            let mut db = DurableKv::new();
            // Shadow model of the state as of the last commit.
            let mut committed_model: std::collections::BTreeMap<Vec<u8>, Option<Vec<u8>>> =
                Default::default();
            let mut pending: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
            for (i, (op, k, v)) in ops.iter().enumerate() {
                if *op == 0 {
                    db.put(k.as_bytes(), v.as_bytes());
                    pending.push((k.clone().into_bytes(), Some(v.clone().into_bytes())));
                } else {
                    db.delete(k.as_bytes());
                    pending.push((k.clone().into_bytes(), None));
                }
                if (i + 1) % commit_every == 0 {
                    db.commit();
                    for (key, val) in pending.drain(..) {
                        committed_model.insert(key, val);
                    }
                }
            }
            // Crash with the tail uncommitted.
            db.crash_and_recover();
            for (k, expected) in &committed_model {
                prop_assert_eq!(
                    db.get(k).map(|b| b.to_vec()),
                    expected.clone(),
                    "key {:?}", k
                );
            }
            // Nothing from the uncommitted tail leaked (keys only in the
            // tail must be absent).
            for (k, _) in &pending {
                if !committed_model.contains_key(k) {
                    prop_assert_eq!(db.get(k), None);
                }
            }
        }
    }

    /// Store equality = identical `scan` over the full key range.
    fn full_scan(db: &DurableKv) -> Vec<(Bytes, Bytes)> {
        db.kv.scan(b"", b"\xff\xff\xff\xff")
    }

    #[test]
    fn bit_flip_truncates_at_first_corrupt_record() {
        let mut db = DurableKv::new();
        db.put(b"a", b"1");
        db.commit();
        let first_frame_end = db.wal.encoded_len();
        db.put(b"b", b"2");
        db.put(b"c", b"3");
        db.commit();
        // Damage the payload of the *second* frame.
        assert!(db.wal.inject_bit_flip(first_frame_end + FRAME_HEADER, 3));
        let report = db.crash_and_recover_report();
        // Record 1 survives; records 2 and 3 are dropped, not replayed as
        // garbage — even though record 3's frame is itself intact.
        assert_eq!(report.replayed, 1);
        assert_eq!(report.corruption, Some(Corruption::ChecksumMismatch { at: first_frame_end }));
        assert_eq!(db.get(b"a"), Some(Bytes::from_static(b"1")));
        assert_eq!(db.get(b"b"), None);
        assert_eq!(db.get(b"c"), None);
        assert!(report.dropped_bytes > 0);
        assert_eq!(db.wal.last_recovery(), Some(report));
    }

    #[test]
    fn torn_write_drops_the_partial_frame() {
        let mut db = DurableKv::new();
        db.put(b"a", b"1");
        db.commit();
        let intact = db.wal.encoded_len();
        db.put(b"b", b"2");
        db.commit();
        // The second frame's write was interrupted 3 bytes in.
        db.wal.inject_torn_write(intact + 3);
        let report = db.crash_and_recover_report();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.corruption, Some(Corruption::TornTail { at: intact }));
        assert_eq!(report.valid_bytes, intact);
        assert_eq!(db.get(b"a"), Some(Bytes::from_static(b"1")));
        assert_eq!(db.get(b"b"), None);
    }

    #[test]
    fn hostile_length_fields_recover_cleanly_instead_of_panicking() {
        // A frame length of u32::MAX claims more payload than exists:
        // recovery must report a torn tail, not slice out of bounds.
        let mut log = Vec::new();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&0u64.to_le_bytes());
        log.extend_from_slice(b"short");
        let (records, report) = decode_log(&log);
        assert!(records.is_empty());
        assert_eq!(report.corruption, Some(Corruption::TornTail { at: 0 }));

        // A frame whose checksum is *valid* but whose inner chunk length
        // lies (tag=Put, key length far past the payload end): the
        // payload decode fails structurally, and recovery stops clean.
        let mut payload = vec![1u8];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(b"k");
        let mut log = Vec::new();
        log.extend_from_slice(&wire_u32(payload.len()).to_le_bytes());
        log.extend_from_slice(&checksum(&payload).to_le_bytes());
        log.extend_from_slice(&payload);
        let (records, report) = decode_log(&log);
        assert!(records.is_empty());
        assert_eq!(report.corruption, Some(Corruption::ChecksumMismatch { at: 0 }));
    }

    #[test]
    fn unknown_tags_and_trailing_garbage_decode_to_none() {
        // Unknown record tag.
        assert_eq!(decode_payload(&[9u8, 1, 2, 3]), None);
        // Empty payload (no tag byte at all).
        assert_eq!(decode_payload(&[]), None);
        // A valid Delete record followed by trailing garbage.
        let mut payload = vec![2u8];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(b'k');
        assert!(decode_payload(&payload).is_some());
        payload.push(0xFF);
        assert_eq!(decode_payload(&payload), None);
    }

    #[test]
    fn recovery_from_empty_and_never_synced_logs() {
        // Brand-new store: recovery of an empty log is a clean no-op.
        let mut db = DurableKv::new();
        let report = db.crash_and_recover_report();
        assert_eq!(
            report,
            RecoveryReport { replayed: 0, valid_bytes: 0, dropped_bytes: 0, corruption: None }
        );
        assert!(full_scan(&db).is_empty());

        // Appends without a single commit: nothing was ever synced, so
        // the crash wipes everything and recovery still reports clean.
        let mut db = DurableKv::new();
        db.put(b"a", b"1");
        db.delete(b"a");
        db.put(b"b", b"2");
        let report = db.crash_and_recover_report();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.corruption, None);
        assert!(full_scan(&db).is_empty());
        assert!(db.wal.is_empty());
    }

    #[test]
    fn crash_recover_crash_is_idempotent_even_after_corruption() {
        let mut db = DurableKv::new();
        for i in 0..8u8 {
            db.put(&[b'k', i], &[i]);
            db.commit();
        }
        db.delete(&[b'k', 0]);
        db.commit();
        // Corrupt somewhere in the middle of the log.
        assert!(db.wal.inject_bit_flip(db.wal.encoded_len() / 2, 5));
        let first = db.crash_and_recover_report();
        let snapshot = full_scan(&db);
        // Second crash+recovery: the log was truncated at the corruption,
        // so this pass sees a clean (shorter) log and rebuilds the exact
        // same store.
        let second = db.crash_and_recover_report();
        assert_eq!(second.replayed, first.replayed);
        assert_eq!(second.corruption, None, "first recovery must have excised the damage");
        assert_eq!(second.dropped_bytes, 0);
        assert_eq!(full_scan(&db), snapshot);
        // And a third, for luck: still a fixed point.
        db.crash_and_recover();
        assert_eq!(full_scan(&db), snapshot);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn prop_any_single_bit_flip_yields_a_clean_prefix(
            ops in proptest::collection::vec((0u8..2, "[a-d]{1,3}", "[x-z]{0,3}"), 1..20),
            offset_frac in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let mut db = DurableKv::new();
            let mut committed: Vec<WalRecord> = Vec::new();
            for (op, k, v) in &ops {
                if *op == 0 {
                    db.put(k.as_bytes(), v.as_bytes());
                    committed.push(WalRecord::Put {
                        key: k.clone().into_bytes(),
                        value: v.clone().into_bytes(),
                    });
                } else {
                    db.delete(k.as_bytes());
                    committed.push(WalRecord::Delete { key: k.clone().into_bytes() });
                }
            }
            db.commit();
            let offset = ((db.wal.encoded_len() as f64 - 1.0) * offset_frac) as usize;
            prop_assert!(db.wal.inject_bit_flip(offset, bit));
            // Recovery never panics, and whatever replays is a strict
            // prefix of what was committed.
            let report = db.crash_and_recover_report();
            prop_assert!(report.replayed <= committed.len());
            prop_assert_eq!(db.wal.durable(), &committed[..report.replayed]);
            // A single flipped bit is always detected (frames are
            // header-checksummed), so some suffix must have been dropped.
            prop_assert!(report.corruption.is_some());
            prop_assert!(report.dropped_bytes > 0);
        }
    }

    #[test]
    fn checkpoint_trims_log() {
        let mut wal = Wal::new();
        for i in 0..10u8 {
            wal.append(WalRecord::Delete { key: vec![i] });
        }
        wal.sync();
        assert_eq!(wal.durable().len(), 10);
        wal.checkpoint(6);
        assert_eq!(wal.len(), 4);
        assert_eq!(wal.durable().len(), 4);
        // Checkpoint beyond the sync point is clamped.
        wal.append(WalRecord::Delete { key: vec![99] });
        wal.checkpoint(100);
        assert_eq!(wal.len(), 1); // the unsynced record remains
    }
}
