//! Write-ahead logging with crash/recovery simulation.
//!
//! The WAL is the durability half of the KV store: every mutation is
//! appended (and "synced") before being applied. A crash is simulated by
//! rebuilding the store from the log alone; recovery replays records up
//! to the synced horizon. The unsynced tail is lost — exactly the
//! semantics the tests pin down.

use crate::kv::KvStore;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalRecord {
    /// Insert/overwrite.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Tombstone.
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
}

/// The log. "Durability" is the `synced` watermark: records at indices
/// below it survive a crash; the tail does not.
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<WalRecord>,
    synced: usize,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record (not yet durable). Returns its LSN.
    pub fn append(&mut self, rec: WalRecord) -> u64 {
        self.records.push(rec);
        self.records.len() as u64 - 1
    }

    /// Make everything appended so far durable.
    pub fn sync(&mut self) {
        self.synced = self.records.len();
    }

    /// Records that would survive a crash.
    pub fn durable(&self) -> &[WalRecord] {
        &self.records[..self.synced]
    }

    /// Total appended records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Simulate a crash: the unsynced tail is lost.
    pub fn crash(&mut self) {
        self.records.truncate(self.synced);
    }

    /// Truncate the durable prefix after a checkpoint (records below
    /// `upto` are covered by flushed runs and no longer needed).
    pub fn checkpoint(&mut self, upto: usize) {
        let upto = upto.min(self.synced);
        self.records.drain(..upto);
        self.synced -= upto;
    }
}

/// A KV store coupled to a WAL: mutations log first, then apply.
#[derive(Debug, Default)]
pub struct DurableKv {
    /// The in-memory store.
    pub kv: KvStore,
    /// The log.
    pub wal: Wal,
}

impl DurableKv {
    /// Fresh store + log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logged put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.wal.append(WalRecord::Put { key: key.to_vec(), value: value.to_vec() });
        self.kv.put(Bytes::copy_from_slice(key), Bytes::copy_from_slice(value));
    }

    /// Logged delete.
    pub fn delete(&mut self, key: &[u8]) {
        self.wal.append(WalRecord::Delete { key: key.to_vec() });
        self.kv.delete(Bytes::copy_from_slice(key));
    }

    /// Group-commit: sync the log.
    pub fn commit(&mut self) {
        self.wal.sync();
    }

    /// Read through to the store.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.kv.get(key)
    }

    /// Simulate a crash and recover: volatile state is discarded and the
    /// durable log replayed into a fresh store.
    pub fn crash_and_recover(&mut self) {
        self.wal.crash();
        let mut kv = KvStore::new();
        for rec in self.wal.durable() {
            match rec {
                WalRecord::Put { key, value } => {
                    kv.put(Bytes::from(key.clone()), Bytes::from(value.clone()))
                }
                WalRecord::Delete { key } => kv.delete(Bytes::from(key.clone())),
            }
        }
        self.kv = kv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn committed_writes_survive_crash() {
        let mut db = DurableKv::new();
        db.put(b"a", b"1");
        db.put(b"b", b"2");
        db.commit();
        db.crash_and_recover();
        assert_eq!(db.get(b"a"), Some(Bytes::from_static(b"1")));
        assert_eq!(db.get(b"b"), Some(Bytes::from_static(b"2")));
    }

    #[test]
    fn uncommitted_tail_is_lost() {
        let mut db = DurableKv::new();
        db.put(b"a", b"1");
        db.commit();
        db.put(b"b", b"2"); // never committed
        db.crash_and_recover();
        assert_eq!(db.get(b"a"), Some(Bytes::from_static(b"1")));
        assert_eq!(db.get(b"b"), None);
    }

    #[test]
    fn deletes_replay_correctly() {
        let mut db = DurableKv::new();
        db.put(b"a", b"1");
        db.delete(b"a");
        db.put(b"a", b"2");
        db.delete(b"a");
        db.commit();
        db.crash_and_recover();
        assert_eq!(db.get(b"a"), None);
    }

    #[test]
    fn double_crash_is_idempotent() {
        let mut db = DurableKv::new();
        db.put(b"x", b"y");
        db.commit();
        db.crash_and_recover();
        db.crash_and_recover();
        assert_eq!(db.get(b"x"), Some(Bytes::from_static(b"y")));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_crash_preserves_exactly_the_committed_prefix(
            ops in proptest::collection::vec((0u8..2, "[a-c]{1,2}", "[x-z]{1,2}"), 1..60),
            commit_every in 1usize..8,
        ) {
            let mut db = DurableKv::new();
            // Shadow model of the state as of the last commit.
            let mut committed_model: std::collections::BTreeMap<Vec<u8>, Option<Vec<u8>>> =
                Default::default();
            let mut pending: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
            for (i, (op, k, v)) in ops.iter().enumerate() {
                if *op == 0 {
                    db.put(k.as_bytes(), v.as_bytes());
                    pending.push((k.clone().into_bytes(), Some(v.clone().into_bytes())));
                } else {
                    db.delete(k.as_bytes());
                    pending.push((k.clone().into_bytes(), None));
                }
                if (i + 1) % commit_every == 0 {
                    db.commit();
                    for (key, val) in pending.drain(..) {
                        committed_model.insert(key, val);
                    }
                }
            }
            // Crash with the tail uncommitted.
            db.crash_and_recover();
            for (k, expected) in &committed_model {
                prop_assert_eq!(
                    db.get(k).map(|b| b.to_vec()),
                    expected.clone(),
                    "key {:?}", k
                );
            }
            // Nothing from the uncommitted tail leaked (keys only in the
            // tail must be absent).
            for (k, _) in &pending {
                if !committed_model.contains_key(k) {
                    prop_assert_eq!(db.get(k), None);
                }
            }
        }
    }

    #[test]
    fn checkpoint_trims_log() {
        let mut wal = Wal::new();
        for i in 0..10u8 {
            wal.append(WalRecord::Delete { key: vec![i] });
        }
        wal.sync();
        assert_eq!(wal.durable().len(), 10);
        wal.checkpoint(6);
        assert_eq!(wal.len(), 4);
        assert_eq!(wal.durable().len(), 4);
        // Checkpoint beyond the sync point is clamped.
        wal.append(WalRecord::Delete { key: vec![99] });
        wal.checkpoint(100);
        assert_eq!(wal.len(), 1); // the unsynced record remains
    }
}
