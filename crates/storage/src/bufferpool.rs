//! Buffer pool with pluggable eviction, including the space-aware policy.
//!
//! §IV-F: *"The two categories of data … call for novel buffer
//! management and caching schemes. In particular, we expect an effective
//! scheme to be conscious of the semantics. For example, data from the
//! real space may be given higher priority over data from the virtual
//! space."* [`EvictionPolicy::SpaceAware`] implements exactly that: on
//! eviction, virtual-space pages are sacrificed (LRU among them) before
//! any physical-space page is considered. E7/E9 measure hit rates.

use mv_common::hash::FastMap;
use mv_common::metrics::Counters;
use mv_common::Space;

/// A cached page's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Which space the page's data belongs to (§IV-F tagging).
    pub space: Space,
    /// Page number within that space.
    pub page_no: u64,
}

impl PageId {
    /// Construct a page id.
    pub fn new(space: Space, page_no: u64) -> Self {
        PageId { space, page_no }
    }
}

/// Eviction policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least recently used.
    Lru,
    /// Least frequently used (ties: LRU).
    Lfu,
    /// Evict virtual-space pages (LRU among them) before physical ones.
    SpaceAware,
}

impl EvictionPolicy {
    /// All policies, for sweeps.
    pub const ALL: [EvictionPolicy; 3] =
        [EvictionPolicy::Lru, EvictionPolicy::Lfu, EvictionPolicy::SpaceAware];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::SpaceAware => "space-aware",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    last_used: u64,
    uses: u64,
}

/// The pool: tracks residency and access recency/frequency. Page
/// *contents* live with the callers — the pool is an admission/eviction
/// simulator, which is all the experiments need.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    policy: EvictionPolicy,
    frames: FastMap<PageId, Frame>,
    tick: u64,
    /// `hits`, `misses`, `evictions` counters.
    pub stats: Counters,
}

impl BufferPool {
    /// A pool holding up to `capacity` pages. A zero capacity is clamped
    /// to one — a cache-size sweep written as `0..n` should degrade to a
    /// single-frame pool, not panic (same convention as
    /// `ShardedMetaverse::new`).
    pub fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        let capacity = capacity.max(1);
        BufferPool {
            capacity,
            policy,
            frames: FastMap::default(),
            tick: 0,
            stats: Counters::new(),
        }
    }

    /// Touch a page: returns true on hit; on miss the page is admitted,
    /// evicting a victim if full. The returned victim (if any) tells the
    /// caller which page to write back / drop.
    pub fn access(&mut self, page: PageId) -> (bool, Option<PageId>) {
        self.tick += 1;
        if let Some(f) = self.frames.get_mut(&page) {
            f.last_used = self.tick;
            f.uses += 1;
            self.stats.incr("hits");
            return (true, None);
        }
        self.stats.incr("misses");
        let mut victim = None;
        if self.frames.len() >= self.capacity {
            victim = self.pick_victim();
            if let Some(v) = victim {
                self.frames.remove(&v);
                self.stats.incr("evictions");
            }
        }
        self.frames.insert(page, Frame { last_used: self.tick, uses: 1 });
        (false, victim)
    }

    fn pick_victim(&self) -> Option<PageId> {
        match self.policy {
            EvictionPolicy::Lru => self
                .frames
                .iter()
                .min_by_key(|(id, f)| (f.last_used, **id))
                .map(|(id, _)| *id),
            EvictionPolicy::Lfu => self
                .frames
                .iter()
                .min_by_key(|(id, f)| (f.uses, f.last_used, **id))
                .map(|(id, _)| *id),
            EvictionPolicy::SpaceAware => {
                // Virtual pages first (LRU among them), else LRU overall.
                let virt = self
                    .frames
                    .iter()
                    .filter(|(id, _)| id.space == Space::Virtual)
                    .min_by_key(|(id, f)| (f.last_used, **id))
                    .map(|(id, _)| *id);
                virt.or_else(|| {
                    self.frames
                        .iter()
                        .min_by_key(|(id, f)| (f.last_used, **id))
                        .map(|(id, _)| *id)
                })
            }
        }
    }

    /// Is a page resident?
    pub fn contains(&self, page: PageId) -> bool {
        self.frames.contains_key(&page)
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let h = self.stats.get("hits") as f64;
        let m = self.stats.get("misses") as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phys(n: u64) -> PageId {
        PageId::new(Space::Physical, n)
    }
    fn virt(n: u64) -> PageId {
        PageId::new(Space::Virtual, n)
    }

    #[test]
    fn hits_and_misses_count() {
        let mut bp = BufferPool::new(2, EvictionPolicy::Lru);
        assert_eq!(bp.access(phys(1)), (false, None));
        assert_eq!(bp.access(phys(1)), (true, None));
        assert_eq!(bp.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut bp = BufferPool::new(2, EvictionPolicy::Lru);
        bp.access(phys(1));
        bp.access(phys(2));
        bp.access(phys(1)); // 2 is now LRU
        let (_, victim) = bp.access(phys(3));
        assert_eq!(victim, Some(phys(2)));
        assert!(bp.contains(phys(1)));
        assert!(bp.contains(phys(3)));
    }

    #[test]
    fn lfu_protects_frequent_pages() {
        let mut bp = BufferPool::new(2, EvictionPolicy::Lfu);
        for _ in 0..5 {
            bp.access(phys(1)); // hot
        }
        bp.access(phys(2));
        let (_, victim) = bp.access(phys(3));
        assert_eq!(victim, Some(phys(2)), "cold page evicted, hot survives");
        assert!(bp.contains(phys(1)));
    }

    #[test]
    fn space_aware_sacrifices_virtual_pages_first() {
        let mut bp = BufferPool::new(3, EvictionPolicy::SpaceAware);
        bp.access(phys(1));
        bp.access(virt(1));
        bp.access(phys(2));
        // phys(1) is the global LRU, but the virtual page must go first.
        let (_, victim) = bp.access(phys(3));
        assert_eq!(victim, Some(virt(1)));
        assert!(bp.contains(phys(1)));
    }

    #[test]
    fn space_aware_falls_back_to_lru_without_virtual_pages() {
        let mut bp = BufferPool::new(2, EvictionPolicy::SpaceAware);
        bp.access(phys(1));
        bp.access(phys(2));
        let (_, victim) = bp.access(phys(3));
        assert_eq!(victim, Some(phys(1)));
    }

    #[test]
    fn capacity_is_respected() {
        let mut bp = BufferPool::new(4, EvictionPolicy::Lru);
        for i in 0..100 {
            bp.access(phys(i));
        }
        assert_eq!(bp.len(), 4);
        assert_eq!(bp.stats.get("evictions"), 96);
    }

    /// Satellite edge case: a SpaceAware pool holding *only* physical
    /// pages has no virtual victims to sacrifice — eviction must fall
    /// back to LRU among the physical pages (never panic, never fail to
    /// pick a victim and overfill the pool).
    #[test]
    fn space_aware_all_physical_pool_evicts_lru_physical() {
        let capacity = 8;
        let mut bp = BufferPool::new(capacity, EvictionPolicy::SpaceAware);
        for i in 0..capacity as u64 {
            bp.access(phys(i));
        }
        // Refresh page 0 so phys(1) is the LRU.
        bp.access(phys(0));
        let (hit, victim) = bp.access(phys(100));
        assert!(!hit);
        assert_eq!(victim, Some(phys(1)), "LRU fallback among physical pages");
        assert_eq!(bp.len(), capacity, "capacity still respected");
        // Sustained all-physical churn: every miss picks exactly one
        // victim, the pool never overfills or underfills.
        for i in 200..400u64 {
            let (hit, victim) = bp.access(phys(i));
            assert!(!hit);
            assert!(victim.is_some(), "a full pool must always find a victim");
            assert_eq!(bp.len(), capacity);
        }
    }

    /// Satellite edge case: zero capacity is clamped, not a panic.
    #[test]
    fn zero_capacity_is_clamped_to_one_frame() {
        let mut bp = BufferPool::new(0, EvictionPolicy::SpaceAware);
        assert_eq!(bp.access(virt(1)), (false, None));
        assert_eq!(bp.len(), 1);
        // The single frame thrashes but never overfills.
        let (hit, victim) = bp.access(phys(1));
        assert!(!hit);
        assert_eq!(victim, Some(virt(1)));
        assert_eq!(bp.len(), 1);
        assert_eq!(bp.access(phys(1)), (true, None), "resident page still hits");
    }
}
