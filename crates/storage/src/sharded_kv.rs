//! `ShardedKv` — the LSM store partitioned across N shards by key hash.
//!
//! The single [`KvStore`] serializes every memtable insert, flush, and
//! compaction on one thread; behind the sharded engine (E1d) that single
//! store becomes the durable-path bottleneck §IV-F warns about. This
//! module applies the same ownership discipline as `mv_core::sharded`:
//! each key lives on exactly one shard (Fx hash + SplitMix64 finalizer,
//! reduced mod the shard count), each shard is a complete [`KvStore`]
//! (memtable, runs, blooms, tiering — byte-for-byte the single-shard
//! code), and this module only adds routing plus deterministic
//! reassembly:
//!
//! * batched writes ([`ShardedKv::apply_batch`]) are partitioned by
//!   owner (stable, preserving per-key order) and applied by one scoped
//!   thread per shard — or sequentially with per-shard wall clocks when
//!   `set_parallel_apply(false)`, feeding E17's critical-path model
//!   exactly like E1d's;
//! * point reads route to the owner shard; scans fan out and merge the
//!   per-shard sorted results (ownership makes them disjoint);
//! * [`ShardedKv::stats`] merges per-shard [`Counters`].

use crate::kv::{KvConfig, KvStore};
use crate::wal::WalRecord;
use bytes::Bytes;
use mv_common::hash::FxHasher;
use mv_common::metrics::Counters;
use std::hash::Hasher as _;
use std::time::Instant;

/// Owner shard of a key: Fx hash of the bytes pushed through a
/// SplitMix64 finalizer (Fx alone is too linear for low-entropy keys),
/// reduced mod the shard count.
#[inline]
pub fn shard_of_key(key: &[u8], shards: usize) -> usize {
    let mut h = FxHasher::default();
    h.write(key);
    let mut z = h.finish().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as usize % shards
}

/// The sharded store. Same observable behaviour as one [`KvStore`]
/// (see module docs), scaled across key-hash shards.
#[derive(Debug)]
pub struct ShardedKv {
    shards: Vec<KvStore>,
    /// Per-shard wall seconds of the last [`apply_batch`] call.
    ///
    /// [`apply_batch`]: ShardedKv::apply_batch
    last_shard_walls: Vec<f64>,
    /// When false, `apply_batch` runs shards sequentially on the calling
    /// thread so the per-shard walls measure pure per-shard work — the
    /// honest-timing mode E17's critical-path model requires (cf. E1d).
    parallel_apply: bool,
    /// Per-shard staging queues of record indices, kept across
    /// [`apply_batch`] calls so steady-state batches route with zero
    /// queue allocations (cleared, capacity retained).
    ///
    /// [`apply_batch`]: ShardedKv::apply_batch
    staging: Vec<Vec<usize>>,
    /// Times a staging queue had to grow mid-routing. Flat across
    /// same-shaped batches once warm; exported via [`ShardedKv::stats`].
    staging_reallocs: u64,
}

impl ShardedKv {
    /// Build with `shards` owner shards, each a [`KvStore`] with the
    /// given config. A shard count of zero is clamped to one — a sweep
    /// written as `0..n` should degrade to the unsharded store, not
    /// panic.
    pub fn new(shards: usize, config: KvConfig) -> Self {
        let shards = shards.max(1);
        ShardedKv {
            shards: (0..shards).map(|_| KvStore::with_config(config)).collect(),
            last_shard_walls: vec![0.0; shards],
            parallel_apply: true,
            staging: (0..shards).map(|_| Vec::new()).collect(),
            staging_reallocs: 0,
        }
    }

    /// Default config on `shards` shards.
    pub fn with_defaults(shards: usize) -> Self {
        ShardedKv::new(shards, KvConfig::default())
    }

    /// Number of owner shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn owner(&self, key: &[u8]) -> usize {
        shard_of_key(key, self.shards.len())
    }

    /// Toggle parallel batch application (see the field docs; default
    /// on).
    pub fn set_parallel_apply(&mut self, on: bool) {
        self.parallel_apply = on;
    }

    /// Wall seconds each shard spent applying its queue in the last
    /// [`apply_batch`]. The maximum is the batch's critical path.
    ///
    /// [`apply_batch`]: ShardedKv::apply_batch
    pub fn last_shard_walls(&self) -> &[f64] {
        &self.last_shard_walls
    }

    /// Insert or overwrite a key (routes to the owner shard).
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        let key = key.into();
        let owner = self.owner(&key);
        self.shards[owner].put(key, value.into());
    }

    /// Delete a key (routes to the owner shard).
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        let key = key.into();
        let owner = self.owner(&key);
        self.shards[owner].delete(key);
    }

    /// Point lookup (owner shard only — no fan-out).
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.shards[self.owner(key)].get(key)
    }

    /// Apply a batch of logged mutations: ops are routed to their owner
    /// shards (stable, preserving per-key order) and each shard applies
    /// its queue on its own scoped thread — one thread per shard, the
    /// `mv_core::sharded` ownership discipline.
    pub fn apply_batch(&mut self, records: &[WalRecord]) {
        let n = self.shards.len();
        // Route into the persistent staging queues (record indices, not
        // references, so the scratch can outlive the borrow): clear keeps
        // capacity, so a steady stream of same-shaped batches routes with
        // zero allocations after the first.
        for q in &mut self.staging {
            q.clear();
        }
        for (i, rec) in records.iter().enumerate() {
            let key = match rec {
                WalRecord::Put { key, .. } | WalRecord::Delete { key } => key.as_slice(),
            };
            // lint:allow(panic-path): shard_of_key is `hash % n` with n == staging.len(); the routing index is local arithmetic
            let q = &mut self.staging[shard_of_key(key, n)];
            if q.len() == q.capacity() {
                self.staging_reallocs += 1;
            }
            q.push(i);
        }
        let mut walls = vec![0.0f64; n];
        let run_queue = |shard: &mut KvStore, queue: &[usize]| {
            // lint:allow(wall-clock): measures real CPU time of the serial replay path for the speedup report; never feeds sim state
            let t0 = Instant::now();
            for &ri in queue {
                // lint:allow(panic-path): queue indices were produced by enumerating this same records slice above
                match &records[ri] {
                    WalRecord::Put { key, value } => shard.put(
                        Bytes::copy_from_slice(key),
                        Bytes::copy_from_slice(value),
                    ),
                    WalRecord::Delete { key } => shard.delete(Bytes::copy_from_slice(key)),
                }
            }
            t0.elapsed().as_secs_f64()
        };
        if self.parallel_apply {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(self.staging.iter())
                    .map(|(shard, queue)| scope.spawn(|| run_queue(shard, queue)))
                    .collect();
                for (si, handle) in handles.into_iter().enumerate() {
                    // lint:allow(panic-path): si enumerates the per-shard handles (walls sized to n); a panicked worker poisons the replay
                    walls[si] = handle.join().expect("shard worker panicked");
                }
            });
        } else {
            for (si, (shard, queue)) in
                self.shards.iter_mut().zip(self.staging.iter()).enumerate()
            {
                // lint:allow(panic-path): si enumerates the shards; walls was sized to n above
                walls[si] = run_queue(shard, queue);
            }
        }
        self.last_shard_walls = walls;
    }

    /// Range scan over `[lo, hi)`: fan out to every shard, merge the
    /// (disjoint) sorted results into one ascending sequence.
    pub fn scan(&self, lo: &[u8], hi: &[u8]) -> Vec<(Bytes, Bytes)> {
        let mut merged: Vec<(Bytes, Bytes)> =
            self.shards.iter().flat_map(|s| s.scan(lo, hi)).collect();
        merged.sort_by(|(a, _), (b, _)| a.cmp(b));
        merged
    }

    /// Force-freeze every shard's memtable.
    pub fn flush_all(&mut self) {
        for shard in &mut self.shards {
            shard.flush();
        }
    }

    /// Major-compact every shard.
    pub fn compact_all(&mut self) {
        for shard in &mut self.shards {
            shard.compact();
        }
    }

    /// Immutable run count per shard (diagnostics).
    pub fn run_counts(&self) -> Vec<usize> {
        self.shards.iter().map(KvStore::run_count).collect()
    }

    /// Total bytes held in immutable runs across all shards.
    pub fn run_bytes(&self) -> usize {
        self.shards.iter().map(KvStore::run_bytes).sum()
    }

    /// Total memtable fill in bytes across all shards.
    pub fn memtable_bytes(&self) -> usize {
        self.shards.iter().map(KvStore::memtable_bytes).sum()
    }

    /// Per-shard [`KvStore::stats`], merged, plus the router's own
    /// `staging_reallocs` (growths of the persistent per-shard staging
    /// queues — flat in steady state).
    pub fn stats(&self) -> Counters {
        let mut all = Counters::new();
        for shard in &self.shards {
            all.merge(&shard.stats());
        }
        all.add("staging_reallocs", self.staging_reallocs);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let mut kv = ShardedKv::with_defaults(0);
        assert_eq!(kv.shard_count(), 1);
        kv.put(b("a"), b("1"));
        assert_eq!(kv.get(b"a"), Some(b("1")));
    }

    #[test]
    fn routing_is_stable_and_spreads_keys() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for i in 0..4_000u32 {
            let key = format!("entity-{i}");
            let s = shard_of_key(key.as_bytes(), shards);
            assert_eq!(s, shard_of_key(key.as_bytes(), shards), "stable");
            counts[s] += 1;
        }
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            *lo * 2 > *hi,
            "hash routing must spread low-entropy keys: {counts:?}"
        );
    }

    #[test]
    fn batch_apply_matches_op_at_a_time() {
        let records: Vec<WalRecord> = (0..500u32)
            .map(|i| WalRecord::Put {
                key: format!("k{}", i % 120).into_bytes(),
                value: format!("v{i}").into_bytes(),
            })
            .chain((0..40u32).map(|i| WalRecord::Delete {
                key: format!("k{}", i * 3).into_bytes(),
            }))
            .collect();
        let mut batched = ShardedKv::new(4, KvConfig { memtable_budget: 64, ..KvConfig::default() });
        batched.apply_batch(&records);
        let mut serial = ShardedKv::new(4, KvConfig { memtable_budget: 64, ..KvConfig::default() });
        for rec in &records {
            match rec {
                WalRecord::Put { key, value } => {
                    serial.put(Bytes::from(key.clone()), Bytes::from(value.clone()))
                }
                WalRecord::Delete { key } => serial.delete(Bytes::from(key.clone())),
            }
        }
        assert_eq!(batched.scan(b"", b"\xff"), serial.scan(b"", b"\xff"));
        assert_eq!(batched.last_shard_walls().len(), 4);
    }

    #[test]
    fn serial_apply_mode_produces_identical_state() {
        let records: Vec<WalRecord> = (0..300u32)
            .map(|i| WalRecord::Put {
                key: format!("key-{}", i % 90).into_bytes(),
                value: vec![i as u8; 12],
            })
            .collect();
        let mut par = ShardedKv::with_defaults(4);
        par.apply_batch(&records);
        let mut ser = ShardedKv::with_defaults(4);
        ser.set_parallel_apply(false);
        ser.apply_batch(&records);
        assert_eq!(par.scan(b"", b"\xff"), ser.scan(b"", b"\xff"));
        assert!(ser.last_shard_walls().iter().all(|w| *w >= 0.0));
    }

    #[test]
    fn staging_queues_stop_reallocating_after_first_batch() {
        let records: Vec<WalRecord> = (0..600u32)
            .map(|i| WalRecord::Put {
                key: format!("entity-{}", i % 150).into_bytes(),
                value: format!("v{i}").into_bytes(),
            })
            .collect();
        let mut kv = ShardedKv::with_defaults(4);
        kv.set_parallel_apply(false);
        kv.apply_batch(&records);
        let warm = kv.stats().get("staging_reallocs");
        assert!(warm > 0, "first batch must grow the staging queues");
        for _ in 0..20 {
            kv.apply_batch(&records);
        }
        assert_eq!(
            kv.stats().get("staging_reallocs"),
            warm,
            "steady-state batches must reuse staging capacity"
        );
    }

    #[test]
    fn merged_stats_accumulate_across_shards() {
        let mut kv = ShardedKv::new(4, KvConfig { memtable_budget: 32, ..KvConfig::default() });
        for i in 0..400u32 {
            kv.put(Bytes::from(format!("k{i:04}")), Bytes::from(vec![3u8; 16]));
        }
        let stats = kv.stats();
        assert!(stats.get("flushes") > 0);
        for i in 0..200u32 {
            assert_eq!(kv.get(format!("absent-{i}").as_bytes()), None);
        }
        let stats = kv.stats();
        assert!(stats.get("bloom_skips") > 0, "missing keys must hit the filters");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_sharded_matches_btreemap_model(
            ops in proptest::collection::vec((0u8..3, "[a-e]{1,3}", "[x-z]{0,3}"), 1..120),
            shards in 1usize..6,
            budget in 16usize..128,
        ) {
            let mut kv = ShardedKv::new(
                shards,
                KvConfig { memtable_budget: budget, ..KvConfig::default() },
            );
            let mut model: BTreeMap<String, String> = BTreeMap::new();
            for (op, k, v) in &ops {
                match op {
                    0 => {
                        kv.put(Bytes::from(k.clone()), Bytes::from(v.clone()));
                        model.insert(k.clone(), v.clone());
                    }
                    1 => {
                        kv.delete(Bytes::from(k.clone()));
                        model.remove(k);
                    }
                    _ => {
                        let got = kv.get(k.as_bytes())
                            .map(|b| String::from_utf8_lossy(&b).to_string());
                        prop_assert_eq!(got, model.get(k).cloned());
                    }
                }
            }
            let scanned: Vec<(String, String)> = kv
                .scan(b"a", b"zzzz")
                .into_iter()
                .map(|(k, v)| (
                    String::from_utf8_lossy(&k).to_string(),
                    String::from_utf8_lossy(&v).to_string(),
                ))
                .collect();
            let expected: Vec<(String, String)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(scanned, expected);
        }
    }
}
