//! Matching engines: linear baseline vs. indexed.
//!
//! The indexed matcher files each subscription under its most selective
//! constraint: a required term (inverted index), else a spatial region
//! (coarse grid cells), else the catch-all list. Matching an event
//! gathers candidates from the event's terms and location cell plus the
//! catch-all, dedups, and fully evaluates — a standard two-phase
//! content-based matcher. Property tests pin it to the linear matcher.

use crate::publication::Publication;
use crate::subscription::Subscription;
use mv_common::geom::Point;
use mv_common::hash::{FastMap, FastSet};

/// A matcher answers which subscription indices match a publication, and
/// the top-k by term score (the geo-textual top-k of reference \[21\]).
pub trait Matcher {
    /// Register a subscription; returns its index.
    fn add(&mut self, sub: Subscription) -> usize;

    /// Indices of all matching subscriptions, ascending.
    fn match_pub(&self, p: &Publication) -> Vec<usize>;

    /// The top-k matching subscriptions by term score (desc, ties by
    /// index asc). Only subscriptions that fully match are eligible.
    fn top_k(&self, p: &Publication, k: usize) -> Vec<usize> {
        let mut hits: Vec<(f64, usize)> = self
            .match_pub(p)
            .into_iter()
            .map(|i| (self.get(i).term_score(p), i))
            .collect();
        hits.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        hits.truncate(k);
        hits.into_iter().map(|(_, i)| i).collect()
    }

    /// Access a registered subscription.
    fn get(&self, idx: usize) -> &Subscription;

    /// Number of registered subscriptions.
    fn len(&self) -> usize;

    /// True when no subscriptions are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// O(n)-per-event baseline.
#[derive(Debug, Default)]
pub struct LinearMatcher {
    subs: Vec<Subscription>,
}

impl LinearMatcher {
    /// Empty matcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Matcher for LinearMatcher {
    fn add(&mut self, sub: Subscription) -> usize {
        self.subs.push(sub);
        self.subs.len() - 1
    }

    fn match_pub(&self, p: &Publication) -> Vec<usize> {
        self.subs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.matches(p))
            .map(|(i, _)| i)
            .collect()
    }

    fn get(&self, idx: usize) -> &Subscription {
        &self.subs[idx]
    }

    fn len(&self) -> usize {
        self.subs.len()
    }
}

/// Cell side for the spatial index (metres). Coarse on purpose: regions
/// only need to prune, full evaluation follows anyway.
const CELL: f64 = 50.0;

/// Two-phase indexed matcher.
#[derive(Debug, Default)]
pub struct IndexedMatcher {
    subs: Vec<Subscription>,
    /// term → subscription indices filed under that term.
    by_term: FastMap<String, Vec<usize>>,
    /// grid cell → subscription indices filed spatially.
    by_cell: FastMap<(i64, i64), Vec<usize>>,
    /// Subscriptions with neither terms nor region.
    catch_all: Vec<usize>,
    /// Candidate evaluations performed (experiment metric).
    pub evaluations: std::cell::Cell<u64>,
}

impl IndexedMatcher {
    /// Empty matcher.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell_of(p: Point) -> (i64, i64) {
        ((p.x / CELL).floor() as i64, (p.y / CELL).floor() as i64)
    }
}

impl Matcher for IndexedMatcher {
    fn add(&mut self, sub: Subscription) -> usize {
        let idx = self.subs.len();
        if let Some(term) = sub.terms.first() {
            // File under the first required term (any would do; the full
            // evaluation re-checks everything).
            self.by_term.entry(term.clone()).or_default().push(idx);
        } else if let Some(region) = &sub.region {
            let lo = Self::cell_of(region.lo);
            let hi = Self::cell_of(region.hi);
            // Clamp pathological regions to avoid unbounded cell fans;
            // oversize regions fall back to the catch-all list.
            let cells = ((hi.0 - lo.0 + 1) as i128) * ((hi.1 - lo.1 + 1) as i128);
            if cells > 4096 {
                self.catch_all.push(idx);
            } else {
                for cx in lo.0..=hi.0 {
                    for cy in lo.1..=hi.1 {
                        self.by_cell.entry((cx, cy)).or_default().push(idx);
                    }
                }
            }
        } else {
            self.catch_all.push(idx);
        }
        self.subs.push(sub);
        idx
    }

    fn match_pub(&self, p: &Publication) -> Vec<usize> {
        let mut candidates: FastSet<usize> = FastSet::default();
        for t in &p.terms {
            if let Some(ids) = self.by_term.get(t) {
                candidates.extend(ids.iter().copied());
            }
        }
        if let Some(loc) = p.location {
            if let Some(ids) = self.by_cell.get(&Self::cell_of(loc)) {
                candidates.extend(ids.iter().copied());
            }
        }
        candidates.extend(self.catch_all.iter().copied());
        let mut hits: Vec<usize> = candidates
            .into_iter()
            .filter(|&i| {
                self.evaluations.set(self.evaluations.get() + 1);
                self.subs[i].matches(p)
            })
            .collect();
        hits.sort_unstable();
        hits
    }

    fn get(&self, idx: usize) -> &Subscription {
        &self.subs[idx]
    }

    fn len(&self) -> usize {
        self.subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscription::CmpOp;
    use mv_common::geom::Aabb;
    use mv_common::id::ClientId;
    use mv_common::seeded_rng;
    use mv_common::time::SimTime;
    use proptest::prelude::*;
    use rand::Rng;

    fn c(i: u64) -> ClientId {
        ClientId::new(i)
    }

    const TERMS: [&str; 8] = ["sale", "pastry", "game", "concert", "troop", "vr", "nft", "museum"];

    fn random_sub<R: Rng>(rng: &mut R, i: u64) -> Subscription {
        let mut sub = Subscription::new(c(i));
        if rng.gen_bool(0.5) {
            sub = sub.with_term(TERMS[rng.gen_range(0..TERMS.len())]);
        }
        if rng.gen_bool(0.4) {
            let center = Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0));
            sub = sub.in_region(Aabb::centered(center, rng.gen_range(5.0..40.0)));
        }
        if rng.gen_bool(0.5) {
            sub = sub.where_attr("price", CmpOp::Le, rng.gen_range(1.0..100.0));
        }
        sub
    }

    fn random_pub<R: Rng>(rng: &mut R) -> Publication {
        let mut p = Publication::new(SimTime::ZERO)
            .attr("price", rng.gen_range(1.0..100.0))
            .at(Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)));
        for _ in 0..rng.gen_range(1..4) {
            p = p.term(TERMS[rng.gen_range(0..TERMS.len())]);
        }
        p
    }

    #[test]
    fn indexed_equals_linear_randomized() {
        let mut rng = seeded_rng(23);
        let mut lin = LinearMatcher::new();
        let mut idx = IndexedMatcher::new();
        for i in 0..500 {
            let s = random_sub(&mut rng, i);
            lin.add(s.clone());
            idx.add(s);
        }
        for _ in 0..100 {
            let p = random_pub(&mut rng);
            assert_eq!(lin.match_pub(&p), idx.match_pub(&p));
            assert_eq!(lin.top_k(&p, 5), idx.top_k(&p, 5));
        }
    }

    #[test]
    fn indexed_evaluates_fraction_of_subscriptions() {
        let mut rng = seeded_rng(29);
        let mut idx = IndexedMatcher::new();
        for i in 0..2000 {
            // Every sub has a term so the inverted index prunes hard.
            let term = TERMS[rng.gen_range(0..TERMS.len())];
            idx.add(Subscription::new(c(i)).with_term(term));
        }
        let p = Publication::new(SimTime::ZERO).term(TERMS[0]);
        let hits = idx.match_pub(&p);
        assert!(!hits.is_empty());
        let evals = idx.evaluations.get();
        assert!(evals < 600, "evaluated {evals} of 2000 subscriptions");
    }

    #[test]
    fn top_k_orders_by_score() {
        let mut m = LinearMatcher::new();
        m.add(Subscription::new(c(0)).with_term("sale")); // score 1.0
        m.add(Subscription::new(c(1)).with_term("sale").with_term("pastry")); // 1.0 (both present)
        m.add(Subscription::new(c(2))); // unconstrained, score 0
        let p = Publication::new(SimTime::ZERO).term("sale").term("pastry");
        let top = m.top_k(&p, 2);
        assert_eq!(top.len(), 2);
        assert!(top.contains(&0) || top.contains(&1));
        assert!(!top.contains(&2), "zero-score sub must rank last: {top:?}");
    }

    #[test]
    fn huge_region_falls_back_to_catch_all() {
        let mut idx = IndexedMatcher::new();
        idx.add(
            Subscription::new(c(0)).in_region(Aabb::centered(Point::ORIGIN, 1_000_000.0)),
        );
        let p = Publication::new(SimTime::ZERO).at(Point::new(5000.0, 5000.0));
        assert_eq!(idx.match_pub(&p), vec![0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_indexed_equals_linear(seed in 0u64..5000) {
            let mut rng = seeded_rng(seed);
            let mut lin = LinearMatcher::new();
            let mut idx = IndexedMatcher::new();
            for i in 0..60 {
                let s = random_sub(&mut rng, i);
                lin.add(s.clone());
                idx.add(s);
            }
            for _ in 0..10 {
                let p = random_pub(&mut rng);
                prop_assert_eq!(lin.match_pub(&p), idx.match_pub(&p));
            }
        }
    }
}
