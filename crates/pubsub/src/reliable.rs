//! A single matcher-backed broker delivering over the reliable transport.
//!
//! [`crate::broker::BrokerTree`] studies *routing* (which subtrees an
//! event must visit); this module studies *delivery*: once the matcher
//! says a client is interested, the notification still has to cross a
//! lossy, partitioning network. Each matched publication is assigned a
//! monotone `pub_id` and either shipped over
//! [`mv_net::ReliableTransport`] (connected clients) or retained in a
//! per-client queue (disconnected clients, and messages the transport
//! gave up on). Reconnect replays the retained queue in ascending
//! `pub_id` order — a total, pinned order — and the client-side
//! [`InboxDedup`] drops `pub_id`s it has already seen, so a flapping
//! client processes every retained publication exactly once even when
//! transport-level retries or replays duplicate the bytes.

use crate::matcher::{IndexedMatcher, Matcher};
use crate::publication::Publication;
use crate::subscription::Subscription;
use mv_common::hash::{FastMap, FastSet};
use mv_common::id::{ClientId, NodeId};
use mv_common::metrics::Counters;
use mv_common::time::SimTime;
use mv_net::reliable::Event;
use mv_net::{Network, ReliableTransport, RetryPolicy};
use mv_obs::{SharedRegistry, SharedTracer, StatSet, TraceCtx};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// One matched notification in flight (or retained).
#[derive(Debug, Clone, PartialEq)]
pub struct PubMsg {
    /// Broker-assigned monotone id: the app-level dedup key and the
    /// replay order.
    pub pub_id: u64,
    /// The matched publication.
    pub publication: Publication,
    /// Causal context of the publish, carried through retention,
    /// replay, and every transport attempt.
    pub ctx: Option<TraceCtx>,
}

#[derive(Debug)]
struct ClientState {
    node: NodeId,
    connected: bool,
    /// pub_id → message, kept while the client is unreachable.
    /// BTreeMap so replay is ascending-`pub_id` by construction.
    retained: BTreeMap<u64, PubMsg>,
}

/// Broker: matcher + reliable delivery + per-client retention.
#[derive(Debug)]
pub struct ReliableBroker {
    node: NodeId,
    msg_bytes: u64,
    matcher: IndexedMatcher,
    clients: FastMap<ClientId, ClientState>,
    by_node: FastMap<NodeId, ClientId>,
    /// Delivery machinery (retries, transport dedup, expiry).
    pub transport: ReliableTransport<PubMsg>,
    next_pub_id: u64,
    /// `matched`, `shipped`, `retained`, `replayed` counters.
    /// Registry-backed (`pubsub.broker.*`).
    pub stats: StatSet,
}

impl ReliableBroker {
    /// A broker at `node`, charging `msg_bytes` per notification;
    /// `seed` pins the transport's retry jitter.
    pub fn new(node: NodeId, policy: RetryPolicy, seed: u64, msg_bytes: u64) -> Self {
        ReliableBroker {
            node,
            msg_bytes,
            matcher: IndexedMatcher::new(),
            clients: FastMap::default(),
            by_node: FastMap::default(),
            transport: ReliableTransport::new(policy, seed),
            next_pub_id: 0,
            stats: StatSet::new("pubsub.broker"),
        }
    }

    /// Collect spans for traced publishes (forwarded to the transport;
    /// retention/replay steps log events on the same tracer).
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.transport.set_tracer(tracer);
    }

    /// Re-home the broker's and its transport's counters onto one
    /// shared registry (values carry over).
    pub fn attach_registry(&mut self, registry: &SharedRegistry) {
        self.stats.attach(registry);
        self.transport.attach_registry(registry);
    }

    /// Register a client living at `client_node` (starts connected).
    pub fn register(&mut self, client: ClientId, client_node: NodeId) {
        self.clients.insert(
            client,
            ClientState { node: client_node, connected: true, retained: BTreeMap::new() },
        );
        self.by_node.insert(client_node, client);
    }

    /// Attach a subscription (routed by its `client` field).
    pub fn subscribe(&mut self, sub: Subscription) {
        self.matcher.add(sub);
    }

    /// Mark a client disconnected: its notifications retain from now on.
    pub fn disconnect(&mut self, client: ClientId) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.connected = false;
        }
    }

    /// Publications a client has waiting.
    pub fn retained(&self, client: ClientId) -> usize {
        self.clients.get(&client).map_or(0, |c| c.retained.len())
    }

    /// Total retained publications across every client — the broker's
    /// outbox-depth health probe.
    pub fn retained_total(&self) -> usize {
        self.clients.values().map(|c| c.retained.len()).sum()
    }

    /// Publish the broker's health gauges into its own stat set
    /// (`pubsub.broker.retained_depth`); the `replayed` counter already
    /// gives the redelivery rate once windowed.
    pub fn publish_health_gauges(&mut self) {
        let depth = self.retained_total() as f64;
        self.stats.set_gauge("retained_depth", depth);
    }

    /// Publish: match, assign a `pub_id`, and ship or retain per client.
    /// Returns the `pub_id` (also when nothing matched).
    pub fn publish<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        p: Publication,
        now: SimTime,
    ) -> u64 {
        self.publish_traced(net, rng, p, now, None)
    }

    /// [`Self::publish`] carrying the publish's causal context: every
    /// matched client's delivery (including retention and replay) hangs
    /// off the same trace.
    pub fn publish_traced<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        p: Publication,
        now: SimTime,
        ctx: Option<TraceCtx>,
    ) -> u64 {
        let pub_id = self.next_pub_id;
        self.next_pub_id += 1;
        // A client with several matching subscriptions gets the event
        // once; BTreeSet keeps the fan-out order deterministic.
        let matched: BTreeSet<ClientId> = self
            .matcher
            .match_pub(&p)
            .into_iter()
            .map(|i| self.matcher.get(i).client)
            .collect();
        for client in matched {
            self.stats.incr("matched");
            let msg = PubMsg { pub_id, publication: p.clone(), ctx };
            self.dispatch(net, rng, client, msg, now);
        }
        pub_id
    }

    fn dispatch<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        client: ClientId,
        msg: PubMsg,
        now: SimTime,
    ) {
        let Some(state) = self.clients.get_mut(&client) else {
            return;
        };
        if state.connected {
            let dst = state.node;
            self.stats.incr("shipped");
            let ctx = msg.ctx;
            self.transport.send_traced(net, rng, self.node, dst, msg, self.msg_bytes, now, ctx);
        } else {
            self.stats.incr("retained");
            if let (Some(tr), Some(c)) = (self.transport.tracer().cloned(), msg.ctx) {
                tr.event(c, "pubsub.broker.retain", now, "ok");
            }
            state.retained.insert(msg.pub_id, msg);
        }
    }

    /// Reconnect a client and replay everything retained for it, in
    /// ascending `pub_id` order. Returns how many were replayed.
    pub fn reconnect<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
    ) -> usize {
        let Some(state) = self.clients.get_mut(&client) else {
            return 0;
        };
        state.connected = true;
        let backlog: Vec<PubMsg> = std::mem::take(&mut state.retained).into_values().collect();
        let dst = state.node;
        let n = backlog.len();
        for msg in backlog {
            self.stats.incr("replayed");
            if let (Some(tr), Some(c)) = (self.transport.tracer().cloned(), msg.ctx) {
                tr.event(c, "pubsub.broker.replay", now, "ok");
            }
            let ctx = msg.ctx;
            self.transport.send_traced(net, rng, self.node, dst, msg, self.msg_bytes, now, ctx);
        }
        n
    }

    /// Earliest pending transport work; drive the clock here and `poll`.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.transport.next_wakeup()
    }

    /// Pump the transport up to `now`. Arrivals are returned for the
    /// client side ([`InboxDedup::accept`] decides whether to process);
    /// expired messages are retained again and the client marked
    /// disconnected, so the next reconnect redelivers them.
    pub fn poll<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        now: SimTime,
    ) -> Vec<(ClientId, PubMsg)> {
        let mut arrived = Vec::new();
        for ev in self.transport.poll(net, rng, now) {
            match ev {
                Event::Delivered { dst, payload, .. } => {
                    if let Some(&client) = self.by_node.get(&dst) {
                        arrived.push((client, payload));
                    }
                }
                Event::Expired { dst, payload, .. } => {
                    if let Some(&client) = self.by_node.get(&dst) {
                        if let Some(state) = self.clients.get_mut(&client) {
                            state.connected = false;
                            self.stats.incr("retained");
                            state.retained.insert(payload.pub_id, payload);
                        }
                    }
                }
            }
        }
        arrived
    }

    /// A node crashed: drop the transport's volatile state for it and,
    /// if a client lived there, retain for it. Call from
    /// `FaultTarget::on_node_crash`.
    pub fn on_node_crash(&mut self, node: NodeId) {
        self.transport.on_node_crash(node);
        if let Some(&client) = self.by_node.get(&node) {
            self.disconnect(client);
        }
    }
}

/// Client-side inbox dedup: processes each `pub_id` once, however many
/// times the bytes arrive (transport retries, reconnect replays).
#[derive(Debug, Default)]
pub struct InboxDedup {
    seen: FastSet<u64>,
    /// `accepted` / `duplicates` counters.
    pub stats: Counters,
}

impl InboxDedup {
    /// An empty inbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// True exactly once per `pub_id`; repeats count as `duplicates`.
    pub fn accept(&mut self, pub_id: u64) -> bool {
        if self.seen.insert(pub_id) {
            self.stats.incr("accepted");
            true
        } else {
            self.stats.incr("duplicates");
            false
        }
    }

    /// Distinct publications processed.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been processed.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use mv_common::time::SimDuration;
    use mv_net::LinkSpec;

    fn world(loss: f64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let (broker, client) = (NodeId::new(0), NodeId::new(1));
        net.add_node(broker, "broker");
        net.add_node(client, "client");
        net.add_link_bidi(
            broker,
            client,
            LinkSpec::new(SimDuration::from_millis(8), 1e8).with_loss(loss),
        );
        net.set_group(client, 1).unwrap();
        (net, broker, client)
    }

    fn drain(
        broker: &mut ReliableBroker,
        inbox: &mut InboxDedup,
        net: &mut Network,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<u64> {
        let mut processed = Vec::new();
        while let Some(at) = broker.next_wakeup() {
            for (_client, msg) in broker.poll(net, rng, at) {
                if inbox.accept(msg.pub_id) {
                    processed.push(msg.pub_id);
                }
            }
        }
        processed
    }

    fn sale(i: u64) -> Publication {
        Publication::new(SimTime::from_millis(i)).term("sale").attr("n", i as f64)
    }

    #[test]
    fn matched_publications_reach_the_subscriber() {
        let (mut net, bnode, cnode) = world(0.0);
        let mut broker = ReliableBroker::new(bnode, RetryPolicy::default(), 1, 128);
        let mut rng = seeded_rng(1);
        let client = ClientId::new(1);
        broker.register(client, cnode);
        broker.subscribe(Subscription::new(client).with_term("sale"));
        broker.publish(&mut net, &mut rng, sale(0), SimTime::ZERO);
        broker.publish(&mut net, &mut rng, Publication::new(SimTime::ZERO).term("game"), SimTime::ZERO);
        let mut inbox = InboxDedup::new();
        let processed = drain(&mut broker, &mut inbox, &mut net, &mut rng);
        assert_eq!(processed, vec![0], "only the matching publication arrives");
        assert_eq!(broker.stats.get("matched"), 1);
    }

    #[test]
    fn overlapping_subscriptions_deliver_once_per_publication() {
        let (mut net, bnode, cnode) = world(0.0);
        let mut broker = ReliableBroker::new(bnode, RetryPolicy::default(), 2, 128);
        let mut rng = seeded_rng(2);
        let client = ClientId::new(1);
        broker.register(client, cnode);
        broker.subscribe(Subscription::new(client).with_term("sale"));
        broker.subscribe(Subscription::new(client)); // unfiltered — also matches
        broker.publish(&mut net, &mut rng, sale(0), SimTime::ZERO);
        let mut inbox = InboxDedup::new();
        let processed = drain(&mut broker, &mut inbox, &mut net, &mut rng);
        assert_eq!(processed, vec![0]);
        assert_eq!(inbox.stats.get("duplicates"), 0, "broker collapses per-client fan-out");
    }

    #[test]
    fn flapping_client_processes_every_retained_publication_exactly_once() {
        let (mut net, bnode, cnode) = world(0.25);
        let mut broker = ReliableBroker::new(bnode, RetryPolicy::default(), 8, 128);
        let mut rng = seeded_rng(8);
        let client = ClientId::new(1);
        broker.register(client, cnode);
        broker.subscribe(Subscription::new(client).with_term("sale"));
        let mut inbox = InboxDedup::new();

        // Phase 1: connected, lossy — some publications flow.
        for i in 0..5 {
            broker.publish(&mut net, &mut rng, sale(i), SimTime::from_millis(i));
        }
        drain(&mut broker, &mut inbox, &mut net, &mut rng);

        // Phase 2: client flaps off; publications retain.
        broker.disconnect(client);
        net.sever(0, 1);
        for i in 5..12 {
            broker.publish(&mut net, &mut rng, sale(i), SimTime::from_millis(i));
        }
        assert_eq!(broker.retained(client), 7);

        // Phase 3: heal + reconnect; the retained backlog is re-sent in
        // ascending pub_id order (arrival order may still shuffle under
        // loss — the guarantee is exactly-once, not ordered delivery).
        net.heal(0, 1);
        assert_eq!(broker.reconnect(&mut net, &mut rng, client, SimTime::from_secs(1)), 7);
        let mut replayed = drain(&mut broker, &mut inbox, &mut net, &mut rng);
        replayed.sort_unstable();
        assert_eq!(replayed, (5..12).collect::<Vec<u64>>(), "every retained pub, none twice");

        // Every matched publication processed exactly once.
        assert_eq!(inbox.len(), 12);
        assert_eq!(inbox.stats.get("accepted"), 12);
        assert_eq!(broker.retained(client), 0);
    }

    #[test]
    fn expired_notifications_survive_via_retention() {
        let (mut net, bnode, cnode) = world(0.0);
        let policy = RetryPolicy { max_attempts: 2, ..RetryPolicy::default() };
        let mut broker = ReliableBroker::new(bnode, policy, 3, 128);
        let mut rng = seeded_rng(3);
        let client = ClientId::new(1);
        broker.register(client, cnode);
        broker.subscribe(Subscription::new(client).with_term("sale"));

        // Partition strikes before the broker learns of it.
        net.sever(0, 1);
        broker.publish(&mut net, &mut rng, sale(0), SimTime::ZERO);
        let mut inbox = InboxDedup::new();
        drain(&mut broker, &mut inbox, &mut net, &mut rng);
        assert!(inbox.is_empty());
        assert_eq!(broker.transport.stats.get("expired"), 1);
        assert_eq!(broker.retained(client), 1, "expired notification retained");

        net.heal(0, 1);
        broker.reconnect(&mut net, &mut rng, client, SimTime::from_secs(10));
        let processed = drain(&mut broker, &mut inbox, &mut net, &mut rng);
        assert_eq!(processed, vec![0]);
    }

    #[test]
    fn two_runs_same_seed_are_identical() {
        let run = || {
            let (mut net, bnode, cnode) = world(0.3);
            let mut broker = ReliableBroker::new(bnode, RetryPolicy::default(), 42, 128);
            let mut rng = seeded_rng(42);
            let client = ClientId::new(1);
            broker.register(client, cnode);
            broker.subscribe(Subscription::new(client).with_term("sale"));
            let mut inbox = InboxDedup::new();
            for i in 0..15 {
                broker.publish(&mut net, &mut rng, sale(i), SimTime::from_millis(i));
            }
            let processed = drain(&mut broker, &mut inbox, &mut net, &mut rng);
            (processed, format!("{:?}", broker.transport.stats), format!("{:?}", broker.stats))
        };
        assert_eq!(run(), run());
    }
}
