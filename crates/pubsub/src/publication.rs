//! Publications (events) flowing through the pub/sub layer.

use mv_common::geom::Point;
use mv_common::time::SimTime;
use mv_common::Space;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A published event: attributes, terms, optional location.
///
/// Examples from the paper's scenarios: a flash-sale announcement
/// (`terms = ["sale", "pastry"]`, `attrs = {discount: 0.4}`, located at
/// the physical shop), a troop sighting, a friend entering a zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Publication {
    /// Publication time.
    pub ts: SimTime,
    /// Numeric attributes.
    pub attrs: BTreeMap<String, f64>,
    /// Lower-cased text terms.
    pub terms: Vec<String>,
    /// Where the event happened, if anywhere.
    pub location: Option<Point>,
    /// Originating space.
    pub space: Space,
}

impl Publication {
    /// Start building a publication at `ts`.
    pub fn new(ts: SimTime) -> Self {
        Publication {
            ts,
            attrs: BTreeMap::new(),
            terms: Vec::new(),
            location: None,
            space: Space::Physical,
        }
    }

    /// Builder: add a numeric attribute.
    pub fn attr(mut self, name: impl Into<String>, v: f64) -> Self {
        self.attrs.insert(name.into(), v);
        self
    }

    /// Builder: add a term (lower-cased).
    pub fn term(mut self, t: impl AsRef<str>) -> Self {
        self.terms.push(t.as_ref().to_lowercase());
        self
    }

    /// Builder: set the location.
    pub fn at(mut self, p: Point) -> Self {
        self.location = Some(p);
        self
    }

    /// Builder: tag the space.
    pub fn in_space(mut self, s: Space) -> Self {
        self.space = s;
        self
    }

    /// Does the publication contain the term?
    pub fn has_term(&self, t: &str) -> bool {
        self.terms.iter().any(|x| x == t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_lowercases_terms() {
        let p = Publication::new(SimTime::ZERO)
            .term("Sale")
            .term("PASTRY")
            .attr("discount", 0.4)
            .at(Point::new(1.0, 2.0));
        assert!(p.has_term("sale"));
        assert!(p.has_term("pastry"));
        assert!(!p.has_term("Sale"));
        assert_eq!(p.attrs["discount"], 0.4);
        assert_eq!(p.location, Some(Point::new(1.0, 2.0)));
    }
}
