//! A broker tree with subscription covering.
//!
//! The §IV-E vision: pub/sub over an overlay where each peer serves many
//! mobile clients. Brokers form a tree; each broker summarizes its
//! subtree's interests (the union of required terms plus a flag for
//! term-less subscriptions). A publication entering at the root is only
//! forwarded into subtrees whose summary could match — the classic
//! subscription-covering optimization — and we count broker-hop messages
//! against flooding (E15b).

use crate::matcher::{IndexedMatcher, Matcher};
use crate::publication::Publication;
use crate::subscription::Subscription;
use mv_common::hash::FastSet;
use mv_common::metrics::Counters;

/// Node in the broker tree.
#[derive(Debug)]
struct Broker {
    children: Vec<usize>,
    /// Local matcher over subscriptions attached at this broker.
    matcher: IndexedMatcher,
    /// Union of required terms over this broker's subtree.
    subtree_terms: FastSet<String>,
    /// True if any subscription in the subtree has no required term (so
    /// every event could match somewhere below).
    subtree_unfiltered: bool,
}

/// The tree.
#[derive(Debug)]
pub struct BrokerTree {
    brokers: Vec<Broker>,
    parent: Vec<Option<usize>>,
    /// `forwards` (broker-to-broker messages), `deliveries` counters.
    pub stats: Counters,
}

impl BrokerTree {
    /// Build a tree with `depth` levels and `fanout` children per broker
    /// (depth 1 = root only).
    pub fn new(depth: usize, fanout: usize) -> Self {
        assert!(depth >= 1 && fanout >= 1);
        let mut brokers = vec![];
        let mut parent = vec![];
        fn build(
            brokers: &mut Vec<Broker>,
            parent: &mut Vec<Option<usize>>,
            p: Option<usize>,
            depth: usize,
            fanout: usize,
        ) -> usize {
            let id = brokers.len();
            brokers.push(Broker {
                children: Vec::new(),
                matcher: IndexedMatcher::new(),
                subtree_terms: FastSet::default(),
                subtree_unfiltered: false,
            });
            parent.push(p);
            if depth > 1 {
                for _ in 0..fanout {
                    let c = build(brokers, parent, Some(id), depth - 1, fanout);
                    brokers[id].children.push(c);
                }
            }
            id
        }
        build(&mut brokers, &mut parent, None, depth, fanout);
        BrokerTree { brokers, parent, stats: Counters::new() }
    }

    /// Total brokers.
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }

    /// Leaf broker ids (where clients attach).
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.brokers.len()).filter(|&b| self.brokers[b].children.is_empty()).collect()
    }

    /// Attach a subscription at a broker; summaries propagate to the root.
    pub fn subscribe(&mut self, broker: usize, sub: Subscription) {
        let first_term = sub.terms.first().cloned();
        self.brokers[broker].matcher.add(sub);
        // Update summaries up the path.
        let mut at = Some(broker);
        while let Some(b) = at {
            match &first_term {
                Some(t) => {
                    self.brokers[b].subtree_terms.insert(t.clone());
                }
                None => self.brokers[b].subtree_unfiltered = true,
            }
            at = self.parent[b];
        }
    }

    fn subtree_may_match(&self, broker: usize, p: &Publication) -> bool {
        let b = &self.brokers[broker];
        b.subtree_unfiltered || p.terms.iter().any(|t| b.subtree_terms.contains(t))
    }

    /// Publish at the root with covering; returns matched subscription
    /// count across the tree.
    pub fn publish(&mut self, p: &Publication) -> usize {
        self.publish_at(0, p)
    }

    fn publish_at(&mut self, broker: usize, p: &Publication) -> usize {
        let mut delivered = self.brokers[broker].matcher.match_pub(p).len();
        let children = self.brokers[broker].children.clone();
        for c in children {
            if self.subtree_may_match(c, p) {
                self.stats.incr("forwards");
                delivered += self.publish_at(c, p);
            } else {
                self.stats.incr("pruned");
            }
        }
        self.stats.add("deliveries", delivered as u64);
        delivered
    }

    /// Publish by flooding (no covering) — the baseline; counts hops.
    pub fn publish_flood(&mut self, p: &Publication) -> usize {
        let mut delivered = 0usize;
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            delivered += self.brokers[b].matcher.match_pub(p).len();
            for &c in &self.brokers[b].children {
                self.stats.incr("flood_forwards");
                stack.push(c);
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::id::ClientId;
    use mv_common::time::SimTime;

    fn sub(i: u64, term: &str) -> Subscription {
        Subscription::new(ClientId::new(i)).with_term(term)
    }

    #[test]
    fn tree_shape() {
        let t = BrokerTree::new(3, 2);
        assert_eq!(t.broker_count(), 7);
        assert_eq!(t.leaves().len(), 4);
    }

    #[test]
    fn covering_prunes_uninterested_subtrees() {
        let mut t = BrokerTree::new(3, 2);
        let leaves = t.leaves();
        t.subscribe(leaves[0], sub(1, "sale"));
        t.subscribe(leaves[3], sub(2, "game"));
        let p = Publication::new(SimTime::ZERO).term("sale");
        let delivered = t.publish(&p);
        assert_eq!(delivered, 1);
        // Flooding visits all 6 edges; covering should forward fewer.
        let forwards = t.stats.get("forwards");
        assert!(forwards < 6, "forwards {forwards}");
        assert!(t.stats.get("pruned") > 0);
    }

    #[test]
    fn covering_and_flooding_deliver_identically() {
        let mut t = BrokerTree::new(4, 2);
        let leaves = t.leaves();
        for (i, &leaf) in leaves.iter().enumerate() {
            t.subscribe(leaf, sub(i as u64, if i % 2 == 0 { "sale" } else { "game" }));
        }
        for term in ["sale", "game", "other"] {
            let p = Publication::new(SimTime::ZERO).term(term);
            assert_eq!(t.publish(&p), t.publish_flood(&p), "term {term}");
        }
    }

    #[test]
    fn unfiltered_subscription_defeats_pruning_for_its_subtree() {
        let mut t = BrokerTree::new(2, 2);
        let leaves = t.leaves();
        t.subscribe(leaves[0], Subscription::new(ClientId::new(1))); // matches everything
        let p = Publication::new(SimTime::ZERO).term("whatever");
        assert_eq!(t.publish(&p), 1);
    }

    #[test]
    fn subscriptions_at_inner_brokers_work() {
        let mut t = BrokerTree::new(3, 2);
        t.subscribe(0, sub(1, "root"));
        let p = Publication::new(SimTime::ZERO).term("root");
        assert_eq!(t.publish(&p), 1);
    }
}
