#![forbid(unsafe_code)]
//! `mv-pubsub` — content-based and spatio-textual publish/subscribe.
//!
//! §IV-E: *"it seems that publish/subscribe architecture \[28\], \[34\],
//! \[96\], \[41\], \[21\] may be more effective. … we envision a
//! publish/subscribe system over peer-to-peer networks where each peer may
//! be a highly parallel cluster that can support a large number of mobile
//! clients."* References \[41\]/\[21\] are location-aware and top-k-term
//! geo-textual pub/sub.
//!
//! * [`publication`] — events with attributes, terms and an optional
//!   location;
//! * [`subscription`] — attribute predicates + optional spatial region +
//!   optional term set, plus top-k term subscriptions;
//! * [`matcher`] — a linear-scan baseline and an indexed matcher
//!   (inverted term index + spatial grid + attribute catch-all), shown
//!   equivalent by property tests and ~orders faster in E15;
//! * [`broker`] — a broker tree with subscription covering so events only
//!   travel toward interested subtrees (the P2P overlay sketch);
//! * [`reliable`] — a matcher-backed broker delivering over `mv-net`'s
//!   reliable transport, with per-client retention for disconnected
//!   subscribers and client-side `pub_id` dedup ([`reliable::InboxDedup`]).

pub mod broker;
pub mod matcher;
pub mod publication;
pub mod reliable;
pub mod subscription;

pub use broker::BrokerTree;
pub use matcher::{IndexedMatcher, LinearMatcher, Matcher};
pub use reliable::{InboxDedup, PubMsg, ReliableBroker};
pub use publication::Publication;
pub use subscription::{AttrPredicate, CmpOp, Subscription};
