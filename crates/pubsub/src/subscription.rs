//! Subscriptions: attribute predicates, spatial regions, term sets.

use crate::publication::Publication;
use mv_common::geom::Aabb;
use mv_common::id::ClientId;
use serde::{Deserialize, Serialize};

/// Comparison operator for attribute predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `attr < v`
    Lt,
    /// `attr <= v`
    Le,
    /// `attr > v`
    Gt,
    /// `attr >= v`
    Ge,
    /// `|attr − v| < 1e-9`
    Eq,
}

/// One predicate over a named numeric attribute. The attribute must be
/// present for the predicate (and hence the subscription) to match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrPredicate {
    /// Attribute name.
    pub attr: String,
    /// Operator.
    pub op: CmpOp,
    /// Comparison constant.
    pub value: f64,
}

impl AttrPredicate {
    /// Build a predicate.
    pub fn new(attr: impl Into<String>, op: CmpOp, value: f64) -> Self {
        AttrPredicate { attr: attr.into(), op, value }
    }

    /// Evaluate against a publication.
    pub fn eval(&self, p: &Publication) -> bool {
        match p.attrs.get(&self.attr) {
            None => false,
            Some(&v) => match self.op {
                CmpOp::Lt => v < self.value,
                CmpOp::Le => v <= self.value,
                CmpOp::Gt => v > self.value,
                CmpOp::Ge => v >= self.value,
                CmpOp::Eq => (v - self.value).abs() < 1e-9,
            },
        }
    }
}

/// A subscription: all constraints are conjunctive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// Owning client.
    pub client: ClientId,
    /// Attribute predicates (all must hold).
    pub predicates: Vec<AttrPredicate>,
    /// Required terms (every one must appear in the publication).
    pub terms: Vec<String>,
    /// Spatial region the publication's location must fall in.
    pub region: Option<Aabb>,
}

impl Subscription {
    /// An unconstrained subscription (matches everything) for `client`.
    pub fn new(client: ClientId) -> Self {
        Subscription { client, predicates: Vec::new(), terms: Vec::new(), region: None }
    }

    /// Builder: add an attribute predicate.
    pub fn where_attr(mut self, attr: impl Into<String>, op: CmpOp, v: f64) -> Self {
        self.predicates.push(AttrPredicate::new(attr, op, v));
        self
    }

    /// Builder: require a term (lower-cased).
    pub fn with_term(mut self, t: impl AsRef<str>) -> Self {
        self.terms.push(t.as_ref().to_lowercase());
        self
    }

    /// Builder: restrict to a region.
    pub fn in_region(mut self, r: Aabb) -> Self {
        self.region = Some(r);
        self
    }

    /// Full match evaluation.
    pub fn matches(&self, p: &Publication) -> bool {
        if let Some(r) = &self.region {
            match p.location {
                Some(loc) if r.contains(loc) => {}
                _ => return false,
            }
        }
        if !self.terms.iter().all(|t| p.has_term(t)) {
            return false;
        }
        self.predicates.iter().all(|pr| pr.eval(p))
    }

    /// Text relevance in \[0,1\] for top-k term matching (fraction of the
    /// publication's terms this subscription's terms cover; 0 when the
    /// subscription has no terms).
    pub fn term_score(&self, p: &Publication) -> f64 {
        if self.terms.is_empty() || p.terms.is_empty() {
            return 0.0;
        }
        let hits = self.terms.iter().filter(|t| p.has_term(t)).count();
        hits as f64 / self.terms.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::geom::Point;
    use mv_common::time::SimTime;

    fn c(i: u64) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn predicate_ops() {
        let p = Publication::new(SimTime::ZERO).attr("x", 5.0);
        assert!(AttrPredicate::new("x", CmpOp::Lt, 6.0).eval(&p));
        assert!(AttrPredicate::new("x", CmpOp::Le, 5.0).eval(&p));
        assert!(AttrPredicate::new("x", CmpOp::Gt, 4.0).eval(&p));
        assert!(AttrPredicate::new("x", CmpOp::Ge, 5.0).eval(&p));
        assert!(AttrPredicate::new("x", CmpOp::Eq, 5.0).eval(&p));
        assert!(!AttrPredicate::new("x", CmpOp::Lt, 5.0).eval(&p));
        // Missing attribute never matches.
        assert!(!AttrPredicate::new("y", CmpOp::Ge, 0.0).eval(&p));
    }

    #[test]
    fn conjunctive_matching() {
        let sub = Subscription::new(c(1))
            .where_attr("discount", CmpOp::Ge, 0.3)
            .with_term("sale")
            .in_region(Aabb::centered(Point::ORIGIN, 10.0));
        let hit = Publication::new(SimTime::ZERO)
            .attr("discount", 0.4)
            .term("sale")
            .at(Point::new(1.0, 1.0));
        assert!(sub.matches(&hit));
        // Any failed leg kills the match.
        assert!(!sub.matches(&hit.clone().attr("discount", 0.1)));
        let far = Publication::new(SimTime::ZERO)
            .attr("discount", 0.4)
            .term("sale")
            .at(Point::new(100.0, 0.0));
        assert!(!sub.matches(&far));
        let no_loc = Publication::new(SimTime::ZERO).attr("discount", 0.4).term("sale");
        assert!(no_loc.location.is_none());
        assert!(!sub.matches(&no_loc));
    }

    #[test]
    fn unconstrained_matches_everything() {
        let sub = Subscription::new(c(1));
        assert!(sub.matches(&Publication::new(SimTime::ZERO)));
    }

    #[test]
    fn term_score_fraction() {
        let sub = Subscription::new(c(1)).with_term("sale").with_term("pastry");
        let p = Publication::new(SimTime::ZERO).term("sale").term("bread");
        assert_eq!(sub.term_score(&p), 0.5);
        assert_eq!(Subscription::new(c(1)).term_score(&p), 0.0);
    }
}
