//! Adaptive RFID stream cleaning.
//!
//! §IV cites the RFID-cleaning line of work (Gonzalez et al. \[32\],
//! Jeffery et al.'s adaptive middleware \[46\]) among the physical-space
//! problems the metaverse inherits: raw RFID reads are riddled with
//! *missed reads* (a present tag not seen this epoch) and the naive
//! "present iff read" signal flickers. The classic fix is per-tag
//! sliding-window smoothing, and the classic tension is window size:
//! small windows flicker, large windows report departed tags as present.
//!
//! [`AdaptiveCleaner`] implements a SMURF-flavoured resolution: estimate
//! each tag's read rate `p̂` online, size the window so a present tag is
//! missed for a whole window with probability ≤ δ
//! (`W = ln δ / ln(1 − p̂)`), and declare departure early when the reads
//! observed in the current window fall statistically below the binomial
//! expectation (mean − 2σ). E2c measures flicker and departure lag
//! against fixed windows.

use mv_common::hash::FastMap;

/// Per-tag smoothing state.
#[derive(Debug, Clone)]
struct TagState {
    /// Recent read outcomes (true = read), newest last, bounded.
    history: Vec<bool>,
    /// Smoothed read-rate estimate.
    p_hat: f64,
    /// Epoch of the last positive read.
    last_read_epoch: Option<u64>,
}

const HISTORY_CAP: usize = 64;
const P_HAT_ALPHA: f64 = 0.1; // EWMA rate for the read-rate estimate

/// Window policies for comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowPolicy {
    /// Present iff read in the current epoch (the raw signal).
    Raw,
    /// Present iff read within the last `w` epochs.
    Fixed(u64),
    /// SMURF-style: window from the read-rate estimate at miss
    /// probability δ, with binomial early-departure detection.
    Adaptive {
        /// Acceptable probability of a false "departed" for a present tag.
        delta: f64,
    },
}

impl WindowPolicy {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            WindowPolicy::Raw => "raw".into(),
            WindowPolicy::Fixed(w) => format!("fixed({w})"),
            WindowPolicy::Adaptive { delta } => format!("adaptive(δ={delta})"),
        }
    }
}

/// The cleaner: consumes per-epoch read outcomes for tags under a policy
/// and answers presence.
#[derive(Debug)]
pub struct AdaptiveCleaner {
    policy: WindowPolicy,
    tags: FastMap<u64, TagState>,
    epoch: u64,
}

impl AdaptiveCleaner {
    /// Create under a policy.
    pub fn new(policy: WindowPolicy) -> Self {
        if let WindowPolicy::Adaptive { delta } = policy {
            assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        }
        AdaptiveCleaner { policy, tags: FastMap::default(), epoch: 0 }
    }

    /// Advance to the next epoch. Every interrogated tag must be
    /// reported via [`Self::observe`] before presence queries.
    pub fn next_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Report this epoch's outcome for a tag (true = the reader saw it).
    pub fn observe(&mut self, tag: u64, read: bool) {
        let epoch = self.epoch;
        let st = self.tags.entry(tag).or_insert(TagState {
            history: Vec::new(),
            p_hat: 0.5,
            last_read_epoch: None,
        });
        st.history.push(read);
        if st.history.len() > HISTORY_CAP {
            st.history.remove(0);
        }
        if read {
            st.last_read_epoch = Some(epoch);
            st.p_hat = st.p_hat * (1.0 - P_HAT_ALPHA) + P_HAT_ALPHA;
        } else if st.last_read_epoch.is_some_and(|last| epoch - last <= 2) {
            // A miss adjacent to recent reads is sampling noise while the
            // tag is present — evidence about the read *rate*. A long run
            // of misses is evidence of *departure* and must not dilute the
            // rate estimate (otherwise the window inflates and departure
            // detection chases its own tail).
            st.p_hat *= 1.0 - P_HAT_ALPHA;
        }
        st.p_hat = st.p_hat.clamp(0.05, 0.99);
    }

    /// The adaptive window for a tag's current read-rate estimate.
    fn window_for(p_hat: f64, delta: f64) -> u64 {
        // Smallest W with (1 - p̂)^W ≤ δ.
        let w = (delta.ln() / (1.0 - p_hat).ln()).ceil();
        (w as u64).clamp(1, HISTORY_CAP as u64)
    }

    /// Is the tag present, under the configured policy?
    pub fn is_present(&self, tag: u64) -> bool {
        let Some(st) = self.tags.get(&tag) else {
            return false;
        };
        match self.policy {
            WindowPolicy::Raw => *st.history.last().unwrap_or(&false),
            WindowPolicy::Fixed(w) => {
                st.last_read_epoch
                    .is_some_and(|last| self.epoch - last < w)
            }
            WindowPolicy::Adaptive { delta } => {
                let w = Self::window_for(st.p_hat, delta) as usize;
                let seen: Vec<bool> =
                    st.history.iter().rev().take(w).copied().collect();
                if seen.is_empty() {
                    return false;
                }
                let reads = seen.iter().filter(|&&r| r).count() as f64;
                if reads == 0.0 {
                    return false; // a full window of silence
                }
                // Early departure: reads far below binomial expectation
                // over the window → the tag likely left mid-window.
                let n = seen.len() as f64;
                let mean = n * st.p_hat;
                let sd = (n * st.p_hat * (1.0 - st.p_hat)).sqrt();
                reads >= (mean - 2.0 * sd).max(1.0).min(mean)
            }
        }
    }

    /// The effective window currently used for a tag (diagnostics; 1 for
    /// raw, the configured value for fixed).
    pub fn effective_window(&self, tag: u64) -> u64 {
        match self.policy {
            WindowPolicy::Raw => 1,
            WindowPolicy::Fixed(w) => w,
            WindowPolicy::Adaptive { delta } => self
                .tags
                .get(&tag)
                .map_or(1, |st| Self::window_for(st.p_hat, delta)),
        }
    }
}

/// Simulate a tag with presence ground truth and score a policy.
/// Returns `(flicker_false_absent, departure_lag_epochs)`.
pub fn score_policy(
    policy: WindowPolicy,
    read_rate: f64,
    present_epochs: u64,
    absent_epochs: u64,
    seed: u64,
) -> (u64, u64) {
    use rand::Rng;
    let mut rng = mv_common::seeded_rng(seed);
    let mut cleaner = AdaptiveCleaner::new(policy);
    let mut flicker = 0u64;
    // Present phase: count "absent" verdicts after a warm-up window.
    let warmup = 8u64;
    for e in 0..present_epochs {
        cleaner.next_epoch();
        cleaner.observe(7, rng.gen_bool(read_rate));
        if e >= warmup && !cleaner.is_present(7) {
            flicker += 1;
        }
    }
    // Absent phase: count epochs until the cleaner notices.
    let mut lag = absent_epochs;
    for e in 0..absent_epochs {
        cleaner.next_epoch();
        cleaner.observe(7, false);
        if !cleaner.is_present(7) {
            lag = e;
            break;
        }
    }
    (flicker, lag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_signal_flickers_badly_at_low_read_rates() {
        let (raw_flicker, _) = score_policy(WindowPolicy::Raw, 0.6, 200, 20, 1);
        let (adaptive_flicker, _) =
            score_policy(WindowPolicy::Adaptive { delta: 0.05 }, 0.6, 200, 20, 1);
        assert!(raw_flicker > 30, "raw should flicker, got {raw_flicker}");
        assert!(
            adaptive_flicker * 10 < raw_flicker.max(1),
            "adaptive {adaptive_flicker} vs raw {raw_flicker}"
        );
    }

    #[test]
    fn large_fixed_window_lags_on_departure() {
        let (_, lag_fixed) = score_policy(WindowPolicy::Fixed(32), 0.6, 100, 40, 2);
        let (_, lag_adaptive) =
            score_policy(WindowPolicy::Adaptive { delta: 0.05 }, 0.6, 100, 40, 2);
        assert!(lag_adaptive < lag_fixed, "adaptive {lag_adaptive} vs fixed {lag_fixed}");
    }

    #[test]
    fn adaptive_window_tracks_read_rate() {
        let mut good = AdaptiveCleaner::new(WindowPolicy::Adaptive { delta: 0.05 });
        let mut bad = AdaptiveCleaner::new(WindowPolicy::Adaptive { delta: 0.05 });
        for i in 0..60 {
            good.next_epoch();
            good.observe(1, true); // strong reader: seen every epoch
            bad.next_epoch();
            bad.observe(1, i % 4 == 0); // weak reader: ~25% read rate
        }
        assert!(good.effective_window(1) <= 3, "reliable tag needs a tiny window");
        assert!(
            bad.effective_window(1) >= 8,
            "weak tag needs a long window, got {}",
            bad.effective_window(1)
        );
    }

    #[test]
    fn unknown_tags_are_absent() {
        let cleaner = AdaptiveCleaner::new(WindowPolicy::Raw);
        assert!(!cleaner.is_present(99));
    }

    #[test]
    fn window_formula_monotonicity() {
        // Higher read rate → smaller window; tighter delta → larger.
        let w = |p, d| AdaptiveCleaner::window_for(p, d);
        assert!(w(0.9, 0.05) < w(0.3, 0.05));
        assert!(w(0.5, 0.01) > w(0.5, 0.2));
        assert!(w(0.99, 0.05) >= 1);
    }

    #[test]
    fn fixed_window_semantics() {
        let mut c = AdaptiveCleaner::new(WindowPolicy::Fixed(3));
        c.next_epoch();
        c.observe(1, true);
        assert!(c.is_present(1));
        for _ in 0..2 {
            c.next_epoch();
            c.observe(1, false);
        }
        assert!(c.is_present(1), "still within the 3-epoch window");
        c.next_epoch();
        c.observe(1, false);
        assert!(!c.is_present(1), "window expired");
    }
}
