//! Rule-based event detection over fused state.
//!
//! §IV-A: metaverse data management "detects events that had taken place
//! based on these data sources and depicts these events accurately and
//! efficiently in the metaverse". Rules are predicates over an entity's
//! fused belief history; firing produces a [`DetectedEvent`] that the
//! co-space engine materializes in the other space.

use crate::evidence::FusedBelief;
use mv_common::hash::FastMap;
use mv_common::time::{SimDuration, SimTime};

/// A detected event, ready for materialization in the co-space.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedEvent {
    /// Rule that fired.
    pub rule: &'static str,
    /// Entity the event concerns.
    pub entity: usize,
    /// When it was detected.
    pub ts: SimTime,
    /// Hypothesis involved (e.g. the new shelf), if meaningful.
    pub hypothesis: Option<u64>,
}

/// Predicate signature: `(previous belief, current belief) → fire?`.
pub type RulePredicate = Box<dyn Fn(Option<&FusedBelief>, &FusedBelief) -> bool + Send>;

/// A detection rule: inspects the previous and current fused belief.
pub struct Rule {
    /// Rule name (appears in events).
    pub name: &'static str,
    /// The firing predicate.
    pub pred: RulePredicate,
}

impl Rule {
    /// Build a rule.
    pub fn new(
        name: &'static str,
        pred: impl Fn(Option<&FusedBelief>, &FusedBelief) -> bool + Send + 'static,
    ) -> Self {
        Rule { name, pred: Box::new(pred) }
    }

    /// Built-in: entity's winning hypothesis changed with confident margin.
    pub fn state_changed(min_margin: f64) -> Self {
        Rule::new("state_changed", move |prev, cur| {
            matches!(prev, Some(p) if p.hypothesis != cur.hypothesis && cur.margin >= min_margin)
        })
    }

    /// Built-in: first confident sighting of an entity.
    pub fn first_sighting() -> Self {
        Rule::new("first_sighting", |prev, _| prev.is_none())
    }

    /// Built-in: belief became contested (margin below a floor).
    pub fn contested(max_margin: f64) -> Self {
        Rule::new("contested", move |_, cur| cur.margin < max_margin)
    }
}

/// The detector: feeds fused beliefs through rules, tracking per-entity
/// previous state, and also raises `missing` events for entities not
/// re-observed within a timeout.
pub struct EventDetector {
    rules: Vec<Rule>,
    missing_after: Option<SimDuration>,
    last_seen: FastMap<usize, (FusedBelief, SimTime)>,
    missing_raised: FastMap<usize, bool>,
}

impl EventDetector {
    /// A detector with the given rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        EventDetector {
            rules,
            missing_after: None,
            last_seen: FastMap::default(),
            missing_raised: FastMap::default(),
        }
    }

    /// Builder: raise a `missing` event when an entity is silent this long.
    pub fn with_missing_timeout(mut self, timeout: SimDuration) -> Self {
        self.missing_after = Some(timeout);
        self
    }

    /// Feed the current fused belief of an entity; returns fired events.
    pub fn observe(&mut self, entity: usize, belief: FusedBelief, now: SimTime) -> Vec<DetectedEvent> {
        let prev = self.last_seen.get(&entity).map(|(b, _)| *b);
        let mut fired = Vec::new();
        for rule in &self.rules {
            if (rule.pred)(prev.as_ref(), &belief) {
                fired.push(DetectedEvent {
                    rule: rule.name,
                    entity,
                    ts: now,
                    hypothesis: Some(belief.hypothesis),
                });
            }
        }
        self.last_seen.insert(entity, (belief, now));
        self.missing_raised.insert(entity, false);
        fired
    }

    /// Sweep for entities that have gone silent (call periodically).
    pub fn sweep_missing(&mut self, now: SimTime) -> Vec<DetectedEvent> {
        let Some(timeout) = self.missing_after else {
            return Vec::new();
        };
        let mut last: Vec<(usize, SimTime)> =
            self.last_seen.iter().map(|(&e, &(_, seen))| (e, seen)).collect();
        last.sort_unstable_by_key(|&(e, _)| e);
        let mut fired = Vec::new();
        for (entity, seen) in last {
            let already = self.missing_raised.get(&entity).copied().unwrap_or(false);
            if !already && now.since(seen) > timeout {
                fired.push(DetectedEvent { rule: "missing", entity, ts: now, hypothesis: None });
                self.missing_raised.insert(entity, true);
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn belief(hyp: u64, margin: f64) -> FusedBelief {
        FusedBelief { hypothesis: hyp, log_odds: 2.0, margin, support: 3 }
    }

    #[test]
    fn first_sighting_then_state_change() {
        let mut det =
            EventDetector::new(vec![Rule::first_sighting(), Rule::state_changed(0.5)]);
        let ev = det.observe(1, belief(10, 5.0), SimTime::from_millis(1));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].rule, "first_sighting");
        // Same hypothesis: nothing fires.
        assert!(det.observe(1, belief(10, 5.0), SimTime::from_millis(2)).is_empty());
        // Changed hypothesis with margin: fires.
        let ev = det.observe(1, belief(11, 5.0), SimTime::from_millis(3));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].rule, "state_changed");
        assert_eq!(ev[0].hypothesis, Some(11));
    }

    #[test]
    fn low_margin_change_does_not_fire_state_change() {
        let mut det = EventDetector::new(vec![Rule::state_changed(1.0)]);
        det.observe(1, belief(10, 5.0), SimTime::from_millis(1));
        let ev = det.observe(1, belief(11, 0.2), SimTime::from_millis(2));
        assert!(ev.is_empty());
    }

    #[test]
    fn contested_rule_fires_on_thin_margin() {
        let mut det = EventDetector::new(vec![Rule::contested(0.5)]);
        let ev = det.observe(1, belief(10, 0.1), SimTime::from_millis(1));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].rule, "contested");
        assert!(det.observe(1, belief(10, 3.0), SimTime::from_millis(2)).is_empty());
    }

    #[test]
    fn missing_sweep_fires_once_until_reobserved() {
        let mut det = EventDetector::new(vec![])
            .with_missing_timeout(SimDuration::from_millis(10));
        det.observe(1, belief(10, 5.0), SimTime::from_millis(0));
        det.observe(2, belief(20, 5.0), SimTime::from_millis(18));
        let ev = det.sweep_missing(SimTime::from_millis(20));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].entity, 1);
        // Second sweep: no duplicate.
        assert!(det.sweep_missing(SimTime::from_millis(25)).is_empty());
        // Re-observation re-arms the rule.
        det.observe(1, belief(10, 5.0), SimTime::from_millis(30));
        let ev = det.sweep_missing(SimTime::from_millis(45));
        assert_eq!(ev.len(), 2); // both 1 (re-armed) and 2 (first timeout)
    }

    #[test]
    fn custom_rule_closure() {
        let mut det = EventDetector::new(vec![Rule::new("strong", |_, cur| cur.log_odds > 1.0)]);
        let ev = det.observe(1, belief(1, 9.0), SimTime::ZERO);
        assert_eq!(ev[0].rule, "strong");
    }
}
