//! Evidence combination: Bayesian fusion of conflicting observations.
//!
//! Each source observes a discrete hypothesis for an entity (e.g. "book B
//! is on shelf 3"). Sources are weighted by reliability `p`: an
//! observation contributes `ln(p / (1-p))` log-odds to its hypothesis
//! (the standard independent-evidence update). The fused belief is the
//! hypothesis with the greatest accumulated log-odds; the margin over the
//! runner-up is exposed as a confidence signal for the event layer.
//!
//! This is precisely the step §IV-A distinguishes from "relatively simple
//! aggregation … over data streams": two RFID ghost reads can be outvoted
//! by one reliable camera sighting *because* the combination is weighted
//! inference, not counting.

use mv_common::hash::FastMap;
use mv_common::time::SimTime;

/// One observation: `source` claims `entity` is in state `hypothesis`.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Resolved entity index (from `EntityResolver`).
    pub entity: usize,
    /// The claimed discrete state (shelf id, zone id, status code…).
    pub hypothesis: u64,
    /// Source reliability in (0.5, 1): probability the claim is correct.
    pub reliability: f64,
    /// Observation time (newer evidence can be weighted via decay).
    pub ts: SimTime,
}

/// The fused belief for one entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedBelief {
    /// Winning hypothesis.
    pub hypothesis: u64,
    /// Its accumulated log-odds.
    pub log_odds: f64,
    /// Margin over the runner-up hypothesis (∞ when unopposed).
    pub margin: f64,
    /// Number of observations fused.
    pub support: usize,
}

/// Accumulates observations per (entity, hypothesis) and answers fused
/// beliefs. Optionally applies exponential time decay so stale evidence
/// fades — the dynamic-scene requirement of §IV-F.
#[derive(Debug)]
pub struct EvidencePool {
    /// Half-life of evidence in microseconds (None = no decay).
    half_life_us: Option<f64>,
    /// (entity) → hypothesis → (log-odds, latest ts, count).
    beliefs: FastMap<usize, FastMap<u64, (f64, SimTime, usize)>>,
}

impl EvidencePool {
    /// A pool without time decay.
    pub fn new() -> Self {
        EvidencePool { half_life_us: None, beliefs: FastMap::default() }
    }

    /// A pool whose evidence halves in weight every `half_life_us`.
    pub fn with_half_life_us(half_life_us: f64) -> Self {
        assert!(half_life_us > 0.0);
        EvidencePool { half_life_us: Some(half_life_us), beliefs: FastMap::default() }
    }

    /// Ingest one observation.
    ///
    /// # Panics
    /// Panics if reliability is outside `(0.5, 1.0)` — an observation at
    /// or below coin-flip reliability carries no positive evidence and
    /// indicates a configuration bug.
    pub fn observe(&mut self, obs: &Observation) {
        assert!(
            obs.reliability > 0.5 && obs.reliability < 1.0,
            "reliability must be in (0.5, 1), got {}",
            obs.reliability
        );
        let delta = (obs.reliability / (1.0 - obs.reliability)).ln();
        let per_entity = self.beliefs.entry(obs.entity).or_default();
        let slot = per_entity.entry(obs.hypothesis).or_insert((0.0, obs.ts, 0));
        // Decay the existing mass to the new observation's time.
        if let Some(hl) = self.half_life_us {
            let dt = obs.ts.since(slot.1).as_micros() as f64;
            slot.0 *= 0.5f64.powf(dt / hl);
        }
        slot.0 += delta;
        slot.1 = slot.1.max(obs.ts);
        slot.2 += 1;
    }

    /// The fused belief for an entity as of `now` (decay applied), if any
    /// evidence exists.
    pub fn belief(&self, entity: usize, now: SimTime) -> Option<FusedBelief> {
        let per_entity = self.beliefs.get(&entity)?;
        let mut scored: Vec<(u64, f64, usize)> = per_entity
            .iter()
            .map(|(&h, &(lo, ts, n))| {
                let lo = match self.half_life_us {
                    Some(hl) => lo * 0.5f64.powf(now.since(ts).as_micros() as f64 / hl),
                    None => lo,
                };
                (h, lo, n)
            })
            .collect();
        // Deterministic: by log-odds desc, then hypothesis asc.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let (hyp, lo, n) = scored[0];
        let margin = if scored.len() > 1 { lo - scored[1].1 } else { f64::INFINITY };
        Some(FusedBelief {
            hypothesis: hyp,
            log_odds: lo,
            margin,
            support: per_entity.values().map(|v| v.2).sum::<usize>().max(n),
        })
    }

    /// Entities with any evidence.
    pub fn entities(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.beliefs.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl Default for EvidencePool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(entity: usize, hyp: u64, rel: f64, ms: u64) -> Observation {
        Observation { entity, hypothesis: hyp, reliability: rel, ts: SimTime::from_millis(ms) }
    }

    #[test]
    fn single_observation_wins() {
        let mut pool = EvidencePool::new();
        pool.observe(&obs(0, 7, 0.8, 1));
        let b = pool.belief(0, SimTime::from_millis(1)).unwrap();
        assert_eq!(b.hypothesis, 7);
        assert_eq!(b.margin, f64::INFINITY);
        assert_eq!(b.support, 1);
    }

    #[test]
    fn reliable_source_outvotes_two_weak_ones() {
        // Two RFID ghost reads (0.6) for shelf 9 vs one camera (0.9) for
        // shelf 3: ln(0.9/0.1)=2.20 > 2×ln(0.6/0.4)=0.81.
        let mut pool = EvidencePool::new();
        pool.observe(&obs(0, 9, 0.6, 1));
        pool.observe(&obs(0, 9, 0.6, 2));
        pool.observe(&obs(0, 3, 0.9, 3));
        let b = pool.belief(0, SimTime::from_millis(3)).unwrap();
        assert_eq!(b.hypothesis, 3);
        assert!(b.margin > 0.0);
    }

    #[test]
    fn counting_would_have_gotten_it_wrong() {
        // The explicit §IV-A contrast: majority vote (aggregation) picks 9,
        // weighted inference picks 3.
        let votes = [(9u64, 0.6), (9, 0.6), (3, 0.9)];
        let mut counts: std::collections::BTreeMap<u64, usize> = Default::default();
        for (h, _) in votes {
            *counts.entry(h).or_default() += 1;
        }
        let majority = *counts.iter().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(majority, 9);
        // (the weighted answer is asserted in the previous test)
    }

    #[test]
    fn decay_lets_fresh_evidence_overturn_stale() {
        let mut pool = EvidencePool::with_half_life_us(1_000.0); // 1 ms half-life
        // Strong but old claim for shelf 1.
        pool.observe(&obs(0, 1, 0.95, 0));
        pool.observe(&obs(0, 1, 0.95, 0));
        // Weak but fresh claim for shelf 2, 20 ms later (evidence for 1
        // decayed by 2^-20).
        pool.observe(&obs(0, 2, 0.6, 20));
        let b = pool.belief(0, SimTime::from_millis(20)).unwrap();
        assert_eq!(b.hypothesis, 2);
    }

    #[test]
    fn without_decay_stale_strength_persists() {
        let mut pool = EvidencePool::new();
        pool.observe(&obs(0, 1, 0.95, 0));
        pool.observe(&obs(0, 1, 0.95, 0));
        pool.observe(&obs(0, 2, 0.6, 20));
        let b = pool.belief(0, SimTime::from_millis(20)).unwrap();
        assert_eq!(b.hypothesis, 1);
    }

    #[test]
    fn entities_listing_and_missing_belief() {
        let mut pool = EvidencePool::new();
        pool.observe(&obs(3, 1, 0.8, 0));
        pool.observe(&obs(1, 1, 0.8, 0));
        assert_eq!(pool.entities(), vec![1, 3]);
        assert!(pool.belief(2, SimTime::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "reliability")]
    fn coin_flip_reliability_rejected() {
        let mut pool = EvidencePool::new();
        pool.observe(&obs(0, 1, 0.5, 0));
    }
}
