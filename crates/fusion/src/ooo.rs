//! A bounded reorder buffer for late and out-of-order records.
//!
//! Sensor and network paths deliver records out of order; downstream
//! operators (windows, evidence pools) want event-time order. The buffer
//! holds records for up to `slack` of event time behind the high-water
//! mark and releases them sorted; records arriving later than the slack
//! are counted as dropped (the §IV-C "tolerate some degree of
//! discrepancy" stance — late data is sacrificed, not blocked on).

use crate::record::Record;
use mv_common::time::{SimDuration, SimTime};
use std::collections::BinaryHeap;

struct HeapRec(Record, u64);

impl PartialEq for HeapRec {
    fn eq(&self, other: &Self) -> bool {
        self.0.ts == other.0.ts && self.1 == other.1
    }
}
impl Eq for HeapRec {}
impl PartialOrd for HeapRec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapRec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (ts, seq).
        (other.0.ts, other.1).cmp(&(self.0.ts, self.1))
    }
}

/// The reorder buffer.
pub struct ReorderBuffer {
    slack: SimDuration,
    heap: BinaryHeap<HeapRec>,
    watermark: SimTime,
    seq: u64,
    /// Records dropped for arriving beyond the slack.
    pub late_drops: u64,
}

impl ReorderBuffer {
    /// Create a buffer tolerating `slack` of event-time disorder.
    pub fn new(slack: SimDuration) -> Self {
        ReorderBuffer {
            slack,
            heap: BinaryHeap::new(),
            watermark: SimTime::ZERO,
            seq: 0,
            late_drops: 0,
        }
    }

    /// Offer a record; returns records now safe to release, in event-time
    /// order.
    pub fn offer(&mut self, rec: Record) -> Vec<Record> {
        if rec.ts + self.slack < self.watermark {
            self.late_drops += 1;
            return Vec::new();
        }
        self.watermark = self.watermark.max(rec.ts);
        self.heap.push(HeapRec(rec, self.seq));
        self.seq += 1;
        self.release()
    }

    fn release(&mut self) -> Vec<Record> {
        let mut out = Vec::new();
        while self
            .heap
            .peek()
            .is_some_and(|top| top.0.ts + self.slack <= self.watermark)
        {
            if let Some(HeapRec(rec, _)) = self.heap.pop() {
                out.push(rec);
            }
        }
        out
    }

    /// Drain everything still buffered, in order (end of stream).
    pub fn drain(&mut self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(HeapRec(rec, _)) = self.heap.pop() {
            out.push(rec);
        }
        out
    }

    /// Records currently buffered.
    pub fn buffered(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SourceId, SourceKind};
    use proptest::prelude::*;

    fn rec(ms: u64) -> Record {
        Record::new(SourceId::new(0), SourceKind::Sensor, SimTime::from_millis(ms), "x")
    }

    #[test]
    fn releases_in_event_time_order() {
        let mut buf = ReorderBuffer::new(SimDuration::from_millis(10));
        assert!(buf.offer(rec(5)).is_empty());
        assert!(buf.offer(rec(3)).is_empty());
        // Watermark jumps to 20: records ≤ 10 are safe.
        let out = buf.offer(rec(20));
        assert_eq!(out.iter().map(|r| r.ts.as_micros() / 1000).collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(buf.buffered(), 1);
        let rest = buf.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].ts, SimTime::from_millis(20));
    }

    #[test]
    fn too_late_records_are_dropped() {
        let mut buf = ReorderBuffer::new(SimDuration::from_millis(10));
        buf.offer(rec(100));
        let out = buf.offer(rec(50)); // 50 + 10 < 100 → dropped
        assert!(out.is_empty());
        assert_eq!(buf.late_drops, 1);
        // Within slack: kept.
        buf.offer(rec(95));
        assert_eq!(buf.late_drops, 1);
        assert_eq!(buf.buffered(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_released_stream_is_sorted_and_loses_only_late_records(
            arrivals in proptest::collection::vec(0u64..200, 1..80),
            slack in 0u64..50,
        ) {
            let mut buf = ReorderBuffer::new(SimDuration::from_millis(slack));
            let mut released = Vec::new();
            for &ms in &arrivals {
                released.extend(buf.offer(rec(ms)));
            }
            released.extend(buf.drain());
            // Output is event-time sorted.
            prop_assert!(released.windows(2).all(|w| w[0].ts <= w[1].ts));
            // Conservation: released + dropped == offered.
            prop_assert_eq!(
                released.len() as u64 + buf.late_drops,
                arrivals.len() as u64
            );
            // Only records genuinely later than the slack were dropped.
            let mut watermark = 0u64;
            let mut expected_drops = 0u64;
            for &ms in &arrivals {
                if ms + slack < watermark {
                    expected_drops += 1;
                } else {
                    watermark = watermark.max(ms);
                }
            }
            prop_assert_eq!(buf.late_drops, expected_drops);
        }
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        let mut buf = ReorderBuffer::new(SimDuration::from_millis(0));
        let mut a = rec(5);
        a.mention = "first".into();
        let mut b = rec(5);
        b.mention = "second".into();
        let mut out = buf.offer(a);
        out.extend(buf.offer(b));
        // slack 0: each releases immediately, preserving arrival order.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].mention, "first");
        assert_eq!(out[1].mention, "second");
    }
}
