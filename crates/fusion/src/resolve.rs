//! Entity resolution: clustering mentions from heterogeneous sources.
//!
//! Different sources name the same entity differently ("Dune", "DUNE
//! (Herbert)", "dune herbert"). The resolver normalizes mentions, blocks
//! candidates on cheap keys (first normalized token), scores pairs with
//! trigram Jaccard similarity, and unions matches — the standard
//! blocking/matching/clustering pipeline, kept deterministic.

use mv_common::hash::FastMap;

/// A cluster of co-referent mentions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedEntity {
    /// Canonical mention (the longest member, ties lexicographic).
    pub canonical: String,
    /// All member mentions, sorted.
    pub mentions: Vec<String>,
}

/// Normalize a mention: lowercase, keep alphanumerics, collapse spaces.
pub fn normalize(mention: &str) -> String {
    let mut out = String::with_capacity(mention.len());
    let mut last_space = true;
    for c in mention.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Character-trigram overlap coefficient over normalized strings
/// (`|A∩B| / min(|A|,|B|)`): containment-friendly, so "dune" matches
/// "dune herbert" at 1.0 where plain Jaccard would score it 0.2.
pub fn trigram_jaccard(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> std::collections::BTreeSet<[char; 3]> {
        let cs: Vec<char> = s.chars().collect();
        if cs.len() < 3 {
            // Short strings: use their chars padded, so "ab" vs "ab" = 1.
            let mut padded = cs.clone();
            while padded.len() < 3 {
                padded.push('\0');
            }
            return std::iter::once([padded[0], padded[1], padded[2]]).collect();
        }
        cs.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
    };
    let (ga, gb) = (grams(a), grams(b));
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    let denom = ga.len().min(gb.len()) as f64;
    if denom == 0.0 {
        return 0.0;
    }
    inter / denom
}

/// Union-find over mention indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n).collect() }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// The resolver: collects mentions, then clusters them.
#[derive(Debug, Default)]
pub struct EntityResolver {
    /// Similarity threshold above which two mentions match.
    threshold: f64,
    mentions: Vec<String>,
    seen: FastMap<String, usize>,
}

impl EntityResolver {
    /// A resolver with the default threshold (0.4 — tuned on the library
    /// scenario; see E2).
    pub fn new() -> Self {
        EntityResolver { threshold: 0.4, mentions: Vec::new(), seen: FastMap::default() }
    }

    /// A resolver with an explicit match threshold in `(0, 1]`.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(threshold > 0.0 && threshold <= 1.0);
        EntityResolver { threshold, ..Self::new() }
    }

    /// Add one mention; returns its internal index (duplicates share one).
    pub fn add_mention(&mut self, mention: &str) -> usize {
        if let Some(&i) = self.seen.get(mention) {
            return i;
        }
        let i = self.mentions.len();
        self.mentions.push(mention.to_string());
        self.seen.insert(mention.to_string(), i);
        i
    }

    /// Number of distinct raw mentions so far.
    pub fn mention_count(&self) -> usize {
        self.mentions.len()
    }

    /// Cluster all mentions. Returns entities sorted by canonical name,
    /// plus a map from mention index → entity index.
    pub fn resolve(&self) -> (Vec<ResolvedEntity>, Vec<usize>) {
        let n = self.mentions.len();
        let normalized: Vec<String> = self.mentions.iter().map(|m| normalize(m)).collect();
        // Blocking: first normalized token → candidate indices. Also block
        // on the full normalized string to catch reordered tokens cheaply.
        let mut blocks: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
        for (i, norm) in normalized.iter().enumerate() {
            let first = norm.split(' ').next().unwrap_or("");
            blocks.entry(first).or_default().push(i);
        }
        let mut dsu = Dsu::new(n);
        for ids in blocks.values() {
            for (ai, &a) in ids.iter().enumerate() {
                for &b in ids.iter().skip(ai + 1) {
                    if normalized[a] == normalized[b]
                        || trigram_jaccard(&normalized[a], &normalized[b]) >= self.threshold
                    {
                        dsu.union(a, b);
                    }
                }
            }
        }
        let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            let r = dsu.find(i);
            clusters.entry(r).or_default().push(i);
        }
        let mut entities: Vec<ResolvedEntity> = clusters
            .values()
            .map(|members| {
                let mut mentions: Vec<String> =
                    members.iter().map(|&i| self.mentions[i].clone()).collect();
                mentions.sort();
                let canonical = mentions
                    .iter()
                    .max_by_key(|m| (m.len(), std::cmp::Reverse(m.as_str().to_string())))
                    .expect("nonempty cluster")
                    .clone();
                ResolvedEntity { canonical, mentions }
            })
            .collect();
        entities.sort_by(|a, b| a.canonical.cmp(&b.canonical));
        // Rebuild mention index → entity index.
        let mut lookup: FastMap<&str, usize> = FastMap::default();
        for (ei, ent) in entities.iter().enumerate() {
            for m in &ent.mentions {
                lookup.insert(m.as_str(), ei);
            }
        }
        let assignment: Vec<usize> =
            self.mentions.iter().map(|m| lookup[m.as_str()]).collect();
        (entities, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalize_strips_punctuation_and_case() {
        assert_eq!(normalize("DUNE (Herbert)"), "dune herbert");
        assert_eq!(normalize("  a--b  "), "a b");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn trigram_similarity_behaviour() {
        assert_eq!(trigram_jaccard("dune", "dune"), 1.0);
        assert_eq!(trigram_jaccard("dune herbert", "dune"), 1.0); // containment
        assert!(trigram_jaccard("dune", "neuromancer") < 0.1);
        assert_eq!(trigram_jaccard("ab", "ab"), 1.0);
    }

    #[test]
    fn clusters_variant_spellings() {
        let mut r = EntityResolver::new();
        r.add_mention("Dune");
        r.add_mention("DUNE (Herbert)");
        r.add_mention("dune herbert");
        r.add_mention("Neuromancer");
        r.add_mention("neuromancer gibson");
        let (entities, assignment) = r.resolve();
        assert_eq!(entities.len(), 2, "{entities:?}");
        // All dune mentions share an entity; all neuromancer mentions too.
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[1], assignment[2]);
        assert_eq!(assignment[3], assignment[4]);
        assert_ne!(assignment[0], assignment[3]);
    }

    #[test]
    fn duplicates_share_an_index() {
        let mut r = EntityResolver::new();
        let a = r.add_mention("X");
        let b = r.add_mention("X");
        assert_eq!(a, b);
        assert_eq!(r.mention_count(), 1);
    }

    #[test]
    fn canonical_is_longest_mention() {
        let mut r = EntityResolver::new();
        r.add_mention("dune");
        r.add_mention("dune herbert 1965");
        let (entities, _) = r.resolve();
        assert_eq!(entities.len(), 1);
        assert_eq!(entities[0].canonical, "dune herbert 1965");
    }

    proptest! {
        #[test]
        fn prop_resolution_is_total_and_consistent(
            mentions in proptest::collection::vec("[a-c]{1,6}( [a-c]{1,6})?", 1..20)
        ) {
            let mut r = EntityResolver::new();
            for m in &mentions {
                r.add_mention(m);
            }
            let (entities, assignment) = r.resolve();
            // Every distinct mention is assigned to exactly one entity.
            prop_assert_eq!(assignment.len(), r.mention_count());
            for &e in &assignment {
                prop_assert!(e < entities.len());
            }
            // Entities partition the mention set.
            let total: usize = entities.iter().map(|e| e.mentions.len()).sum();
            prop_assert_eq!(total, r.mention_count());
        }

        #[test]
        fn prop_jaccard_symmetric_and_bounded(a in "[a-z ]{0,12}", b in "[a-z ]{0,12}") {
            let s1 = trigram_jaccard(&a, &b);
            let s2 = trigram_jaccard(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&s1));
        }
    }
}
