//! Heterogeneous record model.
//!
//! §III: metaverse data "may come in different formats (non-structured
//! like video and textual and structured like personal data) … from
//! multiple different data sources". Records here are schema-less field
//! maps with typed values; a [`SourceKind`] says what produced them, and a
//! per-source reliability drives the evidence combination downstream.

use mv_common::geom::Point;
use mv_common::time::SimTime;
use mv_common::Space;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

mv_common::define_id!(
    /// A registered data source (one RFID reader, one camera, one
    /// relational feed…).
    SourceId
);

/// What kind of system produced a record — drives default reliability and
/// which fields are expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// Rows from a relational database (catalog data; near-perfect).
    Relational,
    /// Scalar sensor samples (temperature, occupancy…).
    Sensor,
    /// RFID tag reads (subject to misses and ghost reads).
    Rfid,
    /// Camera/vision detections (subject to misclassification).
    Camera,
    /// Free-text social/web mentions (noisy, but broad coverage).
    SocialText,
    /// Annotations extracted from video streams.
    VideoAnnotation,
}

impl SourceKind {
    /// A defensible default reliability (probability an observation is
    /// correct) per source class; callers override per deployment.
    pub fn default_reliability(self) -> f64 {
        match self {
            SourceKind::Relational => 0.99,
            SourceKind::Sensor => 0.95,
            SourceKind::Rfid => 0.80,
            SourceKind::Camera => 0.75,
            SourceKind::SocialText => 0.60,
            SourceKind::VideoAnnotation => 0.70,
        }
    }
}

/// A typed field value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text (mention strings, review bodies…).
    Text(String),
    /// Boolean flag.
    Bool(bool),
    /// A planar location.
    Location(Point),
}

impl Value {
    /// Text payload, if textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Location payload, if locational.
    pub fn as_location(&self) -> Option<Point> {
        match self {
            Value::Location(p) => Some(*p),
            _ => None,
        }
    }

    /// Float payload (Int widens).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

/// A schema-less record from one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Producing source.
    pub source: SourceId,
    /// Source class.
    pub kind: SourceKind,
    /// Event time.
    pub ts: SimTime,
    /// Which space the record describes.
    pub space: Space,
    /// The (possibly noisy) name under which the record mentions an
    /// entity — entity resolution clusters these.
    pub mention: String,
    /// Remaining payload fields.
    pub fields: BTreeMap<String, Value>,
}

impl Record {
    /// Start building a record.
    pub fn new(source: SourceId, kind: SourceKind, ts: SimTime, mention: impl Into<String>) -> Self {
        Record {
            source,
            kind,
            ts,
            space: Space::Physical,
            mention: mention.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Builder: tag the space.
    pub fn in_space(mut self, space: Space) -> Self {
        self.space = space;
        self
    }

    /// Builder: add a field.
    pub fn with_field(mut self, name: impl Into<String>, v: Value) -> Self {
        self.fields.insert(name.into(), v);
        self
    }

    /// Shorthand: the record's `location` field.
    pub fn location(&self) -> Option<Point> {
        self.fields.get("location").and_then(Value::as_location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let r = Record::new(SourceId::new(1), SourceKind::Rfid, SimTime::from_millis(5), "Dune")
            .in_space(Space::Physical)
            .with_field("location", Value::Location(Point::new(1.0, 2.0)))
            .with_field("rssi", Value::Float(-55.0));
        assert_eq!(r.mention, "Dune");
        assert_eq!(r.location(), Some(Point::new(1.0, 2.0)));
        assert_eq!(r.fields["rssi"].as_f64(), Some(-55.0));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Bool(true).as_f64(), None);
        assert_eq!(Value::Float(1.5).as_location(), None);
    }

    #[test]
    fn reliability_ordering_is_sane() {
        assert!(
            SourceKind::Relational.default_reliability()
                > SourceKind::Rfid.default_reliability()
        );
        assert!(
            SourceKind::Rfid.default_reliability() > SourceKind::SocialText.default_reliability()
        );
        for k in [
            SourceKind::Relational,
            SourceKind::Sensor,
            SourceKind::Rfid,
            SourceKind::Camera,
            SourceKind::SocialText,
            SourceKind::VideoAnnotation,
        ] {
            let p = k.default_reliability();
            assert!(p > 0.5 && p < 1.0);
        }
    }
}
