//! The Fig. 6 co-space library scenario, with ground truth.
//!
//! The paper's running fusion example: *"information from both video
//! camera and RFID readers will be needed to ensure that the location of
//! books are represented accurately in the digital space. Furthermore,
//! reviews and opinions on the books can also be drawn from the Web…"*
//!
//! The generator creates `n_books` with true shelf assignments, three
//! observation sources with realistic noise models, and a mid-run
//! relocation of a fraction of the books. [`LibraryScenario::run_fusion`]
//! scores each single source and the fused pipeline against ground truth,
//! and counts how many relocations the event layer detects — experiment
//! E2's engine.

use crate::events::{EventDetector, Rule};
use crate::evidence::{EvidencePool, Observation};
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use rand::Rng;

/// Noise parameters for the three library sources.
#[derive(Debug, Clone, Copy)]
pub struct LibraryParams {
    /// Books in the library.
    pub n_books: usize,
    /// Shelves.
    pub n_shelves: u64,
    /// RFID: probability a scheduled read is missed entirely.
    pub rfid_miss: f64,
    /// RFID: probability a read reports a neighbouring shelf (ghost read).
    pub rfid_ghost: f64,
    /// Camera: fraction of books in view of any camera.
    pub camera_coverage: f64,
    /// Camera: probability of misclassifying the shelf.
    pub camera_error: f64,
    /// Social/web: probability a book has any mention at all.
    pub social_coverage: f64,
    /// Social/web: probability a mention claims the wrong shelf.
    pub social_error: f64,
    /// Fraction of books relocated mid-run.
    pub relocated_fraction: f64,
    /// Observation rounds before and after the relocation.
    pub rounds: usize,
}

impl Default for LibraryParams {
    fn default() -> Self {
        LibraryParams {
            n_books: 500,
            n_shelves: 40,
            rfid_miss: 0.25,
            rfid_ghost: 0.15,
            camera_coverage: 0.6,
            camera_error: 0.10,
            social_coverage: 0.3,
            social_error: 0.35,
            relocated_fraction: 0.2,
            rounds: 3,
        }
    }
}

/// Accuracy results for E2.
#[derive(Debug, Clone, Copy)]
pub struct LibraryReport {
    /// Accuracy of shelf assignment using RFID alone.
    pub rfid_acc: f64,
    /// …camera alone.
    pub camera_acc: f64,
    /// …social mentions alone.
    pub social_acc: f64,
    /// …fused (all sources, log-odds, time decay).
    pub fused_acc: f64,
    /// Relocations actually performed.
    pub relocations: usize,
    /// Relocations the event layer detected (state_changed).
    pub detected_moves: usize,
    /// Spurious state_changed events (books that never moved).
    pub false_moves: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Rfid,
    Camera,
    Social,
}

/// The scenario.
#[derive(Debug)]
pub struct LibraryScenario {
    params: LibraryParams,
    seed: u64,
}

impl LibraryScenario {
    /// Create a scenario with a seed (all noise is reproducible).
    pub fn new(params: LibraryParams, seed: u64) -> Self {
        assert!(params.n_books > 0 && params.n_shelves > 1 && params.rounds > 0);
        LibraryScenario { params, seed }
    }

    fn wrong_shelf<R: Rng>(rng: &mut R, truth: u64, n_shelves: u64) -> u64 {
        let mut s = rng.gen_range(0..n_shelves - 1);
        if s >= truth {
            s += 1;
        }
        s
    }

    /// Run the scenario and score everything.
    pub fn run_fusion(&self) -> LibraryReport {
        let p = self.params;
        let mut rng = seeded_rng(self.seed);

        // Ground truth, before and after the mid-run relocation.
        let shelf_before: Vec<u64> =
            (0..p.n_books).map(|_| rng.gen_range(0..p.n_shelves)).collect();
        let mut shelf_after = shelf_before.clone();
        let mut relocated = vec![false; p.n_books];
        for (i, s) in shelf_after.iter_mut().enumerate() {
            if rng.gen_bool(p.relocated_fraction) {
                *s = Self::wrong_shelf(&mut rng, shelf_before[i], p.n_shelves);
                relocated[i] = true;
            }
        }
        let relocations = relocated.iter().filter(|&&r| r).count();

        let round_gap = SimDuration::from_millis(100);
        // Half-life of one round gap: post-move evidence overtakes in ~2 rounds.
        let mut pool = EvidencePool::with_half_life_us(round_gap.as_micros() as f64);
        let mut detector = EventDetector::new(vec![Rule::state_changed(0.3)]);

        // Per-source tallies for the single-source baselines (simple
        // majority — the "aggregation" strawman §IV-A criticizes).
        let mut tallies: Vec<[std::collections::BTreeMap<u64, usize>; 3]> =
            (0..p.n_books).map(|_| Default::default()).collect();

        let mut detected = vec![false; p.n_books];
        let mut false_moves = 0usize;

        let total_rounds = p.rounds * 2;
        for round in 0..total_rounds {
            let now = SimTime::ZERO + round_gap.mul_f64(round as f64);
            let truth = if round < p.rounds { &shelf_before } else { &shelf_after };
            for book in 0..p.n_books {
                let t = truth[book];
                // RFID.
                if !rng.gen_bool(p.rfid_miss) {
                    let claimed = if rng.gen_bool(p.rfid_ghost) {
                        Self::wrong_shelf(&mut rng, t, p.n_shelves)
                    } else {
                        t
                    };
                    *tallies[book][0].entry(claimed).or_default() += 1;
                    pool.observe(&Observation {
                        entity: book,
                        hypothesis: claimed,
                        reliability: 0.80,
                        ts: now,
                    });
                }
                // Camera (partial coverage — coverage re-drawn each round
                // to model panning cameras).
                if rng.gen_bool(p.camera_coverage) {
                    let claimed = if rng.gen_bool(p.camera_error) {
                        Self::wrong_shelf(&mut rng, t, p.n_shelves)
                    } else {
                        t
                    };
                    *tallies[book][1].entry(claimed).or_default() += 1;
                    pool.observe(&Observation {
                        entity: book,
                        hypothesis: claimed,
                        reliability: 0.90,
                        ts: now,
                    });
                }
                // Social/web mentions.
                if rng.gen_bool(p.social_coverage) {
                    let claimed = if rng.gen_bool(p.social_error) {
                        Self::wrong_shelf(&mut rng, t, p.n_shelves)
                    } else {
                        t
                    };
                    *tallies[book][2].entry(claimed).or_default() += 1;
                    pool.observe(&Observation {
                        entity: book,
                        hypothesis: claimed,
                        reliability: 0.60,
                        ts: now,
                    });
                }
            }
            // Event detection after each round.
            for book in 0..p.n_books {
                if let Some(b) = pool.belief(book, now) {
                    for ev in detector.observe(book, b, now) {
                        if ev.rule == "state_changed" {
                            if relocated[book] && round >= p.rounds {
                                detected[book] = true;
                            } else {
                                false_moves += 1;
                            }
                        }
                    }
                }
            }
        }

        // Score: final belief vs final truth.
        let now = SimTime::ZERO + round_gap.mul_f64(total_rounds as f64);
        let majority = |m: &std::collections::BTreeMap<u64, usize>| -> Option<u64> {
            m.iter().max_by_key(|(h, &c)| (c, std::cmp::Reverse(**h))).map(|(&h, _)| h)
        };
        let score_source = |idx: usize| -> f64 {
            let right = (0..p.n_books)
                .filter(|&b| majority(&tallies[b][idx]) == Some(shelf_after[b]))
                .count();
            right as f64 / p.n_books as f64
        };
        let fused_right = (0..p.n_books)
            .filter(|&b| pool.belief(b, now).map(|bl| bl.hypothesis) == Some(shelf_after[b]))
            .count();

        let _ = Src::Rfid; // document index mapping: 0=Rfid, 1=Camera, 2=Social
        let _ = (Src::Camera, Src::Social);
        LibraryReport {
            rfid_acc: score_source(0),
            camera_acc: score_source(1),
            social_acc: score_source(2),
            fused_acc: fused_right as f64 / p.n_books as f64,
            relocations,
            detected_moves: detected.iter().filter(|&&d| d).count(),
            false_moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_beats_every_single_source() {
        let report = LibraryScenario::new(LibraryParams::default(), 42).run_fusion();
        assert!(
            report.fused_acc > report.rfid_acc,
            "fused {} vs rfid {}",
            report.fused_acc,
            report.rfid_acc
        );
        assert!(report.fused_acc > report.camera_acc);
        assert!(report.fused_acc > report.social_acc);
        assert!(report.fused_acc > 0.9, "fused accuracy {}", report.fused_acc);
    }

    #[test]
    fn majority_single_source_suffers_from_relocation() {
        // The majority baselines mix pre- and post-move observations; with
        // a large relocated fraction their accuracy caps well below the
        // decayed fusion.
        let params = LibraryParams { relocated_fraction: 0.5, ..Default::default() };
        let report = LibraryScenario::new(params, 7).run_fusion();
        assert!(report.fused_acc > report.rfid_acc + 0.1);
    }

    #[test]
    fn event_layer_detects_most_moves() {
        let report = LibraryScenario::new(LibraryParams::default(), 42).run_fusion();
        assert!(report.relocations > 0);
        let recall = report.detected_moves as f64 / report.relocations as f64;
        assert!(recall > 0.7, "move recall {recall}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LibraryScenario::new(LibraryParams::default(), 9).run_fusion();
        let b = LibraryScenario::new(LibraryParams::default(), 9).run_fusion();
        assert_eq!(a.fused_acc, b.fused_acc);
        assert_eq!(a.detected_moves, b.detected_moves);
    }

    #[test]
    fn noise_free_sources_are_perfect() {
        let params = LibraryParams {
            rfid_miss: 0.0,
            rfid_ghost: 0.0,
            camera_coverage: 1.0,
            camera_error: 0.0,
            social_coverage: 1.0,
            social_error: 0.0,
            relocated_fraction: 0.0,
            ..Default::default()
        };
        let report = LibraryScenario::new(params, 1).run_fusion();
        assert_eq!(report.fused_acc, 1.0);
        assert_eq!(report.rfid_acc, 1.0);
        assert_eq!(report.camera_acc, 1.0);
        assert_eq!(report.social_acc, 1.0);
        assert_eq!(report.relocations, 0);
    }
}
