#![forbid(unsafe_code)]
//! `mv-fusion` — data fusion over heterogeneous sources.
//!
//! §IV-A: *"data fusion in the metaverse is more challenging as the inputs
//! may come from a wide variety of sources including blogs, video/audio
//! clips, and photographs … Such fusion of information on a single entity
//! requires a substantial amount of inference over semantics that are
//! extracted from multiple data sources."* The paper contrasts this with
//! plain stream aggregation ("more complex logic inferences") and plain
//! data integration ("detects events that had taken place … and depicts
//! these events accurately").
//!
//! The crate implements that pipeline end to end:
//!
//! * [`record`] — a schema-less heterogeneous record model with typed
//!   values and source descriptors (relational rows, RFID reads, camera
//!   detections, social-text mentions…);
//! * [`ooo`] — a bounded reorder buffer for late/out-of-order arrivals;
//! * [`rfid`] — SMURF-style adaptive-window cleaning of raw RFID read
//!   streams (missed-read smoothing vs. departure responsiveness);
//! * [`resolve`] — entity resolution: blocking + trigram-Jaccard
//!   similarity + union-find clustering, so mentions from different
//!   sources land on the same entity;
//! * [`evidence`] — per-entity Bayesian (log-odds) combination of
//!   conflicting location/state observations weighted by per-source
//!   reliability;
//! * [`events`] — rule-based event detection over the fused state (the
//!   "depict events in the metaverse" half);
//! * [`library`] — the Fig. 6 co-space library scenario with ground
//!   truth, used by experiment E2 to show fusion beating every single
//!   source.

pub mod events;
pub mod evidence;
pub mod library;
pub mod ooo;
pub mod record;
pub mod rfid;
pub mod resolve;

pub use events::{DetectedEvent, EventDetector, Rule};
pub use evidence::{EvidencePool, FusedBelief, Observation};
pub use ooo::ReorderBuffer;
pub use record::{Record, SourceId, SourceKind, Value};
pub use rfid::{AdaptiveCleaner, WindowPolicy};
pub use resolve::{EntityResolver, ResolvedEntity};
