//! Moving queries over moving objects.
//!
//! §IV-G, fourth challenge: *"we are also dealing with moving queries (a
//! user moving in the virtual environment may need to track all users
//! within his/her views — as he/she moves, his/her views of the space
//! changes). There are very few works on moving queries over moving
//! objects \[30\], \[29\], and this area is certainly worth further
//! exploration."*
//!
//! This module implements a continuous-range-query engine with two
//! strategies, mirroring the MobiEyes/motion-adaptive line of work:
//!
//! * [`QueryStrategy::NaiveReeval`] — every read re-runs the range query
//!   against the spatial index (one *probe* per read);
//! * [`QueryStrategy::SafeRegion`] — each query caches a candidate set
//!   within an enlarged radius `r + buffer` around an *evaluation point*.
//!   While the observer stays within `buffer` of the evaluation point the
//!   cached candidates are guaranteed to be a superset of the true result,
//!   so reads only filter the cache; object updates patch the cache in
//!   O(1) per query. Only when the observer escapes its safe region does
//!   the engine pay another index probe.
//!
//! The engine counts probes and cache patches so experiment E11c can
//! report the re-evaluation savings.

use crate::grid::GridIndex;
use crate::index::SpatialIndex;
use mv_common::geom::{Aabb, Point};
use mv_common::hash::FastMap;
use mv_common::id::{EntityId, IdGen, QueryId};
use mv_common::metrics::Counters;
use mv_common::{MvError, MvResult};

/// How a continuous query is maintained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryStrategy {
    /// Re-run the index range query on every read.
    NaiveReeval,
    /// Cache candidates within `r + buffer` of an evaluation point;
    /// re-probe only when the observer leaves the safe region.
    SafeRegion {
        /// Extra radius cached beyond the query radius.
        buffer: f64,
    },
}

#[derive(Debug)]
struct ContinuousQuery {
    observer: Point,
    radius: f64,
    /// Where the candidate set was last evaluated.
    eval_point: Point,
    /// Candidate objects (within radius + buffer of eval_point).
    candidates: FastMap<EntityId, Point>,
    /// Whether candidates are populated (SafeRegion only).
    primed: bool,
}

/// A continuous range-query engine over moving objects.
#[derive(Debug)]
pub struct MovingQueryEngine {
    index: GridIndex,
    objects: FastMap<EntityId, Point>,
    queries: FastMap<QueryId, ContinuousQuery>,
    strategy: QueryStrategy,
    ids: IdGen,
    /// `index_probes`, `cache_patches`, `reads` counters.
    pub stats: Counters,
}

impl MovingQueryEngine {
    /// Create an engine with the given maintenance strategy; `cell_size`
    /// configures the underlying grid index.
    pub fn new(strategy: QueryStrategy, cell_size: f64) -> Self {
        if let QueryStrategy::SafeRegion { buffer } = strategy {
            assert!(buffer > 0.0, "safe-region buffer must be positive");
        }
        MovingQueryEngine {
            index: GridIndex::new(cell_size),
            objects: FastMap::default(),
            queries: FastMap::default(),
            strategy,
            ids: IdGen::new(),
            stats: Counters::new(),
        }
    }

    /// The active strategy.
    pub fn strategy(&self) -> QueryStrategy {
        self.strategy
    }

    /// Insert or move an object.
    pub fn update_object(&mut self, id: EntityId, p: Point) {
        self.index.update(id, p);
        self.objects.insert(id, p);
        if let QueryStrategy::SafeRegion { buffer } = self.strategy {
            for q in self.queries.values_mut() {
                if !q.primed {
                    continue;
                }
                let reach = q.radius + buffer;
                if q.eval_point.dist_sq(p) <= reach * reach {
                    q.candidates.insert(id, p);
                    self.stats.incr("cache_patches");
                } else if q.candidates.remove(&id).is_some() {
                    self.stats.incr("cache_patches");
                }
            }
        }
    }

    /// Remove an object entirely.
    pub fn remove_object(&mut self, id: EntityId) {
        self.index.remove(id);
        self.objects.remove(&id);
        for q in self.queries.values_mut() {
            q.candidates.remove(&id);
        }
    }

    /// Number of tracked objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Register a continuous range query.
    pub fn register_query(&mut self, observer: Point, radius: f64) -> QueryId {
        let qid: QueryId = self.ids.next();
        self.queries.insert(
            qid,
            ContinuousQuery {
                observer,
                radius,
                eval_point: observer,
                candidates: FastMap::default(),
                primed: false,
            },
        );
        qid
    }

    /// Drop a continuous query.
    pub fn unregister_query(&mut self, qid: QueryId) -> bool {
        self.queries.remove(&qid).is_some()
    }

    /// Move a query's observer.
    pub fn move_observer(&mut self, qid: QueryId, p: Point) -> MvResult<()> {
        let q = self
            .queries
            .get_mut(&qid)
            .ok_or(MvError::not_found("query", qid.raw()))?;
        q.observer = p;
        Ok(())
    }

    fn probe(
        index: &GridIndex,
        stats: &mut Counters,
        center: Point,
        radius: f64,
    ) -> Vec<(EntityId, Point)> {
        stats.incr("index_probes");
        index
            .range(&Aabb::centered(center, radius))
            .into_iter()
            .filter_map(|id| {
                let p = index.get(id).expect("indexed object has a position");
                if center.dist_sq(p) <= radius * radius {
                    Some((id, p))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Read the query's current result (ids sorted for determinism).
    pub fn result(&mut self, qid: QueryId) -> MvResult<Vec<EntityId>> {
        let strategy = self.strategy;
        let q = self
            .queries
            .get_mut(&qid)
            .ok_or(MvError::not_found("query", qid.raw()))?;
        self.stats.incr("reads");
        let mut out: Vec<EntityId> = match strategy {
            QueryStrategy::NaiveReeval => {
                Self::probe(&self.index, &mut self.stats, q.observer, q.radius)
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect()
            }
            QueryStrategy::SafeRegion { buffer } => {
                let escaped = q.eval_point.dist_sq(q.observer) > buffer * buffer;
                if !q.primed || escaped {
                    let cands = Self::probe(
                        &self.index,
                        &mut self.stats,
                        q.observer,
                        q.radius + buffer,
                    );
                    q.candidates = cands.into_iter().collect();
                    q.eval_point = q.observer;
                    q.primed = true;
                }
                let r2 = q.radius * q.radius;
                q.candidates
                    .iter()
                    .filter(|(_, p)| q.observer.dist_sq(**p) <= r2)
                    .map(|(id, _)| *id)
                    .collect()
            }
        };
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use rand::Rng;

    fn e(i: u64) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn naive_returns_objects_in_range() {
        let mut eng = MovingQueryEngine::new(QueryStrategy::NaiveReeval, 10.0);
        eng.update_object(e(1), Point::new(1.0, 0.0));
        eng.update_object(e(2), Point::new(100.0, 0.0));
        let q = eng.register_query(Point::ORIGIN, 5.0);
        assert_eq!(eng.result(q).unwrap(), vec![e(1)]);
        eng.move_observer(q, Point::new(99.0, 0.0)).unwrap();
        assert_eq!(eng.result(q).unwrap(), vec![e(2)]);
    }

    #[test]
    fn safe_region_matches_naive_under_random_motion() {
        let mut rng = seeded_rng(21);
        let mut naive = MovingQueryEngine::new(QueryStrategy::NaiveReeval, 10.0);
        let mut safe = MovingQueryEngine::new(QueryStrategy::SafeRegion { buffer: 8.0 }, 10.0);
        // 100 objects.
        let mut pos = Vec::new();
        for i in 0..100u64 {
            let p = Point::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0));
            naive.update_object(e(i), p);
            safe.update_object(e(i), p);
            pos.push(p);
        }
        let mut obs = Point::new(100.0, 100.0);
        let qn = naive.register_query(obs, 20.0);
        let qs = safe.register_query(obs, 20.0);
        for step in 0..200 {
            // Random small observer step.
            obs = Point::new(
                (obs.x + rng.gen_range(-3.0..3.0)).clamp(0.0, 200.0),
                (obs.y + rng.gen_range(-3.0..3.0)).clamp(0.0, 200.0),
            );
            naive.move_observer(qn, obs).unwrap();
            safe.move_observer(qs, obs).unwrap();
            // A few object moves.
            for _ in 0..5 {
                let i = rng.gen_range(0..100u64);
                let p = Point::new(
                    (pos[i as usize].x + rng.gen_range(-5.0..5.0)).clamp(0.0, 200.0),
                    (pos[i as usize].y + rng.gen_range(-5.0..5.0)).clamp(0.0, 200.0),
                );
                pos[i as usize] = p;
                naive.update_object(e(i), p);
                safe.update_object(e(i), p);
            }
            assert_eq!(
                naive.result(qn).unwrap(),
                safe.result(qs).unwrap(),
                "diverged at step {step}"
            );
        }
        // The whole point: far fewer index probes.
        let naive_probes = naive.stats.get("index_probes");
        let safe_probes = safe.stats.get("index_probes");
        assert!(
            safe_probes * 3 < naive_probes,
            "safe {safe_probes} vs naive {naive_probes} probes"
        );
    }

    #[test]
    fn safe_region_reprobes_on_escape() {
        let mut eng = MovingQueryEngine::new(QueryStrategy::SafeRegion { buffer: 5.0 }, 10.0);
        eng.update_object(e(1), Point::new(0.0, 0.0));
        let q = eng.register_query(Point::ORIGIN, 10.0);
        eng.result(q).unwrap(); // primes: 1 probe
        assert_eq!(eng.stats.get("index_probes"), 1);
        eng.move_observer(q, Point::new(3.0, 0.0)).unwrap();
        eng.result(q).unwrap(); // within buffer: no probe
        assert_eq!(eng.stats.get("index_probes"), 1);
        eng.move_observer(q, Point::new(9.0, 0.0)).unwrap();
        eng.result(q).unwrap(); // escaped: re-probe
        assert_eq!(eng.stats.get("index_probes"), 2);
    }

    #[test]
    fn object_updates_patch_cache() {
        let mut eng = MovingQueryEngine::new(QueryStrategy::SafeRegion { buffer: 5.0 }, 10.0);
        let q = eng.register_query(Point::ORIGIN, 10.0);
        assert!(eng.result(q).unwrap().is_empty());
        // Object appears inside the query range after priming.
        eng.update_object(e(7), Point::new(2.0, 2.0));
        assert_eq!(eng.result(q).unwrap(), vec![e(7)]);
        // …moves to the buffer zone (out of result, still cached)…
        eng.update_object(e(7), Point::new(12.0, 0.0));
        assert!(eng.result(q).unwrap().is_empty());
        // …and far away (dropped from cache).
        eng.update_object(e(7), Point::new(100.0, 0.0));
        assert!(eng.result(q).unwrap().is_empty());
        // All of that without extra probes.
        assert_eq!(eng.stats.get("index_probes"), 1);
        assert!(eng.stats.get("cache_patches") >= 2);
    }

    #[test]
    fn remove_object_removes_from_results() {
        let mut eng = MovingQueryEngine::new(QueryStrategy::SafeRegion { buffer: 5.0 }, 10.0);
        eng.update_object(e(1), Point::new(1.0, 1.0));
        let q = eng.register_query(Point::ORIGIN, 10.0);
        assert_eq!(eng.result(q).unwrap(), vec![e(1)]);
        eng.remove_object(e(1));
        assert!(eng.result(q).unwrap().is_empty());
        assert_eq!(eng.object_count(), 0);
    }

    #[test]
    fn unknown_query_errors() {
        let mut eng = MovingQueryEngine::new(QueryStrategy::NaiveReeval, 10.0);
        assert!(eng.result(QueryId::new(99)).is_err());
        assert!(eng.move_observer(QueryId::new(99), Point::ORIGIN).is_err());
        assert!(!eng.unregister_query(QueryId::new(99)));
    }
}
