//! Trajectory storage and spatio-temporal queries.
//!
//! §IV-F: *"The metaverse would have a huge amount of trajectory and
//! virtual walkthrough data, and to facilitate efficient retrieval,
//! efficient indexes are needed."* This module stores per-entity
//! position histories, indexes them with a time-bucketed spatial grid
//! for spatio-temporal range queries ("who crossed this plaza between
//! t1 and t2?"), and bounds storage with online dead-reckoning
//! compression: a sample is persisted only when it deviates from the
//! linear prediction of the last two kept samples by more than a
//! tolerance — the standard trajectory-simplification trade
//! (tolerance ↔ storage), measured in E10d.

use crate::index::sorted;
use mv_common::geom::{Aabb, Point};
use mv_common::hash::FastMap;
use mv_common::id::EntityId;
use mv_common::time::{SimDuration, SimTime};

/// One kept trajectory sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajSample {
    /// When.
    pub ts: SimTime,
    /// Where.
    pub pos: Point,
}

#[derive(Debug, Default)]
struct Track {
    samples: Vec<TrajSample>,
    /// Samples offered (kept + compressed away).
    offered: u64,
}

impl Track {
    /// Linear interpolation of the position at `ts` from kept samples
    /// (clamped to the track's ends).
    fn position_at(&self, ts: SimTime) -> Option<Point> {
        if self.samples.is_empty() {
            return None;
        }
        let idx = self.samples.partition_point(|s| s.ts <= ts);
        if idx == 0 {
            return Some(self.samples[0].pos);
        }
        if idx == self.samples.len() {
            return Some(self.samples[idx - 1].pos);
        }
        let (a, b) = (self.samples[idx - 1], self.samples[idx]);
        let span = b.ts.since(a.ts).as_micros() as f64;
        if span == 0.0 {
            return Some(b.pos);
        }
        let frac = ts.since(a.ts).as_micros() as f64 / span;
        Some(a.pos.lerp(b.pos, frac))
    }
}

/// A trajectory store with dead-reckoning compression and a
/// time-bucketed grid index.
#[derive(Debug)]
pub struct TrajectoryStore {
    /// Keep tolerance: samples within this distance of the linear
    /// prediction are dropped.
    tolerance: f64,
    /// Time-bucket length for the spatio-temporal index.
    bucket: SimDuration,
    /// Spatial cell size for the index.
    cell: f64,
    tracks: FastMap<EntityId, Track>,
    /// (time bucket, cell x, cell y) → entities seen there then.
    index: FastMap<(u64, i64, i64), Vec<EntityId>>,
}

impl TrajectoryStore {
    /// Create a store.
    ///
    /// # Panics
    /// Panics unless `tolerance ≥ 0`, `cell > 0` and `bucket > 0`.
    pub fn new(tolerance: f64, cell: f64, bucket: SimDuration) -> Self {
        assert!(tolerance >= 0.0 && cell > 0.0 && bucket.as_micros() > 0);
        TrajectoryStore {
            tolerance,
            bucket,
            cell,
            tracks: FastMap::default(),
            index: FastMap::default(),
        }
    }

    fn key_for(&self, ts: SimTime, p: Point) -> (u64, i64, i64) {
        (
            ts.as_micros() / self.bucket.as_micros(),
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    fn index_sample(&mut self, id: EntityId, ts: SimTime, p: Point) {
        let key = self.key_for(ts, p);
        let bucket = self.index.entry(key).or_default();
        if bucket.last() != Some(&id) {
            bucket.push(id);
        }
    }

    /// Record a position report. Returns true when the sample was kept
    /// (false = predicted within tolerance and compressed away).
    /// Reports must arrive in non-decreasing time order per entity.
    pub fn record(&mut self, id: EntityId, ts: SimTime, pos: Point) -> bool {
        // Decide against the track first (borrow scope), then index.
        let kept = {
            let track = self.tracks.entry(id).or_default();
            track.offered += 1;
            let n = track.samples.len();
            if n >= 1 {
                debug_assert!(ts >= track.samples[n - 1].ts, "out-of-order trajectory report");
            }
            let keep = if n < 2 || self.tolerance == 0.0 {
                true
            } else {
                // Dead-reckon from the last two kept samples.
                let (a, b) = (track.samples[n - 2], track.samples[n - 1]);
                let span = b.ts.since(a.ts).as_micros() as f64;
                let predicted = if span == 0.0 {
                    b.pos
                } else {
                    let v = b.pos.sub(a.pos).scale(1.0 / span);
                    b.pos.add(v.scale(ts.since(b.ts).as_micros() as f64))
                };
                predicted.dist(pos) > self.tolerance
            };
            if keep {
                track.samples.push(TrajSample { ts, pos });
            } else {
                // Replace the last kept sample's successor implicitly: the
                // dropped point is recoverable within tolerance by
                // interpolation once the *next* kept sample arrives; to keep
                // the end of the track honest we update the tail sample.
                let last = track.samples.last_mut().expect("n >= 2");
                let _ = last; // tail stays; position_at clamps to it
            }
            keep
        };
        if kept {
            self.index_sample(id, ts, pos);
        }
        kept
    }

    /// Kept samples of one entity.
    pub fn track(&self, id: EntityId) -> &[TrajSample] {
        self.tracks.get(&id).map(|t| t.samples.as_slice()).unwrap_or(&[])
    }

    /// Interpolated position of an entity at `ts`.
    pub fn position_at(&self, id: EntityId, ts: SimTime) -> Option<Point> {
        self.tracks.get(&id)?.position_at(ts)
    }

    /// Compression ratio achieved so far (kept / offered; 1.0 when empty).
    pub fn keep_ratio(&self) -> f64 {
        let kept: u64 = self.tracks.values().map(|t| t.samples.len() as u64).sum();
        let offered: u64 = self.tracks.values().map(|t| t.offered).sum();
        if offered == 0 {
            1.0
        } else {
            kept as f64 / offered as f64
        }
    }

    /// Total kept samples.
    pub fn kept_samples(&self) -> usize {
        self.tracks.values().map(|t| t.samples.len()).sum()
    }

    /// Spatio-temporal range query: entities with a kept sample inside
    /// `area` during `[from, to]`, ids sorted and deduplicated.
    ///
    /// Compression caveat (documented, tested): an entity whose straight
    /// segment crosses the area without a kept sample inside it is found
    /// only if `tolerance` is small relative to the area — the classic
    /// simplification/recall trade.
    pub fn range(&self, area: &Aabb, from: SimTime, to: SimTime) -> Vec<EntityId> {
        let mut out = Vec::new();
        let b0 = from.as_micros() / self.bucket.as_micros();
        let b1 = to.as_micros() / self.bucket.as_micros();
        let lo = ((area.lo.x / self.cell).floor() as i64, (area.lo.y / self.cell).floor() as i64);
        let hi = ((area.hi.x / self.cell).floor() as i64, (area.hi.y / self.cell).floor() as i64);
        // As with the grid index, fall back to scanning occupied buckets
        // when the query rectangle dwarfs them.
        let span = ((b1 - b0 + 1) as i128)
            .saturating_mul(hi.0 as i128 - lo.0 as i128 + 1)
            .saturating_mul(hi.1 as i128 - lo.1 as i128 + 1);
        let candidates: Vec<EntityId> = if span > self.index.len() as i128 {
            let mut c: Vec<EntityId> = self
                .index
                .iter()
                .filter(|(&(b, cx, cy), _)| {
                    (b0..=b1).contains(&b)
                        && (lo.0..=hi.0).contains(&cx)
                        && (lo.1..=hi.1).contains(&cy)
                })
                .flat_map(|(_, ids)| ids.iter().copied())
                .collect();
            c.sort_unstable();
            c
        } else {
            let mut c = Vec::new();
            for b in b0..=b1 {
                for cx in lo.0..=hi.0 {
                    for cy in lo.1..=hi.1 {
                        if let Some(ids) = self.index.get(&(b, cx, cy)) {
                            c.extend(ids.iter().copied());
                        }
                    }
                }
            }
            c
        };
        // Verify against actual kept samples (cells and buckets are coarse).
        let mut seen = std::collections::BTreeSet::new();
        for id in candidates {
            if !seen.insert(id) {
                continue;
            }
            let track = &self.tracks[&id];
            let start = track.samples.partition_point(|s| s.ts < from);
            let hit = track.samples[start..]
                .iter()
                .take_while(|s| s.ts <= to)
                .any(|s| area.contains(s.pos));
            if hit {
                out.push(id);
            }
        }
        sorted(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u64) -> EntityId {
        EntityId::new(i)
    }
    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn store(tol: f64) -> TrajectoryStore {
        TrajectoryStore::new(tol, 50.0, SimDuration::from_secs(10))
    }

    #[test]
    fn straight_line_compresses_to_endpoints_plus_seed() {
        let mut s = store(1.0);
        for i in 0..100u64 {
            s.record(e(1), t(i * 100), Point::new(i as f64, 0.0));
        }
        // A perfectly linear walk keeps only the first two samples.
        assert_eq!(s.track(e(1)).len(), 2);
        assert!(s.keep_ratio() < 0.05);
    }

    #[test]
    fn turns_are_kept() {
        let mut s = store(1.0);
        // Walk east, then turn north.
        for i in 0..10u64 {
            s.record(e(1), t(i * 100), Point::new(i as f64, 0.0));
        }
        for i in 0..10u64 {
            s.record(e(1), t(1000 + i * 100), Point::new(9.0, (i + 1) as f64));
        }
        // The first post-turn sample deviates from the eastward prediction
        // and is kept; the straight northward tail then compresses away
        // (an archival close() would flush the final point).
        assert!(s.track(e(1)).len() >= 3);
        assert!(
            s.track(e(1)).iter().any(|smp| smp.pos.y > 0.5),
            "the turn must be materialized: {:?}",
            s.track(e(1))
        );
    }

    #[test]
    fn zero_tolerance_keeps_everything() {
        let mut s = store(0.0);
        for i in 0..50u64 {
            s.record(e(1), t(i), Point::new(i as f64, 0.0));
        }
        assert_eq!(s.track(e(1)).len(), 50);
        assert_eq!(s.keep_ratio(), 1.0);
    }

    #[test]
    fn interpolation_reconstructs_within_tolerance() {
        let mut s = store(2.0);
        for i in 0..=100u64 {
            // Gentle sinusoid: compressible but not linear.
            let y = (i as f64 / 10.0).sin() * 5.0;
            s.record(e(1), t(i * 100), Point::new(i as f64, y));
        }
        assert!(s.keep_ratio() < 0.9, "some compression expected");
        for i in (0..=100u64).step_by(7) {
            let truth = Point::new(i as f64, (i as f64 / 10.0).sin() * 5.0);
            let got = s.position_at(e(1), t(i * 100)).expect("covered time");
            // Dead-reckoning guarantees the *kept decision* error ≤ tol;
            // reconstruction error stays within a small multiple.
            assert!(got.dist(truth) <= 6.0, "t={i}: {got:?} vs {truth:?}");
        }
        // Clamping beyond the ends.
        assert_eq!(s.position_at(e(1), t(999_999)).unwrap(), s.track(e(1)).last().unwrap().pos);
    }

    #[test]
    fn spatio_temporal_range_finds_the_visitor() {
        let mut s = store(0.0);
        // Entity 1 visits the plaza at t=5s; entity 2 never does.
        for i in 0..10u64 {
            s.record(e(1), t(i * 1000), Point::new(i as f64 * 20.0, 0.0));
            s.record(e(2), t(i * 1000), Point::new(i as f64 * 20.0, 500.0));
        }
        let plaza = Aabb::centered(Point::new(100.0, 0.0), 15.0);
        assert_eq!(s.range(&plaza, t(0), t(10_000)), vec![e(1)]);
        // Outside the time window: no hit.
        assert!(s.range(&plaza, t(8_000), t(10_000)).is_empty());
        // Everything-everywhere finds both.
        assert_eq!(s.range(&Aabb::everything(), t(0), t(10_000)), vec![e(1), e(2)]);
    }

    #[test]
    fn tolerance_trades_storage_for_recall() {
        let run = |tol: f64| {
            let mut s = store(tol);
            let mut rng = mv_common::seeded_rng(8);
            use rand::Rng;
            for ent in 0..50u64 {
                let mut p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                for i in 0..200u64 {
                    p = Point::new(
                        (p.x + rng.gen_range(-3.0..3.0)).clamp(0.0, 1000.0),
                        (p.y + rng.gen_range(-3.0..3.0)).clamp(0.0, 1000.0),
                    );
                    s.record(e(ent), t(i * 100), p);
                }
            }
            s
        };
        let exact = run(0.0);
        let loose = run(5.0);
        assert!(loose.kept_samples() < exact.kept_samples() / 2);
        // Recall of a mid-size query vs. the exact store.
        let area = Aabb::centered(Point::new(500.0, 500.0), 120.0);
        let truth = exact.range(&area, t(0), t(20_000));
        let approx = loose.range(&area, t(0), t(20_000));
        let hit = approx.iter().filter(|id| truth.contains(id)).count();
        assert!(
            hit as f64 >= truth.len() as f64 * 0.7,
            "recall {hit}/{} too low",
            truth.len()
        );
    }
}
