//! An ST2B-style self-tunable B+-tree index for moving objects.
//!
//! Follows the design of the ST2B-tree (Chen, Ooi, Tan, Nascimento,
//! SIGMOD'08 — the paper's reference \[22\]): moving-object positions are
//! linearized into one-dimensional keys and stored in a B+-tree (here,
//! `std::collections::BTreeMap`, which *is* an in-memory B-tree), with
//! two signature features:
//!
//! 1. **Two time-rolled logical subtrees.** The timeline is divided into
//!    windows; an update lands in the subtree of its window's *phase*
//!    (window index mod 2). A range query consults both phases. When a
//!    window rolls over, the stale phase drains lazily: each object
//!    migrates on its next update, and the infrequent updaters can be
//!    swept with [`St2bTree::force_migrate`]. This keeps updates cheap
//!    (no global reorganization) — the property §IV-F asks for in
//!    *"update intensive applications and frequently changing scenes"*.
//!
//! 2. **Per-region self-tuning grain.** Space is carved into fixed
//!    super-regions; each region linearizes positions with its own grid
//!    granularity, re-chosen from observed density at every
//!    [`St2bTree::tune`] (dense downtown regions get fine cells, empty
//!    countryside coarse ones). Keys are `(phase, region, row, col)` so
//!    one query row is one contiguous B-tree scan.

use crate::index::SpatialIndex;
use mv_common::geom::{Aabb, Point};
use mv_common::hash::FastMap;
use mv_common::id::EntityId;
use mv_common::time::SimTime;
use std::collections::BTreeMap;

/// Maximum cells-per-side for a region's local grid (2^10).
const MAX_GRID: u32 = 1024;
/// Target average number of objects per local cell when tuning.
const TARGET_PER_CELL: f64 = 8.0;

#[derive(Debug, Clone, Copy)]
struct ObjState {
    pos: Point,
    key: u64,
    phase: u8,
}

/// The index. See module docs for the design.
#[derive(Debug)]
pub struct St2bTree {
    /// Side length of a super-region, metres.
    region_size: f64,
    /// Number of regions per side of the covered square universe.
    regions_per_side: u32,
    /// Universe lower corner.
    origin: Point,
    /// Current per-region cells-per-side (tuned).
    grain: Vec<u32>,
    /// Live object counts per region (drives tuning).
    region_counts: Vec<u32>,
    /// Rollover window length in simulated time.
    window: u64,
    /// Current time (drives the phase).
    now: SimTime,
    /// The B-tree: key -> bucket of objects.
    tree: BTreeMap<u64, Vec<EntityId>>,
    /// Per-object state.
    objs: FastMap<EntityId, ObjState>,
}

impl St2bTree {
    /// Create an index covering the square `[origin, origin + regions_per_side
    /// * region_size)²`, with phase windows of `window_us` microseconds.
    ///
    /// Positions outside the universe are clamped onto the border region,
    /// so the structure never loses objects.
    pub fn new(origin: Point, region_size: f64, regions_per_side: u32, window_us: u64) -> Self {
        assert!(region_size > 0.0 && regions_per_side > 0 && window_us > 0);
        let n = (regions_per_side * regions_per_side) as usize;
        St2bTree {
            region_size,
            regions_per_side,
            origin,
            grain: vec![8; n],
            region_counts: vec![0; n],
            window: window_us,
            now: SimTime::ZERO,
            tree: BTreeMap::new(),
            objs: FastMap::default(),
        }
    }

    /// A convenient default universe: `side`-metre square at the origin
    /// with 8×8 regions and 1-second windows.
    pub fn with_universe(side: f64) -> Self {
        St2bTree::new(Point::ORIGIN, side / 8.0, 8, 1_000_000)
    }

    /// Advance the index's notion of time (phase selection).
    pub fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    #[inline]
    fn phase_at(&self, t: SimTime) -> u8 {
        ((t.as_micros() / self.window) % 2) as u8
    }

    #[inline]
    fn region_of(&self, p: Point) -> (u32, u32) {
        let side = self.regions_per_side as i64;
        let rx = (((p.x - self.origin.x) / self.region_size).floor() as i64).clamp(0, side - 1);
        let ry = (((p.y - self.origin.y) / self.region_size).floor() as i64).clamp(0, side - 1);
        (rx as u32, ry as u32)
    }

    #[inline]
    fn region_idx(&self, rx: u32, ry: u32) -> usize {
        (ry * self.regions_per_side + rx) as usize
    }

    /// Key layout (msb→lsb): phase:1 | region:20 | row:10 | col:10.
    fn key_for(&self, p: Point, phase: u8) -> u64 {
        let (rx, ry) = self.region_of(p);
        let ridx = self.region_idx(rx, ry) as u64;
        let g = self.grain[ridx as usize] as f64;
        let cell = self.region_size / g;
        let local_x = p.x - self.origin.x - rx as f64 * self.region_size;
        let local_y = p.y - self.origin.y - ry as f64 * self.region_size;
        let col = ((local_x / cell).floor() as i64).clamp(0, g as i64 - 1) as u64;
        let row = ((local_y / cell).floor() as i64).clamp(0, g as i64 - 1) as u64;
        ((phase as u64) << 40) | (ridx << 20) | (row << 10) | col
    }

    fn tree_insert(&mut self, id: EntityId, key: u64) {
        self.tree.entry(key).or_default().push(id);
    }

    fn tree_remove(&mut self, id: EntityId, key: u64) {
        if let Some(bucket) = self.tree.get_mut(&key) {
            if let Some(i) = bucket.iter().position(|&e| e == id) {
                bucket.swap_remove(i);
            }
            if bucket.is_empty() {
                self.tree.remove(&key);
            }
        }
    }

    /// Timestamped update — the primary ST2B operation. Also advances the
    /// index's clock.
    pub fn update_at(&mut self, id: EntityId, p: Point, now: SimTime) {
        self.set_now(now);
        let phase = self.phase_at(self.now);
        let key = self.key_for(p, phase);
        if let Some(old) = self.objs.insert(id, ObjState { pos: p, key, phase }) {
            self.tree_remove(id, old.key);
            let (orx, ory) = self.region_of(old.pos);
            let oidx = self.region_idx(orx, ory);
            self.region_counts[oidx] = self.region_counts[oidx].saturating_sub(1);
        }
        let (rx, ry) = self.region_of(p);
        let ridx = self.region_idx(rx, ry);
        self.region_counts[ridx] += 1;
        self.tree_insert(id, key);
    }

    /// Migrate every object still filed under the stale phase into the
    /// current phase (the sweep that catches infrequent updaters after a
    /// window rollover). Returns how many objects moved.
    pub fn force_migrate(&mut self) -> usize {
        let current = self.phase_at(self.now);
        let mut stale: Vec<(EntityId, Point)> = self
            .objs
            .iter()
            .filter(|(_, st)| st.phase != current)
            .map(|(id, st)| (*id, st.pos))
            .collect();
        stale.sort_unstable_by_key(|&(id, _)| id);
        let n = stale.len();
        let now = self.now;
        for (id, pos) in stale {
            self.update_at(id, pos, now);
        }
        n
    }

    /// Re-tune every region's grain to the observed density. Objects in
    /// retuned regions are re-keyed immediately (their cells changed).
    /// Returns the number of regions whose grain changed.
    pub fn tune(&mut self) -> usize {
        let mut changed = 0usize;
        let mut retune: Vec<usize> = Vec::new();
        for ridx in 0..self.grain.len() {
            let count = self.region_counts[ridx] as f64;
            let cells = (count / TARGET_PER_CELL).max(1.0);
            let per_side = (cells.sqrt().ceil() as u32).clamp(1, MAX_GRID.min(1 << 10));
            // Snap to powers of two to limit churn.
            let per_side = per_side.next_power_of_two().min(1 << 10);
            if per_side != self.grain[ridx] {
                self.grain[ridx] = per_side;
                changed += 1;
                retune.push(ridx);
            }
        }
        if changed > 0 {
            // Re-key objects in retuned regions.
            let retune_set: std::collections::HashSet<usize> = retune.into_iter().collect();
            let mut affected: Vec<(EntityId, Point)> = self
                .objs
                .iter()
                .filter(|(_, st)| {
                    let (rx, ry) = self.region_of(st.pos);
                    retune_set.contains(&self.region_idx(rx, ry))
                })
                .map(|(id, st)| (*id, st.pos))
                .collect();
            affected.sort_unstable_by_key(|&(id, _)| id);
            let now = self.now;
            for (id, pos) in affected {
                self.update_at(id, pos, now);
            }
        }
        changed
    }

    /// Current grain (cells per side) of the region containing `p`.
    pub fn grain_at(&self, p: Point) -> u32 {
        let (rx, ry) = self.region_of(p);
        self.grain[self.region_idx(rx, ry)]
    }

    fn range_phase(&self, area: &Aabb, phase: u8, out: &mut Vec<EntityId>) {
        // Enumerate regions overlapping the area, then rows within each
        // region; each row is one contiguous B-tree range scan.
        let (rx_lo, ry_lo) = self.region_of(area.lo);
        let (rx_hi, ry_hi) = self.region_of(area.hi);
        for ry in ry_lo..=ry_hi {
            for rx in rx_lo..=rx_hi {
                let ridx = self.region_idx(rx, ry) as u64;
                let g = self.grain[ridx as usize];
                let cell = self.region_size / g as f64;
                let region_x0 = self.origin.x + rx as f64 * self.region_size;
                let region_y0 = self.origin.y + ry as f64 * self.region_size;
                let col_lo =
                    (((area.lo.x - region_x0) / cell).floor() as i64).clamp(0, g as i64 - 1) as u64;
                let col_hi =
                    (((area.hi.x - region_x0) / cell).floor() as i64).clamp(0, g as i64 - 1) as u64;
                let row_lo =
                    (((area.lo.y - region_y0) / cell).floor() as i64).clamp(0, g as i64 - 1) as u64;
                let row_hi =
                    (((area.hi.y - region_y0) / cell).floor() as i64).clamp(0, g as i64 - 1) as u64;
                for row in row_lo..=row_hi {
                    let base = ((phase as u64) << 40) | (ridx << 20) | (row << 10);
                    let start = base | col_lo;
                    let end = base | col_hi;
                    for (_, bucket) in self.tree.range(start..=end) {
                        for &id in bucket {
                            let st = &self.objs[&id];
                            if area.contains(st.pos) {
                                out.push(id);
                            }
                        }
                    }
                }
            }
        }
    }
}

impl SpatialIndex for St2bTree {
    fn insert(&mut self, id: EntityId, p: Point) {
        let now = self.now;
        self.update_at(id, p, now);
    }

    fn remove(&mut self, id: EntityId) -> Option<Point> {
        let st = self.objs.remove(&id)?;
        self.tree_remove(id, st.key);
        let (rx, ry) = self.region_of(st.pos);
        let ridx = self.region_idx(rx, ry);
        self.region_counts[ridx] = self.region_counts[ridx].saturating_sub(1);
        Some(st.pos)
    }

    fn get(&self, id: EntityId) -> Option<Point> {
        self.objs.get(&id).map(|st| st.pos)
    }

    fn range(&self, area: &Aabb) -> Vec<EntityId> {
        let mut out = Vec::new();
        self.range_phase(area, 0, &mut out);
        self.range_phase(area, 1, &mut out);
        out
    }

    fn knn(&self, p: Point, k: usize) -> Vec<EntityId> {
        if k == 0 || self.objs.is_empty() {
            return Vec::new();
        }
        // Expanding-radius search; radius doubles until enough candidates
        // are guaranteed correct (candidates beyond the ring are farther
        // than the ring's inradius).
        let universe = self.region_size * self.regions_per_side as f64;
        let mut r = self.region_size / self.grain_at(p).max(1) as f64;
        loop {
            let hits = self.range(&Aabb::centered(p, r));
            if hits.len() >= k || r > universe * 2.0 {
                let mut scored: Vec<(f64, EntityId)> = if hits.len() >= k {
                    hits.into_iter().map(|id| (p.dist_sq(self.objs[&id].pos), id)).collect()
                } else {
                    // Fewer than k objects in the whole universe.
                    self.objs.iter().map(|(id, st)| (p.dist_sq(st.pos), *id)).collect()
                };
                scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                // Guarantee: the k-th candidate must lie within r (else a
                // point just outside the box could be closer) — if not,
                // expand once more.
                if scored.len() >= k {
                    let kth = scored[k.min(scored.len()) - 1].0.sqrt();
                    if kth > r && r <= universe * 2.0 {
                        r *= 2.0;
                        continue;
                    }
                }
                scored.truncate(k);
                return scored.into_iter().map(|(_, id)| id).collect();
            }
            r *= 2.0;
        }
    }

    fn len(&self) -> usize {
        self.objs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{sorted, ScanIndex};
    use mv_common::seeded_rng;
    use mv_common::time::SimDuration;
    use proptest::prelude::*;
    use rand::Rng;

    fn e(i: u64) -> EntityId {
        EntityId::new(i)
    }

    fn tree() -> St2bTree {
        St2bTree::new(Point::ORIGIN, 25.0, 8, 1_000_000) // 200 m universe
    }

    #[test]
    fn insert_range_remove() {
        let mut t = tree();
        t.insert(e(1), Point::new(10.0, 10.0));
        t.insert(e(2), Point::new(150.0, 150.0));
        let hits = t.range(&Aabb::centered(Point::new(10.0, 10.0), 5.0));
        assert_eq!(hits, vec![e(1)]);
        assert_eq!(t.remove(e(1)), Some(Point::new(10.0, 10.0)));
        assert_eq!(t.len(), 1);
        assert!(t.range(&Aabb::centered(Point::new(10.0, 10.0), 5.0)).is_empty());
    }

    #[test]
    fn out_of_universe_positions_are_clamped_not_lost() {
        let mut t = tree();
        t.insert(e(1), Point::new(-50.0, 900.0));
        assert_eq!(t.len(), 1);
        let all = t.range(&Aabb::everything());
        assert_eq!(all, vec![e(1)]);
        assert_eq!(t.get(e(1)), Some(Point::new(-50.0, 900.0)));
    }

    #[test]
    fn phase_rolls_with_time_and_queries_span_phases() {
        let mut t = tree();
        t.update_at(e(1), Point::new(10.0, 10.0), SimTime::ZERO);
        // One window later the phase flips; a new object lands in phase 1.
        t.update_at(e(2), Point::new(12.0, 10.0), SimTime::from_secs(1));
        let hits = sorted(t.range(&Aabb::centered(Point::new(11.0, 10.0), 5.0)));
        assert_eq!(hits, vec![e(1), e(2)]);
    }

    #[test]
    fn force_migrate_drains_stale_phase() {
        let mut t = tree();
        for i in 0..20u64 {
            t.update_at(e(i), Point::new(i as f64, 5.0), SimTime::ZERO);
        }
        t.set_now(SimTime::ZERO + SimDuration::from_secs(1));
        let moved = t.force_migrate();
        assert_eq!(moved, 20);
        // Everything still findable, now all in the current phase.
        assert_eq!(t.range(&Aabb::everything()).len(), 20);
        assert_eq!(t.force_migrate(), 0);
    }

    #[test]
    fn tuning_refines_dense_regions() {
        let mut t = tree();
        let mut rng = seeded_rng(3);
        // Cram 2000 objects into one region, 3 into another.
        for i in 0..2000u64 {
            let p = Point::new(rng.gen_range(0.0..25.0), rng.gen_range(0.0..25.0));
            t.insert(e(i), p);
        }
        for i in 2000..2003u64 {
            t.insert(e(i), Point::new(150.0 + i as f64 * 0.001, 150.0));
        }
        let changed = t.tune();
        assert!(changed >= 1);
        assert!(t.grain_at(Point::new(10.0, 10.0)) > t.grain_at(Point::new(150.0, 150.0)));
        // Re-keying preserved the data.
        assert_eq!(t.range(&Aabb::everything()).len(), 2003);
        let hits = t.range(&Aabb::new(Point::ORIGIN, Point::new(25.0, 25.0)));
        assert_eq!(hits.len(), 2000);
    }

    #[test]
    fn randomized_equivalence_with_scan_across_time() {
        let mut rng = seeded_rng(11);
        let mut t = tree();
        let mut s = ScanIndex::new();
        let mut now = SimTime::ZERO;
        for step in 0..10 {
            for i in 0..300u64 {
                if rng.gen_bool(0.7) {
                    let p = Point::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0));
                    t.update_at(e(i), p, now);
                    s.update(e(i), p);
                }
            }
            if step == 4 {
                t.tune();
            }
            if step == 7 {
                t.force_migrate();
            }
            for _ in 0..10 {
                let c = Point::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0));
                let area = Aabb::centered(c, rng.gen_range(2.0..60.0));
                assert_eq!(sorted(t.range(&area)), sorted(s.range(&area)), "step {step}");
            }
            now += SimDuration::from_millis(400);
        }
        assert_eq!(t.len(), s.len());
    }

    #[test]
    fn knn_matches_scan() {
        let mut rng = seeded_rng(13);
        let mut t = tree();
        let mut s = ScanIndex::new();
        for i in 0..400u64 {
            let p = Point::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0));
            t.insert(e(i), p);
            s.insert(e(i), p);
        }
        for _ in 0..25 {
            let c = Point::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0));
            assert_eq!(t.knn(c, 5), s.knn(c, 5));
        }
        // k exceeding the population.
        let mut small = tree();
        small.insert(e(1), Point::new(1.0, 1.0));
        assert_eq!(small.knn(Point::ORIGIN, 10), vec![e(1)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_st2b_range_equals_scan(
            pts in proptest::collection::vec((0.0f64..200.0, 0.0f64..200.0), 1..80),
            qx in 0.0f64..200.0,
            qy in 0.0f64..200.0,
            r in 0.5f64..80.0,
        ) {
            let mut t = tree();
            let mut s = ScanIndex::new();
            for (i, (x, y)) in pts.iter().enumerate() {
                t.insert(e(i as u64), Point::new(*x, *y));
                s.insert(e(i as u64), Point::new(*x, *y));
            }
            let area = Aabb::centered(Point::new(qx, qy), r);
            prop_assert_eq!(sorted(t.range(&area)), sorted(s.range(&area)));
        }
    }
}
