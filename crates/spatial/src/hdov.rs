//! An HDoV-style degree-of-visibility hierarchy for virtual walkthroughs.
//!
//! §IV-F cites the HDoV tree (Shou, Huang, Tan — reference \[71\]) as the
//! structure for *"index\[ing\] content at different degrees of visibility
//! in a virtual walkthrough environment"* and asks for a more dynamic
//! variant. This module provides one: a quadtree over scene objects where
//! every internal node carries visibility aggregates (object count,
//! maximum object radius), so a walkthrough query can
//!
//! * prune whole subtrees whose *maximum possible* degree of visibility
//!   from the viewpoint falls below the culling threshold, and
//! * assign each returned object a level of detail ([`Lod`]) from its
//!   actual degree of visibility (apparent size = radius / distance).
//!
//! Unlike the original (statically precomputed) HDoV tree, objects can be
//! inserted and removed at any time — the aggregates are maintained
//! incrementally, which is exactly the "more robust and dynamic
//! structure" the paper calls for.

use mv_common::geom::{Aabb, Point};
use mv_common::hash::FastMap;
use mv_common::id::EntityId;

/// Level of detail at which an object should be streamed/rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lod {
    /// Tiny on screen: coarse impostor.
    Low,
    /// Moderate: reduced mesh/texture.
    Medium,
    /// Dominant on screen: full detail.
    Full,
}

impl Lod {
    /// Classify a degree of visibility (apparent size, radius/distance).
    pub fn classify(dov: f64) -> Option<Lod> {
        if dov >= FULL_DOV {
            Some(Lod::Full)
        } else if dov >= MEDIUM_DOV {
            Some(Lod::Medium)
        } else if dov >= CULL_DOV {
            Some(Lod::Low)
        } else {
            None
        }
    }

    /// Representative payload size (bytes) for streaming this LOD of an
    /// object whose full representation is `full_bytes` — used by the
    /// dissemination and asset experiments.
    pub fn payload_bytes(self, full_bytes: u64) -> u64 {
        match self {
            Lod::Full => full_bytes,
            Lod::Medium => (full_bytes / 8).max(1),
            Lod::Low => (full_bytes / 64).max(1),
        }
    }
}

/// Apparent size at and above which full detail is used.
pub const FULL_DOV: f64 = 0.10;
/// Apparent size at and above which medium detail is used.
pub const MEDIUM_DOV: f64 = 0.02;
/// Apparent size below which an object is culled entirely.
pub const CULL_DOV: f64 = 0.004;

/// A visible object with its assigned detail level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisibleObject {
    /// The object.
    pub id: EntityId,
    /// Chosen level of detail.
    pub lod: Lod,
    /// Its degree of visibility from the query viewpoint.
    pub dov: f64,
}

#[derive(Debug, Clone, Copy)]
struct SceneObject {
    pos: Point,
    radius: f64,
}

const LEAF_CAP: usize = 16;
const MAX_DEPTH: u32 = 12;

#[derive(Debug)]
struct QNode {
    bounds: Aabb,
    depth: u32,
    /// Aggregates over the whole subtree.
    count: usize,
    max_radius: f64,
    objects: Vec<(EntityId, SceneObject)>,
    children: Option<Box<[QNode; 4]>>,
}

impl QNode {
    fn new(bounds: Aabb, depth: u32) -> Self {
        QNode { bounds, depth, count: 0, max_radius: 0.0, objects: Vec::new(), children: None }
    }

    fn quadrant(&self, p: Point) -> usize {
        let c = self.bounds.center();
        match (p.x >= c.x, p.y >= c.y) {
            (false, false) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (true, true) => 3,
        }
    }

    fn child_bounds(&self, q: usize) -> Aabb {
        let c = self.bounds.center();
        match q {
            0 => Aabb::new(self.bounds.lo, c),
            1 => Aabb::new(Point::new(c.x, self.bounds.lo.y), Point::new(self.bounds.hi.x, c.y)),
            2 => Aabb::new(Point::new(self.bounds.lo.x, c.y), Point::new(c.x, self.bounds.hi.y)),
            _ => Aabb::new(c, self.bounds.hi),
        }
    }

    fn insert(&mut self, id: EntityId, obj: SceneObject) {
        self.count += 1;
        self.max_radius = self.max_radius.max(obj.radius);
        let q = self.quadrant(obj.pos);
        if let Some(children) = &mut self.children {
            children[q].insert(id, obj);
            return;
        }
        self.objects.push((id, obj));
        if self.objects.len() > LEAF_CAP && self.depth < MAX_DEPTH {
            let mut children = Box::new([
                QNode::new(self.child_bounds(0), self.depth + 1),
                QNode::new(self.child_bounds(1), self.depth + 1),
                QNode::new(self.child_bounds(2), self.depth + 1),
                QNode::new(self.child_bounds(3), self.depth + 1),
            ]);
            for (oid, o) in self.objects.drain(..) {
                let q = match (o.pos.x >= self.bounds.center().x, o.pos.y >= self.bounds.center().y)
                {
                    (false, false) => 0,
                    (true, false) => 1,
                    (false, true) => 2,
                    (true, true) => 3,
                };
                children[q].insert(oid, o);
            }
            self.children = Some(children);
        }
    }

    /// Remove by id+position; returns true when found. Aggregates are
    /// recomputed on the path (max_radius may shrink).
    fn remove(&mut self, id: EntityId, pos: Point) -> bool {
        let q = self.quadrant(pos);
        let found = if let Some(children) = &mut self.children {
            children[q].remove(id, pos)
        } else if let Some(i) = self.objects.iter().position(|(e, _)| *e == id) {
            self.objects.swap_remove(i);
            true
        } else {
            false
        };
        if found {
            self.count -= 1;
            self.max_radius = match &self.children {
                Some(children) => children.iter().map(|c| c.max_radius).fold(0.0, f64::max),
                None => self.objects.iter().map(|(_, o)| o.radius).fold(0.0, f64::max),
            };
        }
        found
    }

    fn walkthrough(&self, viewpoint: Point, out: &mut Vec<VisibleObject>, visited: &mut usize) {
        *visited += 1;
        if self.count == 0 {
            return;
        }
        // Upper bound on any descendant's DoV: the largest radius in the
        // subtree over the smallest possible distance to the node's box.
        let min_dist = self.bounds.min_dist(viewpoint);
        let max_dov = if min_dist <= 0.0 { f64::INFINITY } else { self.max_radius / min_dist };
        if max_dov < CULL_DOV {
            return; // whole subtree invisible — the HDoV pruning step
        }
        if let Some(children) = &self.children {
            for c in children.iter() {
                c.walkthrough(viewpoint, out, visited);
            }
        } else {
            for (id, o) in &self.objects {
                let d = viewpoint.dist(o.pos);
                let dov = if d <= 0.0 { f64::INFINITY } else { o.radius / d };
                if let Some(lod) = Lod::classify(dov) {
                    out.push(VisibleObject { id: *id, lod, dov });
                }
            }
        }
    }
}

/// The dynamic HDoV tree.
#[derive(Debug)]
pub struct HdovTree {
    root: QNode,
    objs: FastMap<EntityId, SceneObject>,
}

impl HdovTree {
    /// Create a tree over the given scene bounds.
    pub fn new(bounds: Aabb) -> Self {
        HdovTree { root: QNode::new(bounds, 0), objs: FastMap::default() }
    }

    /// Insert (or relocate) an object with a bounding radius.
    ///
    /// # Panics
    /// Panics if `radius` is not positive and finite.
    pub fn insert(&mut self, id: EntityId, pos: Point, radius: f64) {
        assert!(radius.is_finite() && radius > 0.0, "object radius must be positive");
        if self.objs.contains_key(&id) {
            self.remove(id);
        }
        let pos = Point::new(
            pos.x.clamp(self.root.bounds.lo.x, self.root.bounds.hi.x),
            pos.y.clamp(self.root.bounds.lo.y, self.root.bounds.hi.y),
        );
        let obj = SceneObject { pos, radius };
        self.objs.insert(id, obj);
        self.root.insert(id, obj);
    }

    /// Remove an object.
    pub fn remove(&mut self, id: EntityId) -> bool {
        match self.objs.remove(&id) {
            Some(obj) => self.root.remove(id, obj.pos),
            None => false,
        }
    }

    /// Number of scene objects.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// True when the scene is empty.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    /// A walkthrough query: everything visible from `viewpoint`, with
    /// LODs, plus the number of tree nodes visited (the experiment metric
    /// contrasted with the full-scan baseline).
    pub fn walkthrough(&self, viewpoint: Point) -> (Vec<VisibleObject>, usize) {
        let mut out = Vec::new();
        let mut visited = 0usize;
        self.root.walkthrough(viewpoint, &mut out, &mut visited);
        // Deterministic order: most visible first, ties by id.
        out.sort_by(|a, b| {
            b.dov.total_cmp(&a.dov).then(a.id.cmp(&b.id))
        });
        (out, visited)
    }

    /// The brute-force oracle: classify every object with no pruning.
    pub fn walkthrough_scan(&self, viewpoint: Point) -> Vec<VisibleObject> {
        let mut out: Vec<VisibleObject> = self
            .objs
            .iter()
            .filter_map(|(id, o)| {
                let d = viewpoint.dist(o.pos);
                let dov = if d <= 0.0 { f64::INFINITY } else { o.radius / d };
                Lod::classify(dov).map(|lod| VisibleObject { id: *id, lod, dov })
            })
            .collect();
        out.sort_by(|a, b| {
            b.dov.total_cmp(&a.dov).then(a.id.cmp(&b.id))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use rand::Rng;

    fn e(i: u64) -> EntityId {
        EntityId::new(i)
    }

    fn scene() -> HdovTree {
        HdovTree::new(Aabb::new(Point::ORIGIN, Point::new(1000.0, 1000.0)))
    }

    #[test]
    fn lod_classification_thresholds() {
        assert_eq!(Lod::classify(0.5), Some(Lod::Full));
        assert_eq!(Lod::classify(0.05), Some(Lod::Medium));
        assert_eq!(Lod::classify(0.01), Some(Lod::Low));
        assert_eq!(Lod::classify(0.001), None);
    }

    #[test]
    fn payload_shrinks_with_lod() {
        assert_eq!(Lod::Full.payload_bytes(6400), 6400);
        assert_eq!(Lod::Medium.payload_bytes(6400), 800);
        assert_eq!(Lod::Low.payload_bytes(6400), 100);
        assert_eq!(Lod::Low.payload_bytes(10), 1); // floor of 1 byte
    }

    #[test]
    fn near_object_full_far_object_culled() {
        let mut t = scene();
        t.insert(e(1), Point::new(10.0, 10.0), 2.0);
        t.insert(e(2), Point::new(900.0, 900.0), 2.0);
        let (vis, _) = t.walkthrough(Point::new(5.0, 10.0));
        assert_eq!(vis.len(), 1);
        assert_eq!(vis[0].id, e(1));
        assert_eq!(vis[0].lod, Lod::Full);
    }

    #[test]
    fn large_far_object_still_visible() {
        let mut t = scene();
        t.insert(e(1), Point::new(800.0, 800.0), 50.0); // a "mountain"
        let (vis, _) = t.walkthrough(Point::new(0.0, 0.0));
        assert_eq!(vis.len(), 1);
        assert_eq!(vis[0].lod, Lod::Medium); // 50/1131 ≈ 0.044
    }

    #[test]
    fn matches_scan_oracle() {
        let mut rng = seeded_rng(5);
        let mut t = scene();
        for i in 0..2000u64 {
            let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            t.insert(e(i), p, rng.gen_range(0.1..5.0));
        }
        for _ in 0..20 {
            let vp = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let (vis, _) = t.walkthrough(vp);
            let oracle = t.walkthrough_scan(vp);
            assert_eq!(vis.len(), oracle.len());
            assert_eq!(
                vis.iter().map(|v| (v.id, v.lod)).collect::<Vec<_>>(),
                oracle.iter().map(|v| (v.id, v.lod)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn pruning_visits_fraction_of_nodes() {
        let mut rng = seeded_rng(6);
        let mut t = scene();
        for i in 0..20_000u64 {
            let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            t.insert(e(i), p, rng.gen_range(0.1..1.0));
        }
        let (_, visited) = t.walkthrough(Point::new(500.0, 500.0));
        // Count total nodes by a worst-case query from very far away is
        // impossible (everything culls); instead check visited is far
        // below the object count — pruning must be doing real work.
        assert!(visited < 2000, "visited {visited} nodes for 20k objects");
    }

    #[test]
    fn remove_updates_aggregates() {
        let mut t = scene();
        t.insert(e(1), Point::new(500.0, 500.0), 100.0);
        t.insert(e(2), Point::new(510.0, 500.0), 0.5);
        assert!(t.remove(e(1)));
        assert!(!t.remove(e(1)));
        // From far away, only the big object would have been visible; now
        // the subtree must be culled thanks to the shrunken max_radius.
        let (vis, _) = t.walkthrough(Point::new(0.0, 0.0));
        assert!(vis.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn relocating_object_changes_visibility() {
        let mut t = scene();
        t.insert(e(1), Point::new(900.0, 900.0), 1.0);
        let (vis, _) = t.walkthrough(Point::new(10.0, 10.0));
        assert!(vis.is_empty());
        t.insert(e(1), Point::new(12.0, 10.0), 1.0); // relocate near
        let (vis, _) = t.walkthrough(Point::new(10.0, 10.0));
        assert_eq!(vis.len(), 1);
        assert_eq!(t.len(), 1);
    }
}
