//! The common spatial-index interface and the brute-force baseline.

use mv_common::geom::{Aabb, Point};
use mv_common::hash::FastMap;
use mv_common::id::EntityId;

/// A point index over entities, supporting the update-intensive access
/// pattern §IV-F describes: frequent position updates interleaved with
/// range and k-nearest-neighbour queries.
pub trait SpatialIndex {
    /// Insert an entity at `p`; replaces any previous position.
    fn insert(&mut self, id: EntityId, p: Point);

    /// Remove an entity; returns its last position if present.
    fn remove(&mut self, id: EntityId) -> Option<Point>;

    /// Move an entity to `p` (insert if absent).
    fn update(&mut self, id: EntityId, p: Point) {
        self.remove(id);
        self.insert(id, p);
    }

    /// Current position of an entity.
    fn get(&self, id: EntityId) -> Option<Point>;

    /// All entities inside `area` (boundary inclusive), in arbitrary order.
    fn range(&self, area: &Aabb) -> Vec<EntityId>;

    /// Answer many range probes at once; element `i` equals
    /// `self.range(&areas[i])`. The default is the probe-at-a-time
    /// loop; indexes override it when a shared pass over their
    /// structure amortizes per-probe setup (see
    /// [`crate::GridIndex::range_batch`]).
    fn range_batch(&self, areas: &[Aabb]) -> Vec<Vec<EntityId>> {
        areas.iter().map(|a| self.range(a)).collect()
    }

    /// The `k` entities nearest to `p`, nearest first. Ties are broken by
    /// entity id so results are deterministic.
    fn knn(&self, p: Point, k: usize) -> Vec<EntityId>;

    /// Number of indexed entities.
    fn len(&self) -> usize;

    /// True when the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The O(n)-everything baseline: a flat map scanned on every query.
///
/// Every experiment in E10 compares the real indexes against this; it is
/// also the oracle the property tests check the indexes against.
#[derive(Debug, Default, Clone)]
pub struct ScanIndex {
    positions: FastMap<EntityId, Point>,
}

impl ScanIndex {
    /// An empty baseline index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterate all `(id, position)` pairs, ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, Point)> + '_ {
        let mut all: Vec<(EntityId, Point)> =
            self.positions.iter().map(|(k, v)| (*k, *v)).collect();
        all.sort_unstable_by_key(|&(id, _)| id);
        all.into_iter()
    }
}

impl SpatialIndex for ScanIndex {
    fn insert(&mut self, id: EntityId, p: Point) {
        self.positions.insert(id, p);
    }

    fn remove(&mut self, id: EntityId) -> Option<Point> {
        self.positions.remove(&id)
    }

    fn get(&self, id: EntityId) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    fn range(&self, area: &Aabb) -> Vec<EntityId> {
        let mut hits: Vec<EntityId> = self
            .positions
            .iter()
            .filter(|(_, p)| area.contains(**p))
            .map(|(id, _)| *id)
            .collect();
        hits.sort_unstable();
        hits
    }

    fn knn(&self, p: Point, k: usize) -> Vec<EntityId> {
        let mut all: Vec<(EntityId, f64)> =
            self.positions.iter().map(|(id, q)| (*id, p.dist_sq(*q))).collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all.into_iter().map(|(id, _)| id).collect()
    }

    fn len(&self) -> usize {
        self.positions.len()
    }
}

/// Deterministically sort a query result (helper shared by tests and
/// experiments when comparing index outputs).
pub fn sorted(mut ids: Vec<EntityId>) -> Vec<EntityId> {
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u64) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn insert_get_remove() {
        let mut idx = ScanIndex::new();
        idx.insert(e(1), Point::new(1.0, 1.0));
        assert_eq!(idx.get(e(1)), Some(Point::new(1.0, 1.0)));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.remove(e(1)), Some(Point::new(1.0, 1.0)));
        assert!(idx.is_empty());
        assert_eq!(idx.remove(e(1)), None);
    }

    #[test]
    fn update_moves() {
        let mut idx = ScanIndex::new();
        idx.insert(e(1), Point::new(0.0, 0.0));
        idx.update(e(1), Point::new(5.0, 5.0));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(e(1)), Some(Point::new(5.0, 5.0)));
    }

    #[test]
    fn range_query_boundary_inclusive() {
        let mut idx = ScanIndex::new();
        idx.insert(e(1), Point::new(0.0, 0.0));
        idx.insert(e(2), Point::new(1.0, 1.0));
        idx.insert(e(3), Point::new(2.0, 2.0));
        let hits = sorted(idx.range(&Aabb::new(Point::ORIGIN, Point::new(1.0, 1.0))));
        assert_eq!(hits, vec![e(1), e(2)]);
    }

    #[test]
    fn knn_orders_by_distance_then_id() {
        let mut idx = ScanIndex::new();
        idx.insert(e(10), Point::new(1.0, 0.0));
        idx.insert(e(2), Point::new(2.0, 0.0));
        idx.insert(e(5), Point::new(1.0, 0.0)); // tie with e(10)
        let knn = idx.knn(Point::ORIGIN, 2);
        assert_eq!(knn, vec![e(5), e(10)]);
        // k larger than population returns everyone.
        assert_eq!(idx.knn(Point::ORIGIN, 10).len(), 3);
    }
}
