//! An in-memory R-tree with quadratic splits.
//!
//! Serves two roles: (a) the classic disk-era spatial index the paper's
//! §IV-F implies is a poor fit for update-intensive metaverse workloads —
//! E10 quantifies its update cost against the grid and ST2B trees — and
//! (b) a genuinely fast range/kNN structure for mostly-static data
//! (terrain features, shop footprints).

use crate::index::SpatialIndex;
use mv_common::geom::{Aabb, Point};
use mv_common::hash::FastMap;
use mv_common::id::EntityId;

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 6; // ~40% of MAX, the classic Guttman setting

#[derive(Debug, Clone)]
enum Node {
    Leaf { mbr: Aabb, entries: Vec<(EntityId, Point)> },
    Inner { mbr: Aabb, children: Vec<Node> },
}

impl Node {
    fn mbr(&self) -> Aabb {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => *mbr,
        }
    }

    fn recompute_mbr(&mut self) {
        match self {
            Node::Leaf { mbr, entries } => {
                let mut b = Aabb::new(entries[0].1, entries[0].1);
                for (_, p) in entries.iter().skip(1) {
                    b.expand_to(*p);
                }
                *mbr = b;
            }
            Node::Inner { mbr, children } => {
                let mut b = children[0].mbr();
                for c in children.iter().skip(1) {
                    b = b.union(&c.mbr());
                }
                *mbr = b;
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Inner { children, .. } => 1 + children[0].depth(),
        }
    }
}

/// An R-tree point index.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<Node>,
    positions: FastMap<EntityId, Point>,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// An empty tree.
    pub fn new() -> Self {
        RTree { root: None, positions: FastMap::default() }
    }

    /// Height of the tree (diagnostics; 0 when empty).
    pub fn height(&self) -> usize {
        self.root.as_ref().map_or(0, Node::depth)
    }

    fn insert_rec(node: &mut Node, id: EntityId, p: Point) -> Option<Node> {
        match node {
            Node::Leaf { mbr, entries } => {
                entries.push((id, p));
                mbr.expand_to(p);
                if entries.len() > MAX_ENTRIES {
                    let (a, b) = split_leaf(std::mem::take(entries));
                    let (mbr_a, ent_a) = a;
                    let (mbr_b, ent_b) = b;
                    *node = Node::Leaf { mbr: mbr_a, entries: ent_a };
                    Some(Node::Leaf { mbr: mbr_b, entries: ent_b })
                } else {
                    None
                }
            }
            Node::Inner { mbr, children } => {
                mbr.expand_to(p);
                // Choose the child needing least enlargement (ties: area).
                let pbox = Aabb::new(p, p);
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, c) in children.iter().enumerate() {
                    let enl = c.mbr().enlargement(&pbox);
                    let area = c.mbr().area();
                    if enl < best_enl || (enl == best_enl && area < best_area) {
                        best = i;
                        best_enl = enl;
                        best_area = area;
                    }
                }
                if let Some(split) = Self::insert_rec(&mut children[best], id, p) {
                    children.push(split);
                    if children.len() > MAX_ENTRIES {
                        let (a, b) = split_inner(std::mem::take(children));
                        let (mbr_a, ch_a) = a;
                        let (mbr_b, ch_b) = b;
                        *node = Node::Inner { mbr: mbr_a, children: ch_a };
                        return Some(Node::Inner { mbr: mbr_b, children: ch_b });
                    }
                }
                None
            }
        }
    }

    /// Remove an entry; returns true when found. Underfull nodes are
    /// handled by re-inserting orphaned entries (Guttman's condense step,
    /// simplified: we only condense the path we touched).
    fn remove_rec(node: &mut Node, id: EntityId, p: Point, orphans: &mut Vec<(EntityId, Point)>) -> bool {
        match node {
            Node::Leaf { entries, .. } => {
                if let Some(idx) = entries.iter().position(|(e, _)| *e == id) {
                    entries.swap_remove(idx);
                    if !entries.is_empty() {
                        node.recompute_mbr();
                    }
                    true
                } else {
                    false
                }
            }
            Node::Inner { children, .. } => {
                let mut found = false;
                let mut remove_child: Option<usize> = None;
                for (i, c) in children.iter_mut().enumerate() {
                    if c.mbr().contains(p) && Self::remove_rec(c, id, p, orphans) {
                        found = true;
                        let under = match c {
                            Node::Leaf { entries, .. } => entries.len() < MIN_ENTRIES,
                            Node::Inner { children, .. } => children.len() < MIN_ENTRIES,
                        };
                        if under {
                            remove_child = Some(i);
                        }
                        break;
                    }
                }
                if let Some(i) = remove_child {
                    let removed = children.swap_remove(i);
                    collect_entries(removed, orphans);
                }
                if found && !children.is_empty() {
                    node.recompute_mbr();
                }
                found
            }
        }
    }

    fn range_rec(node: &Node, area: &Aabb, out: &mut Vec<EntityId>) {
        match node {
            Node::Leaf { mbr, entries } => {
                if area.intersects(mbr) {
                    for (id, p) in entries {
                        if area.contains(*p) {
                            out.push(*id);
                        }
                    }
                }
            }
            Node::Inner { mbr, children } => {
                if area.intersects(mbr) {
                    for c in children {
                        Self::range_rec(c, area, out);
                    }
                }
            }
        }
    }
}

fn collect_entries(node: Node, out: &mut Vec<(EntityId, Point)>) {
    match node {
        Node::Leaf { entries, .. } => out.extend(entries),
        Node::Inner { children, .. } => {
            for c in children {
                collect_entries(c, out);
            }
        }
    }
}

/// A split half: the group's bounding box and its members.
type SplitHalf<T> = (Aabb, Vec<T>);
/// A leaf entry: the entity and its position.
type LeafEntry = (EntityId, Point);

/// Guttman's quadratic split over leaf entries.
fn split_leaf(entries: Vec<LeafEntry>) -> (SplitHalf<LeafEntry>, SplitHalf<LeafEntry>) {
    let boxes: Vec<Aabb> = entries.iter().map(|(_, p)| Aabb::new(*p, *p)).collect();
    let (seed_a, seed_b) = pick_seeds(&boxes);
    distribute(entries, boxes, seed_a, seed_b)
}

/// Quadratic split over inner children.
fn split_inner(children: Vec<Node>) -> (SplitHalf<Node>, SplitHalf<Node>) {
    let boxes: Vec<Aabb> = children.iter().map(Node::mbr).collect();
    let (seed_a, seed_b) = pick_seeds(&boxes);
    distribute(children, boxes, seed_a, seed_b)
}

fn pick_seeds(boxes: &[Aabb]) -> (usize, usize) {
    let mut worst = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..boxes.len() {
        for j in (i + 1)..boxes.len() {
            let waste = boxes[i].union(&boxes[j]).area() - boxes[i].area() - boxes[j].area();
            if waste > worst_waste {
                worst_waste = waste;
                worst = (i, j);
            }
        }
    }
    worst
}

fn distribute<T>(items: Vec<T>, boxes: Vec<Aabb>, seed_a: usize, seed_b: usize) -> (SplitHalf<T>, SplitHalf<T>) {
    let total = items.len();
    let mut group_a: Vec<T> = Vec::with_capacity(total);
    let mut group_b: Vec<T> = Vec::with_capacity(total);
    let mut mbr_a = boxes[seed_a];
    let mut mbr_b = boxes[seed_b];
    for (i, (item, bx)) in items.into_iter().zip(boxes.iter()).enumerate() {
        if i == seed_a {
            group_a.push(item);
            continue;
        }
        if i == seed_b {
            group_b.push(item);
            continue;
        }
        // Force balance so neither group can fall below MIN_ENTRIES.
        let remaining_assignable = total - i; // not exact, but conservative
        if group_a.len() + remaining_assignable <= MIN_ENTRIES {
            mbr_a = mbr_a.union(bx);
            group_a.push(item);
            continue;
        }
        if group_b.len() + remaining_assignable <= MIN_ENTRIES {
            mbr_b = mbr_b.union(bx);
            group_b.push(item);
            continue;
        }
        let enl_a = mbr_a.enlargement(bx);
        let enl_b = mbr_b.enlargement(bx);
        if enl_a < enl_b || (enl_a == enl_b && mbr_a.area() <= mbr_b.area()) {
            mbr_a = mbr_a.union(bx);
            group_a.push(item);
        } else {
            mbr_b = mbr_b.union(bx);
            group_b.push(item);
        }
    }
    ((mbr_a, group_a), (mbr_b, group_b))
}

impl SpatialIndex for RTree {
    fn insert(&mut self, id: EntityId, p: Point) {
        if self.positions.contains_key(&id) {
            self.remove(id);
        }
        self.positions.insert(id, p);
        match &mut self.root {
            None => {
                self.root =
                    Some(Node::Leaf { mbr: Aabb::new(p, p), entries: vec![(id, p)] });
            }
            Some(root) => {
                if let Some(split) = Self::insert_rec(root, id, p) {
                    let old = self.root.take().expect("root present");
                    let mbr = old.mbr().union(&split.mbr());
                    self.root = Some(Node::Inner { mbr, children: vec![old, split] });
                }
            }
        }
    }

    fn remove(&mut self, id: EntityId) -> Option<Point> {
        let p = self.positions.remove(&id)?;
        let mut orphans = Vec::new();
        let mut emptied = false;
        if let Some(root) = &mut self.root {
            Self::remove_rec(root, id, p, &mut orphans);
            match root {
                Node::Leaf { entries, .. } if entries.is_empty() => emptied = true,
                Node::Inner { children, .. } => {
                    if children.is_empty() {
                        emptied = true;
                    } else if children.len() == 1 {
                        // Collapse a single-child root.
                        let child = children.pop().expect("len checked");
                        *root = child;
                    }
                }
                _ => {}
            }
        }
        if emptied {
            self.root = None;
        }
        // Re-insert entries orphaned by condensation.
        for (oid, op) in orphans {
            // positions map still holds them; bypass the double-remove.
            match &mut self.root {
                None => {
                    self.root =
                        Some(Node::Leaf { mbr: Aabb::new(op, op), entries: vec![(oid, op)] });
                }
                Some(root) => {
                    if let Some(split) = Self::insert_rec(root, oid, op) {
                        let old = self.root.take().expect("root present");
                        let mbr = old.mbr().union(&split.mbr());
                        self.root = Some(Node::Inner { mbr, children: vec![old, split] });
                    }
                }
            }
        }
        Some(p)
    }

    fn get(&self, id: EntityId) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    fn range(&self, area: &Aabb) -> Vec<EntityId> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::range_rec(root, area, &mut out);
        }
        out
    }

    fn knn(&self, p: Point, k: usize) -> Vec<EntityId> {
        // Best-first search with a min-heap on MBR min-dist.
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        struct HeapItem<'a> {
            dist: f64,
            id: Option<EntityId>, // Some for points, None for nodes
            node: Option<&'a Node>,
        }
        impl PartialEq for HeapItem<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist && self.id == other.id
            }
        }
        impl Eq for HeapItem<'_> {}
        impl PartialOrd for HeapItem<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapItem<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse for min-heap; break distance ties by id so the
                // result order is deterministic.
                other.dist.total_cmp(&self.dist).then_with(|| other.id.cmp(&self.id))
            }
        }

        if k == 0 {
            return Vec::new();
        }
        let mut heap = BinaryHeap::new();
        if let Some(root) = &self.root {
            heap.push(HeapItem { dist: root.mbr().min_dist(p), id: None, node: Some(root) });
        }
        let mut out = Vec::with_capacity(k);
        while let Some(item) = heap.pop() {
            match (item.id, item.node) {
                (Some(id), _) => {
                    out.push(id);
                    if out.len() == k {
                        break;
                    }
                }
                (None, Some(Node::Leaf { entries, .. })) => {
                    for (id, q) in entries {
                        heap.push(HeapItem { dist: p.dist(*q), id: Some(*id), node: None });
                    }
                }
                (None, Some(Node::Inner { children, .. })) => {
                    for c in children {
                        heap.push(HeapItem { dist: c.mbr().min_dist(p), id: None, node: Some(c) });
                    }
                }
                (None, None) => unreachable!("heap items are points or nodes"),
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.positions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{sorted, ScanIndex};
    use mv_common::seeded_rng;
    use proptest::prelude::*;
    use rand::Rng;

    fn e(i: u64) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn grows_and_splits() {
        let mut t = RTree::new();
        for i in 0..200u64 {
            t.insert(e(i), Point::new((i % 20) as f64, (i / 20) as f64));
        }
        assert_eq!(t.len(), 200);
        assert!(t.height() >= 2, "tree should have split, height={}", t.height());
        let all = t.range(&Aabb::everything());
        assert_eq!(all.len(), 200);
    }

    #[test]
    fn range_query_correct() {
        let mut t = RTree::new();
        t.insert(e(1), Point::new(1.0, 1.0));
        t.insert(e(2), Point::new(5.0, 5.0));
        t.insert(e(3), Point::new(9.0, 9.0));
        let hits = sorted(t.range(&Aabb::new(Point::ORIGIN, Point::new(6.0, 6.0))));
        assert_eq!(hits, vec![e(1), e(2)]);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut t = RTree::new();
        for i in 0..100u64 {
            t.insert(e(i), Point::new(i as f64, 0.0));
        }
        for i in 0..50u64 {
            assert_eq!(t.remove(e(i)), Some(Point::new(i as f64, 0.0)));
        }
        assert_eq!(t.remove(e(7)), None);
        assert_eq!(t.len(), 50);
        let all = sorted(t.range(&Aabb::everything()));
        assert_eq!(all, (50..100).map(e).collect::<Vec<_>>());
    }

    #[test]
    fn remove_to_empty_and_reuse() {
        let mut t = RTree::new();
        for i in 0..40u64 {
            t.insert(e(i), Point::new(i as f64, i as f64));
        }
        for i in 0..40u64 {
            t.remove(e(i));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        t.insert(e(1), Point::new(0.0, 0.0));
        assert_eq!(t.range(&Aabb::everything()), vec![e(1)]);
    }

    #[test]
    fn insert_existing_id_relocates() {
        let mut t = RTree::new();
        t.insert(e(1), Point::new(0.0, 0.0));
        t.insert(e(1), Point::new(9.0, 9.0));
        assert_eq!(t.len(), 1);
        assert!(t.range(&Aabb::centered(Point::ORIGIN, 1.0)).is_empty());
        assert_eq!(t.range(&Aabb::centered(Point::new(9.0, 9.0), 1.0)), vec![e(1)]);
    }

    #[test]
    fn randomized_equivalence_with_scan() {
        let mut rng = seeded_rng(7);
        let mut t = RTree::new();
        let mut s = ScanIndex::new();
        for i in 0..600u64 {
            let p = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
            t.insert(e(i), p);
            s.insert(e(i), p);
        }
        for i in 0..300u64 {
            if rng.gen_bool(0.5) {
                let p = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
                t.update(e(i), p);
                s.update(e(i), p);
            } else {
                t.remove(e(i));
                s.remove(e(i));
            }
        }
        for _ in 0..40 {
            let c = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
            let area = Aabb::centered(c, rng.gen_range(1.0..25.0));
            assert_eq!(sorted(t.range(&area)), sorted(s.range(&area)));
        }
        assert_eq!(t.len(), s.len());
    }

    #[test]
    fn knn_matches_scan() {
        let mut rng = seeded_rng(9);
        let mut t = RTree::new();
        let mut s = ScanIndex::new();
        for i in 0..300u64 {
            let p = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
            t.insert(e(i), p);
            s.insert(e(i), p);
        }
        for _ in 0..20 {
            let c = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
            assert_eq!(t.knn(c, 7), s.knn(c, 7));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_rtree_range_equals_scan(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..80),
            qx in -50.0f64..50.0,
            qy in -50.0f64..50.0,
            r in 0.1f64..30.0,
        ) {
            let mut t = RTree::new();
            let mut s = ScanIndex::new();
            for (i, (x, y)) in pts.iter().enumerate() {
                t.insert(e(i as u64), Point::new(*x, *y));
                s.insert(e(i as u64), Point::new(*x, *y));
            }
            let area = Aabb::centered(Point::new(qx, qy), r);
            prop_assert_eq!(sorted(t.range(&area)), sorted(s.range(&area)));
        }
    }
}
