#![forbid(unsafe_code)]
//! `mv-spatial` — spatial indexing for the co-space.
//!
//! §IV-F of the paper: *"The metaverse would have a huge amount of
//! trajectory and virtual walkthrough data, and to facilitate efficient
//! retrieval, efficient indexes are needed"*, calling out the HDoV tree
//! \[71\] for walkthroughs and B+-tree-based moving-object indexes
//! (ST2B-tree \[22\], Bx \[47\]) for locational data, and §IV-G's fourth
//! challenge: *moving queries over moving objects*.
//!
//! This crate implements that toolbox:
//!
//! * [`index`] — the common [`index::SpatialIndex`] trait plus a
//!   brute-force [`index::ScanIndex`] baseline (every experiment needs the
//!   baseline the paper implicitly compares against);
//! * [`grid`] — a uniform-grid index (fast updates, the classic choice
//!   for update-intensive workloads);
//! * [`rtree`] — an in-memory R-tree with quadratic splits (fast range
//!   queries, expensive updates — the static-index strawman);
//! * [`st2b`] — an ST2B-style self-tunable B+-tree over space-filling-curve
//!   keys with two time-rolled logical subtrees and per-region grain
//!   adaptation;
//! * [`hdov`] — an HDoV-style degree-of-visibility hierarchy for virtual
//!   walkthrough queries with level-of-detail answers;
//! * [`movingq`] — continuous range queries from moving observers over
//!   moving objects, with a safe-region optimization vs. naive
//!   re-evaluation;
//! * [`trajectory`] — per-entity position histories with dead-reckoning
//!   compression and time-bucketed spatio-temporal range queries (the
//!   "huge amount of trajectory data" §IV-F opens with).

pub mod grid;
pub mod hdov;
pub mod index;
pub mod movingq;
pub mod rtree;
pub mod st2b;
pub mod trajectory;

pub use grid::GridIndex;
pub use hdov::{HdovTree, Lod, VisibleObject};
pub use index::{ScanIndex, SpatialIndex};
pub use movingq::{MovingQueryEngine, QueryStrategy};
pub use rtree::RTree;
pub use st2b::St2bTree;
pub use trajectory::TrajectoryStore;
