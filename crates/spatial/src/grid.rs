//! Uniform-grid point index.
//!
//! The workhorse for update-intensive movement streams: an update touches
//! exactly two cells (hash-map buckets), a range query enumerates the
//! covered cells. The grid is the index the co-space engine (`mv-core`)
//! uses for the physical space by default.

use crate::index::SpatialIndex;
use mv_common::geom::{Aabb, Point};
use mv_common::hash::FastMap;
use mv_common::id::EntityId;

/// Integer cell coordinates.
type Cell = (i64, i64);

/// A uniform grid over the plane with square cells of `cell_size` metres.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    cells: FastMap<Cell, Vec<EntityId>>,
    positions: FastMap<EntityId, Point>,
}

impl GridIndex {
    /// Create a grid with the given cell size.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite"
        );
        GridIndex { cell_size, cells: FastMap::default(), positions: FastMap::default() }
    }

    /// The configured cell size.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    #[inline]
    fn cell_of(&self, p: Point) -> Cell {
        ((p.x / self.cell_size).floor() as i64, (p.y / self.cell_size).floor() as i64)
    }

    fn remove_from_cell(&mut self, cell: Cell, id: EntityId) {
        if let Some(v) = self.cells.get_mut(&cell) {
            if let Some(pos) = v.iter().position(|&e| e == id) {
                v.swap_remove(pos);
            }
            if v.is_empty() {
                self.cells.remove(&cell);
            }
        }
    }

    /// Number of occupied cells (diagnostics for grain tuning).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Shared body of [`SpatialIndex::range`] and
    /// [`GridIndex::range_batch`]: append `area`'s hits to `out`.
    ///
    /// Huge queries (e.g. `Aabb::everything()`) would enumerate an
    /// astronomically large cell rectangle; when the query covers more
    /// cells than are occupied, walk the occupied cells instead. The
    /// sorted occupied-cell list is built lazily at most once and shared
    /// across a whole batch of probes — with many area-of-interest
    /// probes per grid pass, the sort amortizes to one `O(c log c)`
    /// instead of one per wide probe.
    fn range_one(
        &self,
        area: &Aabb,
        sorted_occupied: &mut Option<Vec<Cell>>,
        out: &mut Vec<EntityId>,
    ) {
        let lo = self.cell_of(area.lo);
        let hi = self.cell_of(area.hi);
        let span = (hi.0 as i128 - lo.0 as i128 + 1)
            .saturating_mul(hi.1 as i128 - lo.1 as i128 + 1);
        if span > self.cells.len() as i128 {
            let occupied = sorted_occupied.get_or_insert_with(|| {
                let mut v: Vec<Cell> = self.cells.keys().copied().collect();
                v.sort_unstable();
                v
            });
            for &cell in occupied.iter() {
                if cell.0 < lo.0 || cell.0 > hi.0 || cell.1 < lo.1 || cell.1 > hi.1 {
                    continue;
                }
                for &id in &self.cells[&cell] {
                    let p = self.positions[&id];
                    if area.contains(p) {
                        out.push(id);
                    }
                }
            }
            return;
        }
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    for &id in ids {
                        // Cells on the query boundary need a point check.
                        let p = self.positions[&id];
                        if area.contains(p) {
                            out.push(id);
                        }
                    }
                }
            }
        }
    }
}

impl SpatialIndex for GridIndex {
    fn insert(&mut self, id: EntityId, p: Point) {
        if let Some(old) = self.positions.insert(id, p) {
            let old_cell = self.cell_of(old);
            let new_cell = self.cell_of(p);
            if old_cell != new_cell {
                self.remove_from_cell(old_cell, id);
                self.cells.entry(new_cell).or_default().push(id);
            }
            return;
        }
        let cell = self.cell_of(p);
        self.cells.entry(cell).or_default().push(id);
    }

    fn remove(&mut self, id: EntityId) -> Option<Point> {
        let p = self.positions.remove(&id)?;
        let cell = self.cell_of(p);
        self.remove_from_cell(cell, id);
        Some(p)
    }

    fn get(&self, id: EntityId) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    fn range(&self, area: &Aabb) -> Vec<EntityId> {
        let mut out = Vec::new();
        self.range_one(area, &mut None, &mut out);
        out
    }

    /// Vectorized probes: one shared occupied-cell pass serves every
    /// wide probe in the batch; narrow probes still walk their own cell
    /// rectangles. Element `i` is byte-identical to `range(&areas[i])`.
    fn range_batch(&self, areas: &[Aabb]) -> Vec<Vec<EntityId>> {
        let mut sorted_occupied: Option<Vec<Cell>> = None;
        areas
            .iter()
            .map(|area| {
                let mut out = Vec::new();
                self.range_one(area, &mut sorted_occupied, &mut out);
                out
            })
            .collect()
    }

    fn knn(&self, p: Point, k: usize) -> Vec<EntityId> {
        if k == 0 || self.positions.is_empty() {
            return Vec::new();
        }
        // Expanding-ring search: examine cells in growing square rings
        // around p; stop once the k-th best distance is no larger than the
        // closest possible point in the next unexplored ring.
        let center = self.cell_of(p);
        let mut best: Vec<(f64, EntityId)> = Vec::with_capacity(k + 1);
        let mut ring = 0i64;
        let max_ring = 1 + (self.positions.len() as f64).sqrt() as i64
            + self
                .cells
                .keys()
                .map(|&(x, y)| (x - center.0).abs().max((y - center.1).abs()))
                .max()
                .unwrap_or(0);
        while ring <= max_ring {
            // Visit cells at Chebyshev distance `ring` from the center.
            let visit = |cell: Cell, best: &mut Vec<(f64, EntityId)>| {
                if let Some(ids) = self.cells.get(&cell) {
                    for &id in ids {
                        let d = p.dist_sq(self.positions[&id]);
                        best.push((d, id));
                    }
                }
            };
            if ring == 0 {
                visit(center, &mut best);
            } else {
                for dx in -ring..=ring {
                    visit((center.0 + dx, center.1 - ring), &mut best);
                    visit((center.0 + dx, center.1 + ring), &mut best);
                }
                for dy in (-ring + 1)..ring {
                    visit((center.0 - ring, center.1 + dy), &mut best);
                    visit((center.0 + ring, center.1 + dy), &mut best);
                }
            }
            best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            best.truncate(k);
            if best.len() == k {
                // Distance to the nearest edge of the next ring.
                let next_ring_dist = ring as f64 * self.cell_size;
                let kth = best[k - 1].0.sqrt();
                if kth <= next_ring_dist {
                    break;
                }
            }
            ring += 1;
        }
        best.into_iter().map(|(_, id)| id).collect()
    }

    fn len(&self) -> usize {
        self.positions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{sorted, ScanIndex};
    use mv_common::seeded_rng;
    use proptest::prelude::*;
    use rand::Rng;

    fn e(i: u64) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn basic_insert_range() {
        let mut g = GridIndex::new(10.0);
        g.insert(e(1), Point::new(5.0, 5.0));
        g.insert(e(2), Point::new(15.0, 5.0));
        g.insert(e(3), Point::new(-5.0, -5.0));
        let hits = sorted(g.range(&Aabb::new(Point::ORIGIN, Point::new(20.0, 10.0))));
        assert_eq!(hits, vec![e(1), e(2)]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn update_across_cells() {
        let mut g = GridIndex::new(1.0);
        g.insert(e(1), Point::new(0.5, 0.5));
        g.update(e(1), Point::new(10.5, 10.5));
        assert_eq!(g.len(), 1);
        assert!(g.range(&Aabb::centered(Point::new(0.5, 0.5), 0.4)).is_empty());
        assert_eq!(g.range(&Aabb::centered(Point::new(10.5, 10.5), 0.4)), vec![e(1)]);
        assert_eq!(g.occupied_cells(), 1);
    }

    #[test]
    fn insert_same_cell_does_not_duplicate() {
        let mut g = GridIndex::new(10.0);
        g.insert(e(1), Point::new(1.0, 1.0));
        g.insert(e(1), Point::new(2.0, 2.0)); // same cell
        let hits = g.range(&Aabb::centered(Point::new(2.0, 2.0), 5.0));
        assert_eq!(hits, vec![e(1)]);
    }

    #[test]
    fn everything_query_terminates_and_returns_all() {
        // Regression: the unbounded box used to enumerate 2^64 cells (and
        // its cell-span product overflowed i128). Must be instant.
        let mut g = GridIndex::new(500.0);
        for i in 0..1000u64 {
            g.insert(e(i), Point::new((i % 317) as f64 * 300.0, (i % 211) as f64 * 300.0));
        }
        let t0 = std::time::Instant::now();
        let all = g.range(&Aabb::everything());
        assert_eq!(all.len(), 1000);
        assert!(t0.elapsed().as_millis() < 1000, "everything() too slow");
    }

    #[test]
    fn knn_matches_scan_on_fixed_case() {
        let mut g = GridIndex::new(2.0);
        let mut s = ScanIndex::new();
        let pts = [(0.0, 0.0), (1.0, 1.0), (3.0, 0.0), (10.0, 10.0), (-2.0, 1.0)];
        for (i, (x, y)) in pts.iter().enumerate() {
            g.insert(e(i as u64), Point::new(*x, *y));
            s.insert(e(i as u64), Point::new(*x, *y));
        }
        for k in 0..=5 {
            assert_eq!(g.knn(Point::new(0.2, 0.1), k), s.knn(Point::new(0.2, 0.1), k), "k={k}");
        }
    }

    #[test]
    fn randomized_equivalence_with_scan() {
        let mut rng = seeded_rng(42);
        let mut g = GridIndex::new(7.0);
        let mut s = ScanIndex::new();
        for i in 0..500u64 {
            let p = Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0));
            g.insert(e(i), p);
            s.insert(e(i), p);
        }
        // Random updates and removals.
        for i in 0..200u64 {
            let p = Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0));
            g.update(e(i), p);
            s.update(e(i), p);
        }
        for i in 300..350u64 {
            assert_eq!(g.remove(e(i)), s.remove(e(i)));
        }
        for _ in 0..50 {
            let c = Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0));
            let r = rng.gen_range(1.0..40.0);
            let area = Aabb::centered(c, r);
            assert_eq!(sorted(g.range(&area)), sorted(s.range(&area)));
            assert_eq!(g.knn(c, 5), s.knn(c, 5));
        }
        assert_eq!(g.len(), s.len());
    }

    #[test]
    fn range_batch_matches_per_probe_range_including_wide_probes() {
        let mut rng = seeded_rng(8);
        let mut g = GridIndex::new(5.0);
        for i in 0..400u64 {
            g.insert(e(i), Point::new(rng.gen_range(-200.0..200.0), rng.gen_range(-200.0..200.0)));
        }
        // Mix of narrow probes (rect walk), wide probes (occupied-cell
        // walk), and the unbounded box.
        let mut areas: Vec<Aabb> = (0..32)
            .map(|_| {
                let c = Point::new(rng.gen_range(-200.0..200.0), rng.gen_range(-200.0..200.0));
                Aabb::centered(c, rng.gen_range(1.0..30.0))
            })
            .collect();
        areas.push(Aabb::centered(Point::ORIGIN, 10_000.0));
        areas.push(Aabb::everything());
        let batch = g.range_batch(&areas);
        assert_eq!(batch.len(), areas.len());
        for (i, area) in areas.iter().enumerate() {
            assert_eq!(batch[i], g.range(area), "probe {i} diverged from range()");
        }
    }

    #[test]
    fn range_batch_on_empty_input_and_empty_index() {
        let g = GridIndex::new(5.0);
        assert!(g.range_batch(&[]).is_empty());
        let probes = [Aabb::centered(Point::ORIGIN, 5.0)];
        assert_eq!(g.range_batch(&probes), vec![Vec::new()]);
    }

    proptest! {
        #[test]
        fn prop_range_batch_equals_scan_per_probe(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..60),
            probes in proptest::collection::vec(
                (-50.0f64..50.0, -50.0f64..50.0, 0.1f64..60.0), 1..8),
            cell in 0.5f64..20.0,
        ) {
            let mut g = GridIndex::new(cell);
            let mut s = ScanIndex::new();
            for (i, (x, y)) in pts.iter().enumerate() {
                g.insert(e(i as u64), Point::new(*x, *y));
                s.insert(e(i as u64), Point::new(*x, *y));
            }
            let areas: Vec<Aabb> = probes
                .iter()
                .map(|&(x, y, r)| Aabb::centered(Point::new(x, y), r))
                .collect();
            let batch = g.range_batch(&areas);
            for (i, area) in areas.iter().enumerate() {
                prop_assert_eq!(sorted(batch[i].clone()), sorted(s.range(area)));
            }
        }

        #[test]
        fn prop_grid_range_equals_scan(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..60),
            qx in -50.0f64..50.0,
            qy in -50.0f64..50.0,
            r in 0.1f64..30.0,
            cell in 0.5f64..20.0,
        ) {
            let mut g = GridIndex::new(cell);
            let mut s = ScanIndex::new();
            for (i, (x, y)) in pts.iter().enumerate() {
                g.insert(e(i as u64), Point::new(*x, *y));
                s.insert(e(i as u64), Point::new(*x, *y));
            }
            let area = Aabb::centered(Point::new(qx, qy), r);
            prop_assert_eq!(sorted(g.range(&area)), sorted(s.range(&area)));
        }

        #[test]
        fn prop_grid_knn_equals_scan(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..40),
            qx in -50.0f64..50.0,
            qy in -50.0f64..50.0,
            k in 1usize..8,
        ) {
            let mut g = GridIndex::new(5.0);
            let mut s = ScanIndex::new();
            for (i, (x, y)) in pts.iter().enumerate() {
                g.insert(e(i as u64), Point::new(*x, *y));
                s.insert(e(i as u64), Point::new(*x, *y));
            }
            prop_assert_eq!(g.knn(Point::new(qx, qy), k), s.knn(Point::new(qx, qy), k));
        }
    }
}
