//! The `Metaverse` engine: Fig. 1's bidirectional loop.
//!
//! Ground-truth movement lands in the authoritative space's spatial
//! index immediately; the *other* space's materialized twin is refreshed
//! only when the divergence exceeds the sync policy's coherency bound —
//! §IV-C's "keep the virtual world as close to the real world as
//! possible … tolerate some degree of discrepancies", which is what
//! makes the cross-space traffic affordable. Virtual actions (area
//! effects) query the virtual index and produce commands relayed to
//! physical actors.

use crate::arena::{EntityArena, EntityRef};
use crate::entity::{Entity, EntityKind};
use crate::events::{Command, CoEvent, EventBus, EventKind};
use mv_common::geom::{Aabb, Point};
use mv_common::id::{EntityId, IdGen};
use mv_common::metrics::Counters;
use mv_common::time::SimTime;
use mv_common::Space;
use mv_common::{MvError, MvResult};
use mv_spatial::{GridIndex, SpatialIndex};

/// Synchronization policy for the cross-space boundary.
#[derive(Debug, Clone, Copy)]
pub struct SyncPolicy {
    /// Twin positions may lag ground truth by up to this distance
    /// (metres) before a sync message is forced.
    pub position_bound: f64,
    /// Attribute values may drift by this much before syncing.
    pub attr_bound: f64,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy { position_bound: 1.0, attr_bound: 0.0 }
    }
}

/// The co-space engine.
pub struct Metaverse {
    policy: SyncPolicy,
    /// Struct-of-arrays entity storage: dense hot columns behind stable
    /// u32 slots (see [`EntityArena`]).
    entities: EntityArena,
    /// Spatial index over *ground-truth* positions, per authoritative space.
    truth_index: [GridIndex; 2],
    /// Spatial index over *twin* positions, per materialized space (the
    /// index entry lives in the OPPOSITE space of the entity's authority).
    twin_index: [GridIndex; 2],
    ids: IdGen,
    bus: EventBus,
    clock: SimTime,
    /// `sync_msgs`, `suppressed_syncs`, `commands` counters.
    pub stats: Counters,
}

fn space_slot(space: Space) -> usize {
    match space {
        Space::Physical => 0,
        Space::Virtual => 1,
    }
}

impl Metaverse {
    /// Build with a policy; `cell_size` configures all spatial indexes.
    pub fn new(policy: SyncPolicy, cell_size: f64) -> Self {
        Metaverse {
            policy,
            entities: EntityArena::new(),
            truth_index: [GridIndex::new(cell_size), GridIndex::new(cell_size)],
            twin_index: [GridIndex::new(cell_size), GridIndex::new(cell_size)],
            ids: IdGen::new(),
            bus: EventBus::new(),
            clock: SimTime::ZERO,
            stats: Counters::new(),
        }
    }

    /// Default policy, 50 m grid cells.
    pub fn with_defaults() -> Self {
        Metaverse::new(SyncPolicy::default(), 50.0)
    }

    /// Current engine time (max over observed update times).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    fn advance(&mut self, now: SimTime) {
        self.clock = self.clock.max(now);
    }

    /// Register an entity; it is immediately materialized in both spaces.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        kind: EntityKind,
        position: Point,
        now: SimTime,
    ) -> EntityId {
        let id: EntityId = self.ids.next();
        self.insert_prebuilt(Entity::new(id, name, kind, position), now);
        id
    }

    /// Insert an entity whose id was allocated elsewhere (the sharded
    /// engine allocates ids globally, then routes each entity to its
    /// owner shard). Identical materialization semantics to [`spawn`].
    ///
    /// [`spawn`]: Metaverse::spawn
    pub(crate) fn insert_prebuilt(&mut self, entity: Entity, now: SimTime) {
        self.advance(now);
        let id = entity.id;
        let position = entity.position;
        let auth = entity.kind.authoritative_space();
        self.truth_index[space_slot(auth)].insert(id, position);
        self.twin_index[space_slot(auth.other())].insert(id, position);
        self.entities.insert(entity);
        self.bus.emit(now, auth, Some(id), EventKind::Moved);
    }

    /// Access an entity as a borrowed column view.
    pub fn entity(&self, id: EntityId) -> MvResult<EntityRef<'_>> {
        self.entities.get(id).ok_or(MvError::not_found("entity", id.raw()))
    }

    /// Number of live (non-retired) entities (O(1): the arena keeps
    /// the count).
    pub fn live_count(&self) -> usize {
        self.entities.live_count()
    }

    /// Move an entity's ground truth (in its authoritative space). The
    /// twin in the other space syncs only if the coherency bound is
    /// violated. Returns true when a sync message crossed the boundary.
    pub fn update_position(&mut self, id: EntityId, position: Point, now: SimTime) -> MvResult<bool> {
        self.advance(now);
        let policy = self.policy;
        let slot = self
            .entities
            .slot_of(id)
            .ok_or(MvError::not_found("entity", id.raw()))?;
        if self.entities.retired(slot) {
            return Err(MvError::IllegalState(format!("entity {id} is retired")));
        }
        self.entities.set_position(slot, position);
        let auth = self.entities.kind(slot).authoritative_space();
        self.truth_index[space_slot(auth)].update(id, position);
        let diverged = self.entities.divergence(slot) > policy.position_bound;
        if diverged {
            self.entities.set_twin_position(slot, position);
            self.twin_index[space_slot(auth.other())].update(id, position);
            self.stats.incr("sync_msgs");
            self.bus.emit(now, auth.other(), Some(id), EventKind::TwinSynced);
        } else {
            self.stats.incr("suppressed_syncs");
        }
        Ok(diverged)
    }

    /// Update an attribute of the entity (authoritative-space write);
    /// relayed when it moves more than the attr bound. Returns true when
    /// a sync message crossed the boundary (mirrors [`update_position`]).
    ///
    /// [`update_position`]: Metaverse::update_position
    pub fn update_attr(&mut self, id: EntityId, name: &str, value: f64, now: SimTime) -> MvResult<bool> {
        self.advance(now);
        let policy = self.policy;
        let slot = self
            .entities
            .slot_of(id)
            .ok_or(MvError::not_found("entity", id.raw()))?;
        if self.entities.retired(slot) {
            return Err(MvError::IllegalState(format!("entity {id} is retired")));
        }
        let old = self.entities.attr(slot, name);
        self.entities.set_attr(slot, name, value);
        let relayed = (value - old).abs() > policy.attr_bound;
        if relayed {
            let auth = self.entities.kind(slot).authoritative_space();
            self.stats.incr("sync_msgs");
            self.bus.emit(
                now,
                auth.other(),
                Some(id),
                EventKind::AttrChanged { name: name.to_string(), value },
            );
        } else {
            self.stats.incr("suppressed_syncs");
        }
        Ok(relayed)
    }

    /// Ground-truth entities of `space` within `area` (its authoritative
    /// residents), excluding retired ones, sorted by id.
    pub fn query_truth(&self, space: Space, area: &Aabb) -> Vec<EntityId> {
        let mut ids: Vec<EntityId> = self.truth_index[space_slot(space)]
            .range(area)
            .into_iter()
            .filter(|&id| !self.entities.is_retired(id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Entities *visible in* `space` within `area`: its own residents
    /// plus materialized twins from the other space — the unified view a
    /// user immersed in that space actually sees.
    pub fn query_visible(&self, space: Space, area: &Aabb) -> Vec<EntityId> {
        let mut ids = self.query_truth(space, area);
        ids.extend(
            self.twin_index[space_slot(space)]
                .range(area)
                .into_iter()
                .filter(|&id| !self.entities.is_retired(id)),
        );
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Batched [`query_truth`]: element `i` equals
    /// `query_truth(space, &areas[i])`. All probes share one grid pass
    /// ([`GridIndex::range_batch`]), so wide probes amortize the
    /// occupied-cell sweep instead of repeating it per query.
    ///
    /// [`query_truth`]: Metaverse::query_truth
    pub fn query_truth_batch(&self, space: Space, areas: &[Aabb]) -> Vec<Vec<EntityId>> {
        self.truth_index[space_slot(space)]
            .range_batch(areas)
            .into_iter()
            .map(|hits| {
                let mut ids: Vec<EntityId> =
                    hits.into_iter().filter(|&id| !self.entities.is_retired(id)).collect();
                ids.sort_unstable();
                ids
            })
            .collect()
    }

    /// Batched [`query_visible`]: element `i` equals
    /// `query_visible(space, &areas[i])`, with one shared grid pass per
    /// index for the whole probe set.
    ///
    /// [`query_visible`]: Metaverse::query_visible
    pub fn query_visible_batch(&self, space: Space, areas: &[Aabb]) -> Vec<Vec<EntityId>> {
        let slot = space_slot(space);
        let truth = self.truth_index[slot].range_batch(areas);
        let twins = self.twin_index[slot].range_batch(areas);
        truth
            .into_iter()
            .zip(twins)
            .map(|(t, w)| {
                let mut ids: Vec<EntityId> = t
                    .into_iter()
                    .chain(w)
                    .filter(|&id| !self.entities.is_retired(id))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect()
    }

    /// Raise an area effect in `space` (e.g. a virtual air-raid). Every
    /// entity *visible in that space* inside the region whose authority is
    /// the other space gets a relayed command — Fig. 1's virtual→physical
    /// arrow. Affected entities are retired when `retire` is set (the
    /// paper's "the troops should perish").
    pub fn area_effect(
        &mut self,
        space: Space,
        effect: &str,
        region: Aabb,
        action: &str,
        retire: bool,
        now: SimTime,
    ) -> Vec<Command> {
        self.note_area_effect(space, effect, region, now);
        let mut sorted = self.affected_twins(space, &region);
        sorted.sort_unstable();
        let mut commands = Vec::with_capacity(sorted.len());
        for id in sorted {
            commands.push(self.relay_command(id, action, retire, now));
        }
        commands
    }

    /// Record the area-effect fact on the timeline (first half of
    /// [`area_effect`]; split out so the sharded engine can emit it once
    /// while fanning the target scan out across shards).
    ///
    /// [`area_effect`]: Metaverse::area_effect
    pub(crate) fn note_area_effect(&mut self, space: Space, effect: &str, region: Aabb, now: SimTime) {
        self.advance(now);
        self.bus.emit(
            now,
            space,
            None,
            EventKind::AreaEffect { effect: effect.to_string(), region },
        );
    }

    /// Live twins materialized in `space` inside `region` — the targets an
    /// area effect raised in that space would hit (unsorted).
    pub(crate) fn affected_twins(&self, space: Space, region: &Aabb) -> Vec<EntityId> {
        self.twin_index[space_slot(space)]
            .range(region)
            .into_iter()
            .filter(|&id| !self.entities.is_retired(id))
            .collect()
    }

    /// Relay one area-effect command to a live entity owned by this
    /// engine, retiring it when requested (second half of
    /// [`area_effect`]).
    ///
    /// [`area_effect`]: Metaverse::area_effect
    pub(crate) fn relay_command(&mut self, id: EntityId, action: &str, retire: bool, now: SimTime) -> Command {
        let slot = self.entities.slot_of(id).expect("affected twin is registered");
        let target_space = self.entities.kind(slot).authoritative_space();
        let command = Command {
            target_space,
            entity: id,
            action: action.to_string(),
            ts: now,
        };
        self.stats.incr("commands");
        if retire {
            self.retire(id, now).expect("entity exists and is live");
        }
        command
    }

    /// Retire an entity from both spaces.
    pub fn retire(&mut self, id: EntityId, now: SimTime) -> MvResult<()> {
        self.advance(now);
        let slot = self
            .entities
            .slot_of(id)
            .ok_or(MvError::not_found("entity", id.raw()))?;
        if self.entities.retired(slot) {
            return Err(MvError::IllegalState(format!("entity {id} already retired")));
        }
        self.entities.retire(slot);
        let auth = self.entities.kind(slot).authoritative_space();
        self.truth_index[space_slot(auth)].remove(id);
        self.twin_index[space_slot(auth.other())].remove(id);
        self.bus.emit(now, auth, Some(id), EventKind::Retired);
        Ok(())
    }

    /// Mean divergence between truth and twins over live entities — the
    /// §IV-C consistency metric E1 reports.
    pub fn mean_divergence(&self) -> f64 {
        let (sum, _, count) = self.divergence_parts();
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Maximum divergence over live entities.
    pub fn max_divergence(&self) -> f64 {
        self.divergence_parts().1
    }

    /// `(sum, max, live count)` of twin divergences — the shard-mergeable
    /// form of [`mean_divergence`]/[`max_divergence`] (sums and maxima
    /// combine across shards; means do not). Max is 0 with no live
    /// entities, mirroring the public accessors.
    ///
    /// [`mean_divergence`]: Metaverse::mean_divergence
    /// [`max_divergence`]: Metaverse::max_divergence
    pub(crate) fn divergence_parts(&self) -> (f64, f64, usize) {
        // f64 addition is not associative, so the arena folds in
        // ascending-id order — one sequential pass over the dense
        // position columns when spawn order was id order (it always is;
        // the arena falls back to a sort if not).
        self.entities.divergence_parts()
    }

    /// Drain the event log.
    pub fn drain_events(&mut self) -> Vec<CoEvent> {
        self.bus.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use rand::Rng;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn spawn_materializes_in_both_spaces() {
        let mut mv = Metaverse::with_defaults();
        let id = mv.spawn("alice", EntityKind::Person, Point::new(5.0, 5.0), t(0));
        let area = Aabb::centered(Point::new(5.0, 5.0), 1.0);
        assert_eq!(mv.query_truth(Space::Physical, &area), vec![id]);
        // Alice's twin is visible in the virtual space.
        assert_eq!(mv.query_visible(Space::Virtual, &area), vec![id]);
        // But she is not a virtual-authoritative resident.
        assert!(mv.query_truth(Space::Virtual, &area).is_empty());
    }

    #[test]
    fn small_moves_suppress_sync_large_moves_force_it() {
        let mut mv = Metaverse::new(SyncPolicy { position_bound: 2.0, attr_bound: 0.0 }, 50.0);
        let id = mv.spawn("s", EntityKind::Person, Point::ORIGIN, t(0));
        assert!(!mv.update_position(id, Point::new(1.0, 0.0), t(1)).unwrap());
        assert!(!mv.update_position(id, Point::new(1.9, 0.0), t(2)).unwrap());
        assert_eq!(mv.stats.get("suppressed_syncs"), 2);
        assert!(mv.update_position(id, Point::new(4.0, 0.0), t(3)).unwrap());
        assert_eq!(mv.stats.get("sync_msgs"), 1);
        // After the sync, divergence resets.
        assert_eq!(mv.entity(id).unwrap().divergence(), 0.0);
    }

    #[test]
    fn divergence_never_exceeds_bound_after_update() {
        let mut mv = Metaverse::new(SyncPolicy { position_bound: 3.0, attr_bound: 0.0 }, 50.0);
        let mut rng = seeded_rng(4);
        let mut ids = Vec::new();
        for i in 0..50 {
            ids.push(mv.spawn(format!("e{i}"), EntityKind::Vehicle, Point::ORIGIN, t(0)));
        }
        for step in 1..200u64 {
            for &id in &ids {
                let cur = mv.entity(id).unwrap().position;
                let next = Point::new(
                    cur.x + rng.gen_range(-2.0..2.0),
                    cur.y + rng.gen_range(-2.0..2.0),
                );
                mv.update_position(id, next, t(step)).unwrap();
            }
            assert!(
                mv.max_divergence() <= 3.0 + 1e-9,
                "bound violated at step {step}: {}",
                mv.max_divergence()
            );
        }
        // The bound must have actually saved messages.
        assert!(mv.stats.get("suppressed_syncs") > mv.stats.get("sync_msgs"));
    }

    #[test]
    fn virtual_air_raid_perishes_physical_troops_in_region() {
        let mut mv = Metaverse::with_defaults();
        let in_zone = mv.spawn("t1", EntityKind::Person, Point::new(10.0, 10.0), t(0));
        let outside = mv.spawn("t2", EntityKind::Person, Point::new(200.0, 200.0), t(0));
        let cmds = mv.area_effect(
            Space::Virtual,
            "air_raid",
            Aabb::centered(Point::new(10.0, 10.0), 20.0),
            "perish",
            true,
            t(5),
        );
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].entity, in_zone);
        assert_eq!(cmds[0].target_space, Space::Physical);
        assert_eq!(cmds[0].action, "perish");
        assert!(mv.entity(in_zone).unwrap().retired);
        assert!(!mv.entity(outside).unwrap().retired);
        assert_eq!(mv.live_count(), 1);
        // Retired entities vanish from queries.
        assert!(mv
            .query_visible(Space::Virtual, &Aabb::centered(Point::new(10.0, 10.0), 20.0))
            .is_empty());
    }

    #[test]
    fn stale_twin_position_affects_area_targeting() {
        // The §IV-C trade-off made visible: with a loose bound, a troop
        // that moved out of the blast zone *physically* can still be hit
        // because the virtual twin lags.
        let mut mv = Metaverse::new(SyncPolicy { position_bound: 50.0, attr_bound: 0.0 }, 50.0);
        let id = mv.spawn("t", EntityKind::Person, Point::new(10.0, 10.0), t(0));
        // Physically walks 30 m away — under the 50 m bound, no sync.
        mv.update_position(id, Point::new(40.0, 10.0), t(1)).unwrap();
        assert_eq!(mv.entity(id).unwrap().twin_position, Point::new(10.0, 10.0));
        let cmds = mv.area_effect(
            Space::Virtual,
            "air_raid",
            Aabb::centered(Point::new(10.0, 10.0), 5.0),
            "perish",
            true,
            t(2),
        );
        assert_eq!(cmds.len(), 1, "the stale twin is in the zone");
    }

    #[test]
    fn attr_updates_relay_and_retired_entities_reject_moves() {
        let mut mv = Metaverse::with_defaults();
        let id = mv.spawn("p", EntityKind::Product, Point::ORIGIN, t(0));
        mv.update_attr(id, "stock", 10.0, t(1)).unwrap();
        assert_eq!(mv.entity(id).unwrap().attr("stock"), 10.0);
        let events = mv.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::AttrChanged { name, value } if name == "stock" && *value == 10.0)));
        mv.retire(id, t(2)).unwrap();
        assert!(mv.update_position(id, Point::new(1.0, 1.0), t(3)).is_err());
        assert!(mv.retire(id, t(4)).is_err());
    }

    #[test]
    fn identical_positions_across_spaces_stay_distinct() {
        // A physical person and a virtual avatar at the exact same
        // coordinates: truth queries keep them apart (each is resident
        // in its own space), while both spaces *see* both of them.
        let mut mv = Metaverse::with_defaults();
        let p = Point::new(7.0, 7.0);
        let person = mv.spawn("p", EntityKind::Person, p, t(0));
        let avatar = mv.spawn("a", EntityKind::Avatar, p, t(0));
        let sensor = mv.spawn("s", EntityKind::Sensor, p, t(0));
        let area = Aabb::centered(p, 1.0);
        assert_eq!(mv.query_truth(Space::Physical, &area), vec![person, sensor]);
        assert_eq!(mv.query_truth(Space::Virtual, &area), vec![avatar]);
        for space in Space::ALL {
            assert_eq!(mv.query_visible(space, &area), vec![person, avatar, sensor]);
        }
    }

    #[test]
    fn area_effect_without_retire_leaves_entities_queryable() {
        let mut mv = Metaverse::with_defaults();
        let id = mv.spawn("t", EntityKind::Person, Point::new(10.0, 10.0), t(0));
        let zone = Aabb::centered(Point::new(10.0, 10.0), 5.0);
        let cmds = mv.area_effect(Space::Virtual, "warning_siren", zone, "take_cover", false, t(1));
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].entity, id);
        assert!(!mv.entity(id).unwrap().retired);
        assert_eq!(mv.live_count(), 1);
        assert_eq!(mv.query_visible(Space::Virtual, &zone), vec![id]);
        // A second effect hits the same (still live) target again.
        let again = mv.area_effect(Space::Virtual, "warning_siren", zone, "take_cover", false, t(2));
        assert_eq!(again.len(), 1);
        assert_eq!(mv.stats.get("commands"), 2);
    }

    #[test]
    fn update_attr_on_retired_entity_errors() {
        let mut mv = Metaverse::with_defaults();
        let id = mv.spawn("p", EntityKind::Product, Point::ORIGIN, t(0));
        mv.update_attr(id, "stock", 5.0, t(1)).unwrap();
        mv.retire(id, t(2)).unwrap();
        let err = mv.update_attr(id, "stock", 7.0, t(3)).unwrap_err();
        assert!(matches!(err, MvError::IllegalState(_)), "got {err:?}");
        // The write was rejected, not half-applied.
        assert_eq!(mv.entity(id).unwrap().attr("stock"), 5.0);
    }

    #[test]
    fn divergence_metrics_are_zero_when_all_entities_retired() {
        let mut mv = Metaverse::new(SyncPolicy { position_bound: 100.0, attr_bound: 0.0 }, 50.0);
        let a = mv.spawn("a", EntityKind::Person, Point::ORIGIN, t(0));
        let b = mv.spawn("b", EntityKind::Vehicle, Point::ORIGIN, t(0));
        // Build up real divergence first (under the loose bound, no sync).
        mv.update_position(a, Point::new(30.0, 0.0), t(1)).unwrap();
        mv.update_position(b, Point::new(0.0, 40.0), t(1)).unwrap();
        assert!(mv.mean_divergence() > 0.0);
        assert!(mv.max_divergence() > 0.0);
        mv.retire(a, t(2)).unwrap();
        mv.retire(b, t(2)).unwrap();
        assert_eq!(mv.live_count(), 0);
        assert_eq!(mv.mean_divergence(), 0.0);
        assert_eq!(mv.max_divergence(), 0.0);
    }

    #[test]
    fn unknown_entity_errors() {
        let mut mv = Metaverse::with_defaults();
        assert!(mv.entity(EntityId::new(9)).is_err());
        assert!(mv.update_position(EntityId::new(9), Point::ORIGIN, t(0)).is_err());
        assert!(mv.update_attr(EntityId::new(9), "x", 1.0, t(0)).is_err());
    }

    #[test]
    fn avatars_are_virtual_authoritative() {
        let mut mv = Metaverse::with_defaults();
        let id = mv.spawn("npc", EntityKind::Avatar, Point::new(3.0, 3.0), t(0));
        let area = Aabb::centered(Point::new(3.0, 3.0), 1.0);
        assert_eq!(mv.query_truth(Space::Virtual, &area), vec![id]);
        // The avatar's twin is what physical users see (e.g. via AR).
        assert_eq!(mv.query_visible(Space::Physical, &area), vec![id]);
    }
}
