//! Replayable co-space operations — the differential-testing op model.
//!
//! The sharded engine's equivalence claim is only as strong as the op
//! coverage thrown at it, so this module defines (1) a closed [`Op`]
//! vocabulary covering every public mutation and query of the engine,
//! (2) a seeded generator producing arbitrary-but-valid op sequences
//! (slots reference previously spawned entities, so error paths like
//! "move a retired entity" arise organically), and (3) a [`CoSpace`]
//! facade implemented by both [`Metaverse`] and [`ShardedMetaverse`] so
//! one replay loop drives either engine and yields comparable
//! fingerprints. `tests/sharded_differential.rs` is the consumer.

use crate::engine::Metaverse;
use crate::entity::EntityKind;
use crate::events::{CoEvent, Command};
use crate::sharded::{ShardedMetaverse, WriteOp};
use mv_common::geom::{Aabb, Point};
use mv_common::id::EntityId;
use mv_common::metrics::Counters;
use mv_common::time::SimTime;
use mv_common::{MvResult, Space};
use rand::rngs::StdRng;
use rand::Rng;

/// One replayable operation. `slot` fields index the list of ids
/// returned by spawns so far (op sequences stay meaningful without
/// knowing concrete ids up front).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Register an entity.
    Spawn {
        /// Entity name.
        name: String,
        /// Entity kind (decides the authoritative space).
        kind: EntityKind,
        /// Initial position.
        position: Point,
    },
    /// Move the `slot`-th spawned entity's ground truth.
    Move {
        /// Index into the spawned-id list.
        slot: usize,
        /// New position.
        position: Point,
    },
    /// Write an attribute of the `slot`-th spawned entity.
    Attr {
        /// Index into the spawned-id list.
        slot: usize,
        /// Attribute name.
        name: String,
        /// New value.
        value: f64,
    },
    /// Retire the `slot`-th spawned entity.
    Retire {
        /// Index into the spawned-id list.
        slot: usize,
    },
    /// Raise an area effect.
    AreaEffect {
        /// Space the effect is raised in.
        space: Space,
        /// Effect tag.
        effect: String,
        /// Affected region.
        region: Aabb,
        /// Relayed action tag.
        action: String,
        /// Whether victims are retired.
        retire: bool,
    },
    /// Ground-truth range query.
    QueryTruth {
        /// Queried space.
        space: Space,
        /// Queried area.
        area: Aabb,
    },
    /// Visible-set range query.
    QueryVisible {
        /// Queried space.
        space: Space,
        /// Queried area.
        area: Aabb,
    },
}

const KINDS: [EntityKind; 6] = [
    EntityKind::Person,
    EntityKind::Vehicle,
    EntityKind::Sensor,
    EntityKind::Product,
    EntityKind::Avatar,
    EntityKind::SceneObject,
];

/// Generate `count` ops inside a `world`-sized square. The mix leans on
/// moves (the hot path) but exercises every variant, including ops that
/// will fail (moves/attrs/retires of already-retired entities). The
/// first op is always a spawn so slot-addressed ops have a target.
pub fn gen_ops(rng: &mut StdRng, count: usize, world: f64) -> Vec<Op> {
    let mut ops = Vec::with_capacity(count);
    let mut spawned = 0usize;
    let point = |rng: &mut StdRng| Point::new(rng.gen_range(0.0..world), rng.gen_range(0.0..world));
    let space = |rng: &mut StdRng| if rng.gen_bool(0.5) { Space::Physical } else { Space::Virtual };
    for i in 0..count {
        let roll: f64 = if spawned == 0 { 0.0 } else { rng.gen_range(0.0..1.0) };
        let op = if roll < 0.18 {
            spawned += 1;
            Op::Spawn {
                name: format!("e{i}"),
                kind: KINDS[rng.gen_range(0..KINDS.len())],
                position: point(rng),
            }
        } else if roll < 0.58 {
            Op::Move { slot: rng.gen_range(0..spawned), position: point(rng) }
        } else if roll < 0.70 {
            Op::Attr {
                slot: rng.gen_range(0..spawned),
                name: ["health", "stock", "score"][rng.gen_range(0..3)].to_string(),
                value: rng.gen_range(-10.0..10.0),
            }
        } else if roll < 0.76 {
            Op::Retire { slot: rng.gen_range(0..spawned) }
        } else if roll < 0.82 {
            Op::AreaEffect {
                space: space(rng),
                effect: "blast".to_string(),
                region: Aabb::centered(point(rng), rng.gen_range(5.0..world / 2.0)),
                action: "perish".to_string(),
                retire: rng.gen_bool(0.5),
            }
        } else if roll < 0.91 {
            Op::QueryTruth { space: space(rng), area: Aabb::centered(point(rng), rng.gen_range(5.0..world)) }
        } else {
            Op::QueryVisible { space: space(rng), area: Aabb::centered(point(rng), rng.gen_range(5.0..world)) }
        };
        ops.push(op);
    }
    ops
}

/// The engine surface the replayer drives — implemented by the
/// sequential [`Metaverse`] and the [`ShardedMetaverse`], which is the
/// whole point: one op sequence, two engines, comparable outcomes.
pub trait CoSpace {
    /// Register an entity.
    fn spawn(&mut self, name: &str, kind: EntityKind, position: Point, now: SimTime) -> EntityId;
    /// Move ground truth.
    fn update_position(&mut self, id: EntityId, position: Point, now: SimTime) -> MvResult<bool>;
    /// Write an attribute.
    fn update_attr(&mut self, id: EntityId, name: &str, value: f64, now: SimTime) -> MvResult<bool>;
    /// Retire an entity.
    fn retire(&mut self, id: EntityId, now: SimTime) -> MvResult<()>;
    /// Raise an area effect.
    fn area_effect(
        &mut self,
        space: Space,
        effect: &str,
        region: Aabb,
        action: &str,
        retire: bool,
        now: SimTime,
    ) -> Vec<Command>;
    /// Ground-truth range query.
    fn query_truth(&self, space: Space, area: &Aabb) -> Vec<EntityId>;
    /// Visible-set range query.
    fn query_visible(&self, space: Space, area: &Aabb) -> Vec<EntityId>;
    /// Mean live twin divergence.
    fn mean_divergence(&self) -> f64;
    /// Max live twin divergence.
    fn max_divergence(&self) -> f64;
    /// Live entity count.
    fn live_count(&self) -> usize;
    /// Counter totals.
    fn counters(&self) -> Counters;
    /// Drain the event log.
    fn drain_events(&mut self) -> Vec<CoEvent>;
}

impl CoSpace for Metaverse {
    fn spawn(&mut self, name: &str, kind: EntityKind, position: Point, now: SimTime) -> EntityId {
        Metaverse::spawn(self, name, kind, position, now)
    }
    fn update_position(&mut self, id: EntityId, position: Point, now: SimTime) -> MvResult<bool> {
        Metaverse::update_position(self, id, position, now)
    }
    fn update_attr(&mut self, id: EntityId, name: &str, value: f64, now: SimTime) -> MvResult<bool> {
        Metaverse::update_attr(self, id, name, value, now)
    }
    fn retire(&mut self, id: EntityId, now: SimTime) -> MvResult<()> {
        Metaverse::retire(self, id, now)
    }
    fn area_effect(
        &mut self,
        space: Space,
        effect: &str,
        region: Aabb,
        action: &str,
        retire: bool,
        now: SimTime,
    ) -> Vec<Command> {
        Metaverse::area_effect(self, space, effect, region, action, retire, now)
    }
    fn query_truth(&self, space: Space, area: &Aabb) -> Vec<EntityId> {
        Metaverse::query_truth(self, space, area)
    }
    fn query_visible(&self, space: Space, area: &Aabb) -> Vec<EntityId> {
        Metaverse::query_visible(self, space, area)
    }
    fn mean_divergence(&self) -> f64 {
        Metaverse::mean_divergence(self)
    }
    fn max_divergence(&self) -> f64 {
        Metaverse::max_divergence(self)
    }
    fn live_count(&self) -> usize {
        Metaverse::live_count(self)
    }
    fn counters(&self) -> Counters {
        self.stats.clone()
    }
    fn drain_events(&mut self) -> Vec<CoEvent> {
        Metaverse::drain_events(self)
    }
}

impl CoSpace for ShardedMetaverse {
    fn spawn(&mut self, name: &str, kind: EntityKind, position: Point, now: SimTime) -> EntityId {
        ShardedMetaverse::spawn(self, name, kind, position, now)
    }
    fn update_position(&mut self, id: EntityId, position: Point, now: SimTime) -> MvResult<bool> {
        ShardedMetaverse::update_position(self, id, position, now)
    }
    fn update_attr(&mut self, id: EntityId, name: &str, value: f64, now: SimTime) -> MvResult<bool> {
        ShardedMetaverse::update_attr(self, id, name, value, now)
    }
    fn retire(&mut self, id: EntityId, now: SimTime) -> MvResult<()> {
        ShardedMetaverse::retire(self, id, now)
    }
    fn area_effect(
        &mut self,
        space: Space,
        effect: &str,
        region: Aabb,
        action: &str,
        retire: bool,
        now: SimTime,
    ) -> Vec<Command> {
        ShardedMetaverse::area_effect(self, space, effect, region, action, retire, now)
    }
    fn query_truth(&self, space: Space, area: &Aabb) -> Vec<EntityId> {
        ShardedMetaverse::query_truth(self, space, area)
    }
    fn query_visible(&self, space: Space, area: &Aabb) -> Vec<EntityId> {
        ShardedMetaverse::query_visible(self, space, area)
    }
    fn mean_divergence(&self) -> f64 {
        ShardedMetaverse::mean_divergence(self)
    }
    fn max_divergence(&self) -> f64 {
        ShardedMetaverse::max_divergence(self)
    }
    fn live_count(&self) -> usize {
        ShardedMetaverse::live_count(self)
    }
    fn counters(&self) -> Counters {
        self.stats()
    }
    fn drain_events(&mut self) -> Vec<CoEvent> {
        ShardedMetaverse::drain_events(self)
    }
}

/// Replay `ops` against an engine; op `i` happens at `t = i` ms. Every
/// op's observable outcome (return value, query result, command list)
/// is rendered to a fingerprint string, so two replays are equivalent
/// iff their fingerprint vectors are equal — and a mismatch pinpoints
/// the first diverging op.
pub fn replay<E: CoSpace>(engine: &mut E, ops: &[Op]) -> Vec<String> {
    let mut ids: Vec<EntityId> = Vec::new();
    let mut out = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let now = SimTime::from_millis(i as u64);
        let fp = match op {
            Op::Spawn { name, kind, position } => {
                let id = engine.spawn(name, *kind, *position, now);
                ids.push(id);
                format!("spawn {id:?}")
            }
            Op::Move { slot, position } => {
                format!("move {:?}", engine.update_position(ids[*slot], *position, now))
            }
            Op::Attr { slot, name, value } => {
                format!("attr {:?}", engine.update_attr(ids[*slot], name, *value, now))
            }
            Op::Retire { slot } => format!("retire {:?}", engine.retire(ids[*slot], now)),
            Op::AreaEffect { space, effect, region, action, retire } => {
                format!("effect {:?}", engine.area_effect(*space, effect, *region, action, *retire, now))
            }
            Op::QueryTruth { space, area } => {
                format!("truth {:?}", engine.query_truth(*space, area))
            }
            Op::QueryVisible { space, area } => {
                format!("visible {:?}", engine.query_visible(*space, area))
            }
        };
        out.push(fp);
    }
    out
}

/// Replay for the sharded engine with consecutive `Move`/`Attr` ops
/// coalesced into [`WriteOp`] batches (flushed whenever a non-batchable
/// op or the end of the sequence arrives, or the batch reaches
/// `max_batch`). Produces the same fingerprint vector as [`replay`]:
/// batch results come back in submission order.
pub fn replay_batched(engine: &mut ShardedMetaverse, ops: &[Op], max_batch: usize) -> Vec<String> {
    assert!(max_batch > 0, "batch size must be positive");
    let mut ids: Vec<EntityId> = Vec::new();
    let mut out: Vec<Option<String>> = vec![None; ops.len()];
    let mut batch: Vec<(usize, WriteOp)> = Vec::new();
    let flush = |engine: &mut ShardedMetaverse, batch: &mut Vec<(usize, WriteOp)>, out: &mut Vec<Option<String>>| {
        if batch.is_empty() {
            return;
        }
        let write_ops: Vec<WriteOp> = batch.iter().map(|(_, w)| w.clone()).collect();
        for ((i, w), result) in batch.drain(..).zip(engine.apply_batch(&write_ops)) {
            let tag = match w {
                WriteOp::Position { .. } => "move",
                WriteOp::Attr { .. } => "attr",
            };
            out[i] = Some(format!("{tag} {result:?}"));
        }
    };
    for (i, op) in ops.iter().enumerate() {
        let now = SimTime::from_millis(i as u64);
        match op {
            Op::Move { slot, position } => {
                batch.push((i, WriteOp::Position { id: ids[*slot], position: *position, ts: now }));
            }
            Op::Attr { slot, name, value } => {
                batch.push((i, WriteOp::Attr { id: ids[*slot], name: name.clone(), value: *value, ts: now }));
            }
            other => {
                flush(engine, &mut batch, &mut out);
                let fp = match other {
                    Op::Spawn { name, kind, position } => {
                        let id = engine.spawn(name.as_str(), *kind, *position, now);
                        ids.push(id);
                        format!("spawn {id:?}")
                    }
                    Op::Retire { slot } => format!("retire {:?}", engine.retire(ids[*slot], now)),
                    Op::AreaEffect { space, effect, region, action, retire } => {
                        format!(
                            "effect {:?}",
                            engine.area_effect(*space, effect, *region, action, *retire, now)
                        )
                    }
                    Op::QueryTruth { space, area } => {
                        format!("truth {:?}", engine.query_truth(*space, area))
                    }
                    Op::QueryVisible { space, area } => {
                        format!("visible {:?}", engine.query_visible(*space, area))
                    }
                    Op::Move { .. } | Op::Attr { .. } => unreachable!("batched above"),
                };
                out[i] = Some(fp);
            }
        }
        if batch.len() >= max_batch {
            flush(engine, &mut batch, &mut out);
        }
    }
    flush(engine, &mut batch, &mut out);
    out.into_iter().map(|fp| fp.expect("every op produced a fingerprint")).collect()
}

/// Canonical rendering of an event log for cross-engine comparison:
/// event ids are dropped (the engines number independently) and entries
/// are sorted by `(ts, space, entity, kind)`, so any two logs holding
/// the same facts render identically.
pub fn canonical_log(events: &[CoEvent]) -> Vec<String> {
    let mut lines: Vec<String> = events
        .iter()
        .map(|e| {
            format!(
                "{:?}|{:?}|{:?}|{:?}",
                e.ts,
                e.space,
                e.entity.map(EntityId::raw),
                e.kind
            )
        })
        .collect();
    lines.sort_unstable();
    lines
}

/// Proptest strategies over op sequences (available to dependents via
/// the `testing` feature; always on for in-crate tests).
#[cfg(any(test, feature = "testing"))]
pub mod strategies {
    use super::{gen_ops, Op};
    use proptest::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing a random op sequence: length drawn from
    /// `min_ops..=max_ops`, positions inside a `world`-sized square.
    #[derive(Debug, Clone)]
    pub struct OpSeq {
        /// Minimum sequence length.
        pub min_ops: usize,
        /// Maximum sequence length.
        pub max_ops: usize,
        /// World side length (positions/areas fall inside it).
        pub world: f64,
    }

    impl Default for OpSeq {
        fn default() -> Self {
            OpSeq { min_ops: 1, max_ops: 120, world: 200.0 }
        }
    }

    impl Strategy for OpSeq {
        type Value = Vec<Op>;
        fn generate(&self, rng: &mut StdRng) -> Vec<Op> {
            let count = rng.gen_range(self.min_ops..=self.max_ops);
            gen_ops(rng, count, self.world)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncPolicy;
    use mv_common::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn generator_is_deterministic_and_covers_all_variants() {
        let ops_a = gen_ops(&mut seeded_rng(7), 400, 200.0);
        let ops_b = gen_ops(&mut seeded_rng(7), 400, 200.0);
        assert_eq!(ops_a, ops_b);
        let has = |pred: fn(&Op) -> bool| ops_a.iter().any(pred);
        assert!(has(|o| matches!(o, Op::Spawn { .. })));
        assert!(has(|o| matches!(o, Op::Move { .. })));
        assert!(has(|o| matches!(o, Op::Attr { .. })));
        assert!(has(|o| matches!(o, Op::Retire { .. })));
        assert!(has(|o| matches!(o, Op::AreaEffect { .. })));
        assert!(has(|o| matches!(o, Op::QueryTruth { .. })));
        assert!(has(|o| matches!(o, Op::QueryVisible { .. })));
    }

    #[test]
    fn replay_produces_one_fingerprint_per_op() {
        let ops = gen_ops(&mut seeded_rng(3), 100, 150.0);
        let mut mv = Metaverse::with_defaults();
        let fps = replay(&mut mv, &ops);
        assert_eq!(fps.len(), ops.len());
    }

    #[test]
    fn canonical_log_is_order_insensitive() {
        let mut mv = Metaverse::with_defaults();
        let ops = gen_ops(&mut seeded_rng(11), 60, 100.0);
        replay(&mut mv, &ops);
        let events = CoSpace::drain_events(&mut mv);
        let mut reversed = events.clone();
        reversed.reverse();
        assert_eq!(canonical_log(&events), canonical_log(&reversed));
        assert_eq!(canonical_log(&events).len(), events.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        // Satellite invariant: what a space shows is exactly its own
        // residents plus the twins materialized into it — sorted, deduped.
        #[test]
        fn query_visible_is_truth_union_twins(seed in 0u64..1_000_000, ops in strategies::OpSeq { min_ops: 1, max_ops: 80, world: 120.0 }) {
            let mut mv = Metaverse::new(SyncPolicy { position_bound: 2.0, attr_bound: 0.5 }, 25.0);
            replay(&mut mv, &ops);
            let mut probe = seeded_rng(seed);
            for _ in 0..8 {
                let center = mv_common::geom::Point::new(probe.gen_range(0.0..120.0), probe.gen_range(0.0..120.0));
                let area = mv_common::geom::Aabb::centered(center, probe.gen_range(5.0..80.0));
                for space in mv_common::Space::ALL {
                    let visible = mv.query_visible(space, &area);
                    let mut expected = mv.query_truth(space, &area);
                    expected.extend(mv.affected_twins(space, &area));
                    expected.sort_unstable();
                    expected.dedup();
                    prop_assert_eq!(&visible, &expected);
                    // Sorted + deduped by construction.
                    let mut sorted = visible.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(visible, sorted);
                }
            }
        }
    }
}
