//! `DurableMetaverse` — the sharded engine wired to durable storage.
//!
//! E1a/E1d proved the *in-memory* sharded engine ingests millions of
//! updates per second; §IV-F asks what persists that deluge. This module
//! closes the gap: every mutation is encoded as a [`DurableOp`] and
//! appended to a group-commit WAL (`mv_storage::GroupCommitWal`)
//! *before* it is applied to the [`ShardedMetaverse`]; `commit` seals
//! the batch and drains the engine's merged event log into a sharded
//! LSM store (`mv_storage::ShardedKv`) as materialized entity
//! snapshots. The write path is therefore log-then-apply with a
//! per-batch (not per-record) sync cost — the durable ingest fast path
//! E17 measures.
//!
//! **Recovery is replay.** [`DurableMetaverse::crash_and_recover`]
//! discards all volatile state, recovers the WAL (PR 2 semantics:
//! truncate at the first corrupt *batch*, lose the unsynced tail
//! wholesale), and replays the surviving ops into a fresh engine. The
//! engine is deterministic — same ops, same order, same state — so the
//! recovered state is *byte-identical* to the pre-crash engine at the
//! last durable point, which [`DurableMetaverse::state_encoding`]
//! makes checkable byte-for-byte (`tests/fault_recovery.rs` does).

use crate::arena::EntityRef;
use crate::entity::EntityKind;
use crate::events::Command;
use crate::sharded::{ShardedMetaverse, WriteOp};
use mv_common::geom::{Aabb, Point};
use mv_common::codec::wire_u32;
use mv_common::hash::FxHasher;
use mv_common::id::EntityId;
use mv_common::time::SimTime;
use mv_common::{MvResult, Space};
use mv_obs::{SharedTracer, TraceCtx};
use mv_storage::codec::SliceReader;
use mv_storage::kv::KvConfig;
use mv_storage::wal::{RecoveryReport, WalRecord};
use mv_storage::{GroupCommitPolicy, GroupCommitWal, ShardedKv};
use std::hash::Hasher as _;

/// One logged engine mutation — the WAL's unit of replay. Ops carry
/// everything needed to re-execute them; entity ids are *not* logged on
/// spawn because the engine's id generator is deterministic (dense ids
/// in spawn order), so replay re-derives them.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableOp {
    /// Register an entity (id assigned deterministically at apply time).
    Spawn {
        /// Entity name.
        name: String,
        /// Entity kind.
        kind: EntityKind,
        /// Initial ground-truth position.
        position: Point,
        /// When.
        ts: SimTime,
    },
    /// Ground-truth move.
    Position {
        /// Entity to move.
        id: EntityId,
        /// New position.
        position: Point,
        /// When.
        ts: SimTime,
    },
    /// Attribute write.
    Attr {
        /// Entity to update.
        id: EntityId,
        /// Attribute name.
        name: String,
        /// New value.
        value: f64,
        /// When.
        ts: SimTime,
    },
    /// Retire an entity.
    Retire {
        /// Entity to retire.
        id: EntityId,
        /// When.
        ts: SimTime,
    },
    /// An area effect (air raid, flash sale…) — logged as one op and
    /// re-executed on replay (its fan-out is a deterministic function of
    /// engine state).
    AreaEffect {
        /// Space the effect occurs in.
        space: Space,
        /// Effect tag.
        effect: String,
        /// Affected region.
        region: Aabb,
        /// Command relayed to affected twins.
        action: String,
        /// Whether affected entities retire.
        retire: bool,
        /// When.
        ts: SimTime,
    },
    /// 2PC phase 1: the slice of transaction `txn` bound for one
    /// participant shard, made durable *before* any decision. Never
    /// applied on its own — recovery buffers it until a decision record
    /// resolves it (no decision = in-doubt = presumed abort). Nested ops
    /// are restricted to the transactional leaf set
    /// ([`DurableOp::Position`] / [`DurableOp::Attr`]); anything else is
    /// structural damage and the record refuses to decode.
    TxnPrepare {
        /// Raw transaction id.
        txn: u64,
        /// Participant shard index (KV/MVCC routing).
        shard: u32,
        /// The shard's ops, in program order.
        ops: Vec<DurableOp>,
        /// When.
        ts: SimTime,
    },
    /// 2PC phase 2: the coordinator's decision. Its durability is the
    /// commit point — the log's prefix property guarantees every prepare
    /// of `txn` is durable below it.
    TxnDecision {
        /// Raw transaction id.
        txn: u64,
        /// Commit (`true`) or abort (`false`).
        commit: bool,
        /// Oracle timestamp the versions install at.
        commit_ts: u64,
        /// When.
        ts: SimTime,
    },
}

impl DurableOp {
    /// The op's timestamp (drives the WAL's deadline trigger).
    pub fn ts(&self) -> SimTime {
        match self {
            DurableOp::Spawn { ts, .. }
            | DurableOp::Position { ts, .. }
            | DurableOp::Attr { ts, .. }
            | DurableOp::Retire { ts, .. }
            | DurableOp::AreaEffect { ts, .. }
            | DurableOp::TxnPrepare { ts, .. }
            | DurableOp::TxnDecision { ts, .. } => *ts,
        }
    }

    /// Whether this op may appear inside a [`DurableOp::TxnPrepare`].
    pub fn is_txn_leaf(&self) -> bool {
        matches!(self, DurableOp::Position { .. } | DurableOp::Attr { .. })
    }

    /// Lift a batched engine write into its logged form.
    pub fn from_write(op: &WriteOp) -> DurableOp {
        match op {
            WriteOp::Position { id, position, ts } => {
                DurableOp::Position { id: *id, position: *position, ts: *ts }
            }
            WriteOp::Attr { id, name, value, ts } => {
                DurableOp::Attr { id: *id, name: name.clone(), value: *value, ts: *ts }
            }
        }
    }
}

// ---- canonical byte encoding -------------------------------------------
//
// Hand-rolled little-endian framing (tag byte + fields, strings as
// `[len u32][bytes]`) so the WAL image and the state encoding are stable
// across compiler/serde versions — "byte-identical" must mean bytes.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, wire_u32(s.len()));
    out.extend_from_slice(s.as_bytes());
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

fn kind_tag(kind: EntityKind) -> u8 {
    match kind {
        EntityKind::Person => 0,
        EntityKind::Vehicle => 1,
        EntityKind::Sensor => 2,
        EntityKind::Product => 3,
        EntityKind::Avatar => 4,
        EntityKind::SceneObject => 5,
    }
}

fn kind_from_tag(tag: u8) -> Option<EntityKind> {
    Some(match tag {
        0 => EntityKind::Person,
        1 => EntityKind::Vehicle,
        2 => EntityKind::Sensor,
        3 => EntityKind::Product,
        4 => EntityKind::Avatar,
        5 => EntityKind::SceneObject,
        _ => return None,
    })
}

fn space_tag(space: Space) -> u8 {
    match space {
        Space::Physical => 0,
        Space::Virtual => 1,
    }
}

fn space_from_tag(tag: u8) -> Option<Space> {
    match tag {
        0 => Some(Space::Physical),
        1 => Some(Space::Virtual),
        _ => None,
    }
}

/// Read a length-prefixed UTF-8 string. Validation happens in place on
/// the borrowed slice ([`SliceReader`] is zero-copy), so damaged input
/// is rejected before any allocation; the single copy is the `String`
/// the kept op actually owns.
fn read_str(r: &mut SliceReader<'_>) -> Option<String> {
    let bytes = r.chunk()?;
    std::str::from_utf8(bytes).ok().map(str::to_owned)
}

/// Read two little-endian `f64`s as a point.
fn read_point(r: &mut SliceReader<'_>) -> Option<Point> {
    Some(Point::new(r.f64()?, r.f64()?))
}

impl DurableOp {
    /// Encode into the canonical byte form (a WAL record value).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            DurableOp::Spawn { name, kind, position, ts } => {
                out.push(1);
                put_str(&mut out, name);
                out.push(kind_tag(*kind));
                put_point(&mut out, *position);
                put_u64(&mut out, ts.as_micros());
            }
            DurableOp::Position { id, position, ts } => {
                out.push(2);
                put_u64(&mut out, id.raw());
                put_point(&mut out, *position);
                put_u64(&mut out, ts.as_micros());
            }
            DurableOp::Attr { id, name, value, ts } => {
                out.push(3);
                put_u64(&mut out, id.raw());
                put_str(&mut out, name);
                put_f64(&mut out, *value);
                put_u64(&mut out, ts.as_micros());
            }
            DurableOp::Retire { id, ts } => {
                out.push(4);
                put_u64(&mut out, id.raw());
                put_u64(&mut out, ts.as_micros());
            }
            DurableOp::AreaEffect { space, effect, region, action, retire, ts } => {
                out.push(5);
                out.push(space_tag(*space));
                put_str(&mut out, effect);
                put_point(&mut out, region.lo);
                put_point(&mut out, region.hi);
                put_str(&mut out, action);
                out.push(u8::from(*retire));
                put_u64(&mut out, ts.as_micros());
            }
            DurableOp::TxnPrepare { txn, shard, ops, ts } => {
                out.push(6);
                put_u64(&mut out, *txn);
                put_u32(&mut out, *shard);
                put_u32(&mut out, wire_u32(ops.len()));
                for op in ops {
                    let bytes = op.encode();
                    put_u32(&mut out, wire_u32(bytes.len()));
                    out.extend_from_slice(&bytes);
                }
                put_u64(&mut out, ts.as_micros());
            }
            DurableOp::TxnDecision { txn, commit, commit_ts, ts } => {
                out.push(7);
                put_u64(&mut out, *txn);
                out.push(u8::from(*commit));
                put_u64(&mut out, *commit_ts);
                put_u64(&mut out, ts.as_micros());
            }
        }
        out
    }

    /// Decode the canonical byte form; `None` on any structural damage.
    /// The walk is zero-copy (a [`SliceReader`] over the WAL value);
    /// only fields the kept op owns — the strings — are copied out.
    pub fn decode(bytes: &[u8]) -> Option<DurableOp> {
        let mut r = SliceReader::new(bytes);
        let op = match r.u8()? {
            1 => DurableOp::Spawn {
                name: read_str(&mut r)?,
                kind: kind_from_tag(r.u8()?)?,
                position: read_point(&mut r)?,
                ts: SimTime(r.u64()?),
            },
            2 => DurableOp::Position {
                id: EntityId::new(r.u64()?),
                position: read_point(&mut r)?,
                ts: SimTime(r.u64()?),
            },
            3 => DurableOp::Attr {
                id: EntityId::new(r.u64()?),
                name: read_str(&mut r)?,
                value: r.f64()?,
                ts: SimTime(r.u64()?),
            },
            4 => DurableOp::Retire { id: EntityId::new(r.u64()?), ts: SimTime(r.u64()?) },
            5 => DurableOp::AreaEffect {
                space: space_from_tag(r.u8()?)?,
                effect: read_str(&mut r)?,
                region: Aabb::new(read_point(&mut r)?, read_point(&mut r)?),
                action: read_str(&mut r)?,
                retire: r.u8()? != 0,
                ts: SimTime(r.u64()?),
            },
            6 => {
                let txn = r.u64()?;
                let shard = r.u32()?;
                let count = r.u32()?;
                // No `with_capacity(count)`: a hostile count field must
                // not reserve memory it can't back with bytes.
                let mut ops = Vec::new();
                for _ in 0..count {
                    let len = r.u32()? as usize;
                    let nested = DurableOp::decode(r.take(len)?)?;
                    if !nested.is_txn_leaf() {
                        return None;
                    }
                    ops.push(nested);
                }
                DurableOp::TxnPrepare { txn, shard, ops, ts: SimTime(r.u64()?) }
            }
            7 => {
                let txn = r.u64()?;
                let commit = match r.u8()? {
                    0 => false,
                    1 => true,
                    // Unknown decision tags are damage, not "probably
                    // commit": refuse them.
                    _ => return None,
                };
                DurableOp::TxnDecision { txn, commit, commit_ts: r.u64()?, ts: SimTime(r.u64()?) }
            }
            _ => return None,
        };
        r.done().then_some(op)
    }
}

/// Canonical byte encoding of one entity (the KV snapshot value, and a
/// section of [`DurableMetaverse::state_encoding`]).
fn encode_entity(out: &mut Vec<u8>, e: EntityRef<'_>) {
    put_u64(out, e.id.raw());
    put_str(out, e.name);
    out.push(kind_tag(e.kind));
    put_point(out, e.position);
    put_point(out, e.twin_position);
    put_u32(out, wire_u32(e.attrs.len()));
    for (name, value) in e.attrs {
        put_str(out, name);
        put_f64(out, *value);
    }
    out.push(u8::from(e.retired));
}

/// The durable engine: a [`ShardedMetaverse`] whose mutations are
/// logged (group-commit WAL) before application and whose event log
/// drains into a sharded LSM store at each commit.
pub struct DurableMetaverse {
    pub(crate) engine: ShardedMetaverse,
    /// The group-commit log. Public so fault tests can inject
    /// corruption between commit and recovery.
    pub wal: GroupCommitWal,
    kv: ShardedKv,
    /// Spawn-ordered entity ids (replay re-derives the same sequence).
    pub(crate) ids: Vec<EntityId>,
    /// Next WAL key (unique per logged op).
    lsn: u64,
    engine_shards: usize,
    kv_config: KvConfig,
    kv_shards: usize,
    /// Span collector; ops without a caller-supplied context mint a
    /// (possibly sampled) `core.durable.ingest` root here.
    pub(crate) tracer: Option<SharedTracer>,
    /// Transactional state: the sharded MVCC overlay and its counters
    /// (see `crate::txn`).
    pub(crate) txns: crate::txn::TxnState,
}

impl DurableMetaverse {
    /// Build with `shards` engine shards, the same number of KV shards,
    /// and default WAL/KV tuning.
    pub fn with_defaults(shards: usize) -> Self {
        Self::new(shards, shards, KvConfig::default(), GroupCommitPolicy::default())
    }

    /// Build with explicit engine/KV shard counts and tuning.
    pub fn new(
        engine_shards: usize,
        kv_shards: usize,
        kv_config: KvConfig,
        wal_policy: GroupCommitPolicy,
    ) -> Self {
        DurableMetaverse {
            engine: ShardedMetaverse::with_defaults(engine_shards),
            wal: GroupCommitWal::with_policy(wal_policy),
            kv: ShardedKv::new(kv_shards, kv_config),
            ids: Vec::new(),
            lsn: 0,
            engine_shards,
            kv_config,
            kv_shards,
            tracer: None,
            txns: crate::txn::TxnState::new(kv_shards),
        }
    }

    /// Install a span collector. Ops arriving *with* a [`TraceCtx`]
    /// (e.g. delivered over the reliable transport) keep it; ops
    /// arriving without one mint a `core.durable.ingest` root, subject
    /// to the tracer's sampling rate. The WAL shares the tracer so each
    /// logged op gets a `storage.wal.group_commit` span.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.wal.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// The installed span collector, if any.
    pub fn tracer(&self) -> Option<&SharedTracer> {
        self.tracer.as_ref()
    }

    /// The wrapped engine (read-only: mutations must go through the
    /// logging methods or they will not survive a crash).
    pub fn engine(&self) -> &ShardedMetaverse {
        &self.engine
    }

    /// The materialized entity store.
    pub fn kv(&self) -> &ShardedKv {
        &self.kv
    }

    /// Publish the engine's health gauges into `stats` (the caller
    /// picks the prefix, e.g. `core.durable`): group-commit queue depth
    /// and bytes, compaction debt (LSM runs beyond one per shard —
    /// what `compact_all` would merge away), and memtable fill. Called
    /// once per health tick so `mv_obs::MetricWindows` sees a fresh
    /// value every roll.
    pub fn publish_health_gauges(&self, stats: &mut mv_obs::StatSet) {
        stats.set_gauge("wal_queue_depth", self.wal.queue_depth() as f64);
        stats.set_gauge("wal_queued_bytes", self.wal.queued_bytes() as f64);
        let runs: usize = self.kv.run_counts().iter().sum();
        let debt = runs.saturating_sub(self.kv.shard_count());
        stats.set_gauge("compaction_debt", debt as f64);
        stats.set_gauge("memtable_bytes", self.kv.memtable_bytes() as f64);
    }

    /// Spawn-ordered ids of every entity ever registered.
    pub fn ids(&self) -> &[EntityId] {
        &self.ids
    }

    /// Serial/parallel batch application on both the engine and the KV
    /// shards (serial mode is what honest per-shard timing needs; see
    /// `ShardedMetaverse::set_parallel_apply`).
    pub fn set_parallel_apply(&mut self, on: bool) {
        self.engine.set_parallel_apply(on);
        self.kv.set_parallel_apply(on);
    }

    /// Log one op (not yet durable — `commit` seals the batch).
    pub(crate) fn log(&mut self, op: &DurableOp) {
        self.log_with(op, None);
    }

    /// Log one op carrying its causal context: the WAL opens a
    /// `storage.wal.group_commit` span that closes when the op's batch
    /// seals (its duration is the group-commit wait the op paid).
    pub(crate) fn log_with(&mut self, op: &DurableOp, ctx: Option<TraceCtx>) {
        let key = self.lsn.to_le_bytes().to_vec();
        self.lsn += 1;
        self.wal.append_traced(WalRecord::Put { key, value: op.encode() }, op.ts(), ctx);
    }

    /// Resolve the context for one ingested op: adopt the caller's, or
    /// mint a sampled `core.durable.ingest` root. Returns `(ctx,
    /// minted_root)` — a minted root is owned here and closed by
    /// [`Self::finish_ingest`].
    fn ingest_ctx(&self, ctx: Option<TraceCtx>, now: SimTime) -> (Option<TraceCtx>, Option<u64>) {
        if ctx.is_some() {
            return (ctx, None);
        }
        let Some(tr) = &self.tracer else { return (None, None) };
        match tr.maybe_trace("core.durable.ingest", now) {
            Some(c) => (Some(c), Some(c.span)),
            None => (None, None),
        }
    }

    /// Mark the apply instant under `ctx` and close a root this engine
    /// minted (caller-supplied roots stay open — the caller owns their
    /// end-to-end lifetime).
    fn finish_ingest(&self, ctx: Option<TraceCtx>, minted: Option<u64>, now: SimTime, ok: bool) {
        let Some(tr) = &self.tracer else { return };
        if let Some(c) = ctx {
            tr.event(c, "core.durable.apply", now, if ok { "ok" } else { "err" });
        }
        if let Some(root) = minted {
            tr.close(root, now, "applied");
        }
    }

    /// Logged spawn.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        kind: EntityKind,
        position: Point,
        now: SimTime,
    ) -> EntityId {
        let name = name.into();
        self.log(&DurableOp::Spawn { name: name.clone(), kind, position, ts: now });
        let id = self.engine.spawn(name, kind, position, now);
        self.ids.push(id);
        id
    }

    /// Logged batched writes (each op is logged individually — per-key
    /// replay order is append order, which `apply_batch`'s stable
    /// partitioning preserves per entity).
    pub fn apply_batch(&mut self, ops: &[WriteOp]) -> Vec<MvResult<bool>> {
        for op in ops {
            self.log(&DurableOp::from_write(op));
        }
        let results = self.engine.apply_batch(ops);
        for (op, r) in ops.iter().zip(&results) {
            if r.is_ok() {
                self.txns.install_plain(&DurableOp::from_write(op));
            }
        }
        results
    }

    /// Logged ground-truth move.
    pub fn update_position(
        &mut self,
        id: EntityId,
        position: Point,
        now: SimTime,
    ) -> MvResult<bool> {
        self.update_position_traced(id, position, now, None)
    }

    /// [`Self::update_position`] carrying (or minting) a causal context:
    /// the WAL span, the apply event, and — for minted roots — the
    /// ingest root all land in the installed tracer.
    pub fn update_position_traced(
        &mut self,
        id: EntityId,
        position: Point,
        now: SimTime,
        ctx: Option<TraceCtx>,
    ) -> MvResult<bool> {
        let (ctx, minted) = self.ingest_ctx(ctx, now);
        let op = DurableOp::Position { id, position, ts: now };
        self.log_with(&op, ctx);
        let r = self.engine.update_position(id, position, now);
        if r.is_ok() {
            self.txns.install_plain(&op);
        }
        self.finish_ingest(ctx, minted, now, r.is_ok());
        r
    }

    /// Logged attribute write.
    pub fn update_attr(
        &mut self,
        id: EntityId,
        name: &str,
        value: f64,
        now: SimTime,
    ) -> MvResult<bool> {
        self.update_attr_traced(id, name, value, now, None)
    }

    /// [`Self::update_attr`] carrying (or minting) a causal context.
    pub fn update_attr_traced(
        &mut self,
        id: EntityId,
        name: &str,
        value: f64,
        now: SimTime,
        ctx: Option<TraceCtx>,
    ) -> MvResult<bool> {
        let (ctx, minted) = self.ingest_ctx(ctx, now);
        let op = DurableOp::Attr { id, name: name.to_string(), value, ts: now };
        self.log_with(&op, ctx);
        let r = self.engine.update_attr(id, name, value, now);
        if r.is_ok() {
            self.txns.install_plain(&op);
        }
        self.finish_ingest(ctx, minted, now, r.is_ok());
        r
    }

    /// Logged retire.
    pub fn retire(&mut self, id: EntityId, now: SimTime) -> MvResult<()> {
        self.log(&DurableOp::Retire { id, ts: now });
        self.engine.retire(id, now)
    }

    /// Logged area effect.
    pub fn area_effect(
        &mut self,
        space: Space,
        effect: &str,
        region: Aabb,
        action: &str,
        retire: bool,
        now: SimTime,
    ) -> Vec<Command> {
        self.log(&DurableOp::AreaEffect {
            space,
            effect: effect.to_string(),
            region,
            action: action.to_string(),
            retire,
            ts: now,
        });
        self.engine.area_effect(space, effect, region, action, retire, now)
    }

    /// Group commit: seal the pending WAL batch, then drain the engine's
    /// merged event log into the KV store as entity snapshots. Returns
    /// the number of events drained.
    pub fn commit(&mut self, _now: SimTime) -> usize {
        self.wal.sync();
        self.drain_to_storage()
    }

    /// Drain the engine's merged event log and write one snapshot per
    /// touched entity into the sharded KV (batched, so the per-shard
    /// stores apply their partitions with the ownership discipline E17
    /// times). Returns the number of events drained.
    pub fn drain_to_storage(&mut self) -> usize {
        let events = self.engine.drain_events();
        let mut touched: Vec<EntityId> =
            events.iter().filter_map(|e| e.entity).collect();
        touched.sort_unstable();
        touched.dedup();
        let records = self.snapshot_records(&touched);
        self.kv.apply_batch(&records);
        events.len()
    }

    /// KV snapshot records for the given entities (key = raw id bytes,
    /// value = canonical entity encoding).
    fn snapshot_records(&self, ids: &[EntityId]) -> Vec<WalRecord> {
        ids.iter()
            .filter_map(|id| self.engine.entity(*id).ok())
            .map(|e| {
                let mut value = Vec::new();
                encode_entity(&mut value, e);
                WalRecord::Put { key: e.id.raw().to_le_bytes().to_vec(), value }
            })
            .collect()
    }

    /// Simulate a crash and recover: all volatile state (engine, KV,
    /// MVCC chains, unsynced WAL tail) is discarded; the WAL is
    /// recovered (truncating at the first corrupt batch) and the
    /// surviving ops replay into a fresh engine; the KV is rebuilt from
    /// the recovered entities. The replayed engine is byte-identical
    /// (per [`Self::state_encoding`]) to the pre-crash engine at the
    /// last durable point.
    ///
    /// Transactional records resolve in-doubt state here: a
    /// [`DurableOp::TxnPrepare`] is buffered, never applied on its own;
    /// a [`DurableOp::TxnDecision`] with `commit` replays the buffered
    /// ops (engine + MVCC chains, at the recorded `commit_ts`); an abort
    /// decision discards them; and prepares still unresolved at the end
    /// of the log are *presumed aborts* — discarded and counted in the
    /// `core.txn.indoubt_aborted` stat.
    pub fn crash_and_recover(&mut self) -> RecoveryReport {
        let report = self.wal.crash_with_report();
        let mut engine = ShardedMetaverse::with_defaults(self.engine_shards);
        let mut ids = Vec::new();
        let mut txns = crate::txn::TxnState::new(self.kv_shards);
        let mut prepared: mv_common::hash::FastMap<u64, Vec<DurableOp>> =
            mv_common::hash::FastMap::default();
        for rec in self.wal.durable() {
            let WalRecord::Put { value, .. } = rec else { continue };
            let Some(op) = DurableOp::decode(value) else { continue };
            match op {
                DurableOp::TxnPrepare { txn, ops, .. } => {
                    prepared.entry(txn).or_default().extend(ops);
                }
                DurableOp::TxnDecision { txn, commit, commit_ts, .. } => {
                    // A decision with no buffered prepares is hostile or
                    // duplicated input — there is nothing to apply.
                    let Some(ops) = prepared.remove(&txn) else { continue };
                    if commit {
                        txns.install_recovered(&ops, commit_ts);
                        for op in ops {
                            Self::replay(&mut engine, &mut ids, op);
                        }
                    } else {
                        txns.stats.incr("recovered_aborts");
                    }
                }
                other => {
                    // Recovery mirrors the live path: a plain write that
                    // the engine accepts reinstalls its MVCC version at
                    // the same oracle-drawn timestamp.
                    if Self::replay(&mut engine, &mut ids, other.clone()) {
                        txns.install_plain(&other);
                    }
                }
            }
        }
        txns.stats.add("indoubt_aborted", prepared.len() as u64);
        // Every pre-crash transaction is dead, so nothing pins the GC
        // horizon: one final automatic collection lands the rebuilt
        // chains in the same maximally-trimmed state the live path's
        // per-commit collector maintains (the differential harness
        // compares chain digests against a live twin).
        let trimmed = txns.mvcc.auto_gc();
        if trimmed > 0 {
            txns.stats.add("gc_versions_auto", trimmed as u64);
        }
        // Regenerated events are not "new" mutations — clear them, then
        // rebuild the materialized store from the recovered entities.
        engine.drain_events();
        self.engine = engine;
        self.ids = ids;
        self.txns = txns;
        self.lsn = self.wal.durable().len() as u64;
        self.kv = ShardedKv::new(self.kv_shards, self.kv_config);
        let records = self.snapshot_records(&self.ids.clone());
        self.kv.apply_batch(&records);
        report
    }

    /// Re-execute one recovered op. Errors are deliberately swallowed:
    /// an op that failed pre-crash (e.g. an update racing a retire)
    /// fails identically on replay — determinism, not error handling,
    /// is what recovery needs. Returns whether the engine accepted the
    /// op (recovery uses this to mirror the live path's conditional
    /// MVCC install). Transactional envelopes are never applied here
    /// (`crash_and_recover` resolves them; the live commit path replays
    /// their leaf ops directly).
    pub(crate) fn replay(
        engine: &mut ShardedMetaverse,
        ids: &mut Vec<EntityId>,
        op: DurableOp,
    ) -> bool {
        match op {
            DurableOp::Spawn { name, kind, position, ts } => {
                ids.push(engine.spawn(name, kind, position, ts));
                true
            }
            DurableOp::Position { id, position, ts } => {
                engine.update_position(id, position, ts).is_ok()
            }
            DurableOp::Attr { id, name, value, ts } => {
                engine.update_attr(id, &name, value, ts).is_ok()
            }
            DurableOp::Retire { id, ts } => engine.retire(id, ts).is_ok(),
            DurableOp::AreaEffect { space, effect, region, action, retire, ts } => {
                let _ = engine.area_effect(space, &effect, region, &action, retire, ts);
                true
            }
            DurableOp::TxnPrepare { .. } | DurableOp::TxnDecision { .. } => false,
        }
    }

    /// Canonical byte encoding of the whole engine state: clock, live
    /// count, every entity ever spawned (in spawn order, fully encoded),
    /// and the engine's counter totals. Two engines with equal encodings
    /// are observably identical; the fault tests compare these
    /// byte-for-byte across crash/recovery.
    pub fn state_encoding(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(1); // version
        put_u64(&mut out, self.engine.now().as_micros());
        put_u64(&mut out, self.engine.live_count() as u64);
        put_u64(&mut out, self.ids.len() as u64);
        for id in &self.ids {
            if let Ok(e) = self.engine.entity(*id) {
                encode_entity(&mut out, e);
            }
        }
        let stats = self.engine.stats();
        let entries: Vec<(&str, u64)> = stats.iter().collect();
        put_u32(&mut out, wire_u32(entries.len()));
        for (name, value) in entries {
            put_str(&mut out, name);
            put_u64(&mut out, value);
        }
        out
    }

    /// Hash of [`Self::state_encoding`] (cheap equality witness).
    pub fn state_digest(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write(&self.state_encoding());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn durable_op_encoding_round_trips() {
        let ops = vec![
            DurableOp::Spawn {
                name: "scout-7".into(),
                kind: EntityKind::Vehicle,
                position: p(3.5, -2.25),
                ts: t(7),
            },
            DurableOp::Position { id: EntityId::new(42), position: p(1.0, 2.0), ts: t(8) },
            DurableOp::Attr { id: EntityId::new(3), name: "fuel".into(), value: 0.75, ts: t(9) },
            DurableOp::Retire { id: EntityId::new(9), ts: t(10) },
            DurableOp::AreaEffect {
                space: Space::Virtual,
                effect: "air_raid".into(),
                region: Aabb::new(p(0.0, 0.0), p(10.0, 10.0)),
                action: "perish".into(),
                retire: true,
                ts: t(11),
            },
        ];
        for op in ops {
            let bytes = op.encode();
            assert_eq!(DurableOp::decode(&bytes), Some(op.clone()), "{op:?}");
            // Truncations never decode (and never panic).
            for cut in 0..bytes.len() {
                assert_eq!(DurableOp::decode(&bytes[..cut]), None, "{op:?} cut at {cut}");
            }
        }
        assert_eq!(DurableOp::decode(&[99]), None, "unknown tag");
    }

    #[test]
    fn txn_record_encoding_round_trips() {
        let prepare = DurableOp::TxnPrepare {
            txn: 77,
            shard: 3,
            ops: vec![
                DurableOp::Attr { id: EntityId::new(1), name: "gold".into(), value: 9.5, ts: t(4) },
                DurableOp::Position { id: EntityId::new(2), position: p(1.0, 2.0), ts: t(4) },
            ],
            ts: t(4),
        };
        let decision = DurableOp::TxnDecision { txn: 77, commit: true, commit_ts: 12345, ts: t(5) };
        for op in [prepare, decision] {
            let bytes = op.encode();
            assert_eq!(DurableOp::decode(&bytes), Some(op.clone()), "{op:?}");
            for cut in 0..bytes.len() {
                assert_eq!(DurableOp::decode(&bytes[..cut]), None, "{op:?} truncated at {cut}");
            }
        }
    }

    #[test]
    fn hostile_txn_prepare_frames_decode_to_none_not_panic() {
        // A prepare whose op count claims far more nested frames than
        // the buffer holds: must refuse, not loop or reserve memory.
        let mut bytes = vec![6u8];
        bytes.extend_from_slice(&1u64.to_le_bytes()); // txn
        bytes.extend_from_slice(&0u32.to_le_bytes()); // shard
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // op count
        assert_eq!(DurableOp::decode(&bytes), None);

        // A nested frame whose length field overruns the buffer.
        let mut bytes = vec![6u8];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one op…
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // …of absurd length
        bytes.extend_from_slice(b"xx");
        assert_eq!(DurableOp::decode(&bytes), None);

        // Nested ops outside the transactional leaf set: a Spawn smuggled
        // into a prepare (could desync replay's id assignment), or a
        // prepare nested inside a prepare (unbounded recursion bait).
        let spawn = DurableOp::Spawn {
            name: "evil".into(),
            kind: EntityKind::Avatar,
            position: p(0.0, 0.0),
            ts: t(1),
        };
        let nested_prepare = DurableOp::TxnPrepare { txn: 2, shard: 0, ops: vec![], ts: t(1) };
        for smuggled in [spawn, nested_prepare] {
            let inner = smuggled.encode();
            let mut bytes = vec![6u8];
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.extend_from_slice(&(inner.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&inner);
            bytes.extend_from_slice(&t(1).as_micros().to_le_bytes());
            assert_eq!(DurableOp::decode(&bytes), None, "non-leaf nested op must not decode");
        }
    }

    #[test]
    fn hostile_decision_tags_decode_to_none_not_panic() {
        // The commit flag is strictly 0 or 1 — an unknown tag is damage,
        // never "probably commit".
        for tag in [2u8, 7, 255] {
            let mut bytes = vec![7u8];
            bytes.extend_from_slice(&9u64.to_le_bytes()); // txn
            bytes.push(tag);
            bytes.extend_from_slice(&100u64.to_le_bytes()); // commit_ts
            bytes.extend_from_slice(&t(2).as_micros().to_le_bytes());
            assert_eq!(DurableOp::decode(&bytes), None, "decision tag {tag}");
        }
    }

    #[test]
    fn orphaned_prepares_and_stray_decisions_recover_cleanly() {
        // Hand-craft a WAL holding (a) a prepare with no decision and
        // (b) a decision with no prepares: recovery must apply neither
        // and never panic.
        let mut dm = DurableMetaverse::with_defaults(2);
        let id = dm.spawn("a", EntityKind::Person, p(0.0, 0.0), t(1));
        dm.commit(t(1));
        let baseline = dm.state_encoding();

        let orphan_prepare = DurableOp::TxnPrepare {
            txn: 500,
            shard: 0,
            ops: vec![DurableOp::Attr { id, name: "hp".into(), value: 1.0, ts: t(2) }],
            ts: t(2),
        };
        let stray_decision =
            DurableOp::TxnDecision { txn: 501, commit: true, commit_ts: 999, ts: t(2) };
        dm.log(&orphan_prepare);
        dm.log(&stray_decision);
        dm.commit(t(2));

        dm.crash_and_recover();
        assert_eq!(dm.state_encoding(), baseline, "neither record mutated the engine");
        assert_eq!(dm.txn_stats().get("indoubt_aborted"), 1, "orphan counted");
        assert_eq!(dm.txn_lock_count(), 0);
    }

    #[test]
    fn hostile_string_lengths_decode_to_none_not_panic() {
        // A Spawn op whose name length field claims u32::MAX bytes: the
        // reader must refuse it, not index past the buffer.
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"x");
        assert_eq!(DurableOp::decode(&bytes), None);

        // Valid op with trailing garbage: `done()` rejects it.
        let op = DurableOp::Retire { id: EntityId::new(9), ts: t(10) };
        let mut bytes = op.encode();
        bytes.push(0);
        assert_eq!(DurableOp::decode(&bytes), None);
    }

    #[test]
    fn committed_mutations_survive_crash_byte_identically() {
        let mut dm = DurableMetaverse::with_defaults(4);
        let ids: Vec<EntityId> = (0..32)
            .map(|i| dm.spawn(format!("e{i}"), EntityKind::Person, p(i as f64, 0.0), t(1)))
            .collect();
        let ops: Vec<WriteOp> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| WriteOp::Position {
                id: *id,
                position: p(i as f64, i as f64 * 2.0),
                ts: t(2),
            })
            .collect();
        dm.apply_batch(&ops);
        dm.update_attr(ids[0], "health", 0.5, t(3)).unwrap();
        dm.retire(ids[1], t(3)).unwrap();
        dm.commit(t(3));
        let committed = dm.state_encoding();
        let committed_digest = dm.state_digest();

        // Uncommitted tail: must vanish on crash.
        dm.update_position(ids[2], p(999.0, 999.0), t(4)).unwrap();
        dm.spawn("ghost", EntityKind::Avatar, p(0.0, 0.0), t(4));
        assert_ne!(dm.state_encoding(), committed);

        let report = dm.crash_and_recover();
        assert_eq!(report.corruption, None);
        assert_eq!(dm.state_encoding(), committed, "recovered state must be byte-identical");
        assert_eq!(dm.state_digest(), committed_digest);
        assert_eq!(dm.engine().live_count(), 31);
        assert_eq!(dm.engine().entity(ids[2]).unwrap().position, p(2.0, 4.0));
    }

    #[test]
    fn traced_ops_mint_ingest_roots_and_wal_spans() {
        let tracer = mv_obs::SharedTracer::new();
        let mut dm = DurableMetaverse::with_defaults(2);
        dm.set_tracer(tracer.clone());
        let id = dm.spawn("a", EntityKind::Person, p(0.0, 0.0), t(1));

        // Context-less updates mint their own ingest roots and close
        // them at apply; the WAL spans close when `commit` seals.
        dm.update_position(id, p(1.0, 1.0), t(2)).unwrap();
        dm.update_attr_traced(id, "hp", 0.5, t(3), None).unwrap();
        dm.commit(t(3));
        assert_eq!(tracer.open_count(), 0, "no leaked spans");
        let recs = tracer.records();
        let count = |name: &str, status: &str| {
            recs.iter().filter(|r| r.name == name && r.status == status).count()
        };
        assert_eq!(count("core.durable.ingest", "applied"), 2);
        assert_eq!(count("core.durable.apply", "ok"), 2);
        assert_eq!(count("storage.wal.group_commit", "sealed"), 2);

        // A caller-supplied root is adopted, not closed: the caller owns
        // the update's end-to-end lifetime.
        let root = tracer.start_trace("test.e2e", t(4));
        dm.update_position_traced(id, p(2.0, 2.0), t(4), Some(root)).unwrap();
        assert_eq!(tracer.open_count(), 2, "caller root + pending wal span");
        dm.commit(t(4));
        tracer.close(root.span, t(5), "ok");
        assert_eq!(tracer.open_count(), 0);
        assert_eq!(tracer.trace_count(), 3);
    }

    #[test]
    fn recovery_rebuilds_kv_snapshots() {
        let mut dm = DurableMetaverse::with_defaults(2);
        let id = dm.spawn("alice", EntityKind::Person, p(1.0, 1.0), t(1));
        dm.update_attr(id, "score", 7.0, t(2)).unwrap();
        dm.commit(t(2));
        let snapshot = dm.kv().get(&id.raw().to_le_bytes()).expect("snapshot present");
        dm.crash_and_recover();
        let recovered = dm.kv().get(&id.raw().to_le_bytes()).expect("snapshot rebuilt");
        assert_eq!(snapshot, recovered, "KV snapshot identical after recovery");
    }

    #[test]
    fn area_effects_replay_deterministically() {
        let build = || {
            let mut dm = DurableMetaverse::with_defaults(4);
            // Physical-authoritative entities: their *twins* live in the
            // virtual space, which is what a virtual air raid targets.
            for i in 0..24 {
                dm.spawn(format!("troop{i}"), EntityKind::Person, p(i as f64, i as f64), t(1));
            }
            dm.area_effect(
                Space::Virtual,
                "air_raid",
                Aabb::new(p(0.0, 0.0), p(11.5, 11.5)),
                "perish",
                true,
                t(2),
            );
            dm.commit(t(2));
            dm
        };
        let mut a = build();
        let b = build();
        assert_eq!(a.state_encoding(), b.state_encoding(), "same ops, same bytes");
        a.crash_and_recover();
        assert_eq!(a.state_encoding(), b.state_encoding(), "replayed bytes identical too");
        assert!(a.engine().live_count() < 24, "the raid retired someone");
    }
}
