//! Struct-of-arrays entity storage.
//!
//! The engine used to keep one `FastMap<EntityId, Entity>` — every
//! access paid a hash hop and landed on a ~130-byte struct mixing the
//! fields hot paths touch every tick (positions, retired flag) with
//! cold ones they never do (name string, attribute map). This arena
//! splits them: entities live in dense columns addressed by a stable
//! `u32` slot, with one id→slot map at the edge. Query filters read a
//! packed `retired` column, divergence analytics stream two position
//! columns sequentially, and slots are handed out in spawn order — per
//! shard that is ascending id order, so whole-arena scans are already
//! id-sorted and skip the sort entirely.
//!
//! [`Entity`] remains the owned construction/transfer type;
//! [`EntityRef`] is the borrowed column view the engine hands out.

use crate::entity::{Entity, EntityKind};
use mv_common::geom::Point;
use mv_common::hash::FastMap;
use mv_common::id::EntityId;
use std::collections::BTreeMap;

/// A borrowed view of one entity, assembled from the arena's columns.
///
/// Field-compatible with [`Entity`] at read sites (`.position`,
/// `.retired`, `.attrs`, …), so swapping the map of structs for the
/// arena did not ripple through every caller.
#[derive(Debug, Clone, Copy)]
pub struct EntityRef<'a> {
    /// Identifier (shared across both presences).
    pub id: EntityId,
    /// Human-readable name.
    pub name: &'a str,
    /// Kind.
    pub kind: EntityKind,
    /// Ground-truth position in the authoritative space.
    pub position: Point,
    /// The other space's materialized view of the position.
    pub twin_position: Point,
    /// Free-form numeric attributes.
    pub attrs: &'a BTreeMap<String, f64>,
    /// True once destroyed/perished/sold out.
    pub retired: bool,
}

impl EntityRef<'_> {
    /// Distance between truth and the materialized twin — the §IV-C
    /// incoherency of this entity.
    pub fn divergence(&self) -> f64 {
        self.position.dist(self.twin_position)
    }

    /// Read an attribute (0 default keeps call sites tidy).
    pub fn attr(&self, name: &str) -> f64 {
        self.attrs.get(name).copied().unwrap_or(0.0)
    }

    /// Copy into the owned form.
    pub fn to_entity(&self) -> Entity {
        Entity {
            id: self.id,
            name: self.name.to_owned(),
            kind: self.kind,
            position: self.position,
            twin_position: self.twin_position,
            attrs: self.attrs.clone(),
            retired: self.retired,
        }
    }
}

/// The struct-of-arrays arena (see module docs). Slots are never
/// reused: retirement flips a flag but keeps the row, matching the
/// engine's keep-for-audit semantics.
#[derive(Debug, Default)]
pub struct EntityArena {
    /// id → slot. The only hash map left on the entity path; every
    /// access below it is a dense column read.
    slots: FastMap<EntityId, u32>,
    // Hot columns: touched every tick by updates, queries, analytics.
    ids: Vec<EntityId>,
    positions: Vec<Point>,
    twin_positions: Vec<Point>,
    kinds: Vec<EntityKind>,
    retired: Vec<bool>,
    // Cold columns: touched on spawn, attr ops, and encode only.
    names: Vec<String>,
    attrs: Vec<BTreeMap<String, f64>>,
    /// Live (non-retired) rows, maintained incrementally so
    /// `live_count` is O(1) instead of a full scan.
    live: usize,
    /// True while `ids` is strictly ascending by slot (spawn order is
    /// id order everywhere in practice); lets whole-arena scans skip
    /// sorting. Turns false — permanently — on an out-of-order insert.
    ids_ascending: bool,
}

impl EntityArena {
    /// An empty arena.
    pub fn new() -> Self {
        EntityArena { ids_ascending: true, ..EntityArena::default() }
    }

    /// Rows (live + retired).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no entity was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Live (non-retired) rows.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Insert an entity, returning its slot. Ids must be unique; a
    /// duplicate replaces nothing and panics in debug builds.
    pub fn insert(&mut self, e: Entity) -> u32 {
        debug_assert!(!self.slots.contains_key(&e.id), "duplicate entity id {}", e.id);
        let slot = self.ids.len() as u32;
        if let Some(&last) = self.ids.last() {
            if e.id <= last {
                self.ids_ascending = false;
            }
        }
        self.slots.insert(e.id, slot);
        self.ids.push(e.id);
        self.positions.push(e.position);
        self.twin_positions.push(e.twin_position);
        self.kinds.push(e.kind);
        self.retired.push(e.retired);
        self.names.push(e.name);
        self.attrs.push(e.attrs);
        if !e.retired {
            self.live += 1;
        }
        slot
    }

    /// Slot of an id, if registered.
    pub fn slot_of(&self, id: EntityId) -> Option<u32> {
        self.slots.get(&id).copied()
    }

    /// Borrowed view by id.
    pub fn get(&self, id: EntityId) -> Option<EntityRef<'_>> {
        self.slot_of(id).and_then(|s| self.get_slot(s))
    }

    /// Borrowed view by slot; `None` on an out-of-range slot.
    ///
    /// Slot accessors here are total: slots only ever come from this
    /// arena, but the arena sits under the durable-replay path, so
    /// every read degrades gracefully instead of panicking. Out-of-range
    /// single-column reads below return the value a missing row would
    /// have (retired, origin positions, zero attrs); engine flows check
    /// [`retired`](EntityArena::retired) first, which turns an
    /// out-of-range slot into an error before any other column is read.
    pub fn get_slot(&self, slot: u32) -> Option<EntityRef<'_>> {
        let s = slot as usize;
        Some(EntityRef {
            id: self.ids.get(s).copied()?,
            name: self.names.get(s)?,
            kind: self.kinds.get(s).copied()?,
            position: self.positions.get(s).copied()?,
            twin_position: self.twin_positions.get(s).copied()?,
            attrs: self.attrs.get(s)?,
            retired: self.retired.get(s).copied()?,
        })
    }

    /// True when `id` is registered and retired. Unknown ids are not
    /// retired (queries only see registered ids).
    pub fn is_retired(&self, id: EntityId) -> bool {
        self.slot_of(id)
            .and_then(|s| self.retired.get(s as usize))
            .copied()
            .unwrap_or(false)
    }

    /// Retired flag by slot. Out-of-range slots read as retired, so a
    /// bad slot fails closed (callers treat retired as "gone").
    pub fn retired(&self, slot: u32) -> bool {
        self.retired.get(slot as usize).copied().unwrap_or(true)
    }

    /// Kind by slot (out of range: the default kind; unreachable after
    /// a [`retired`](EntityArena::retired) check, which fails closed).
    pub fn kind(&self, slot: u32) -> EntityKind {
        self.kinds.get(slot as usize).copied().unwrap_or(EntityKind::Person)
    }

    /// Ground-truth position by slot (out of range: origin).
    pub fn position(&self, slot: u32) -> Point {
        self.positions.get(slot as usize).copied().unwrap_or_default()
    }

    /// Twin position by slot (out of range: origin).
    pub fn twin_position(&self, slot: u32) -> Point {
        self.twin_positions.get(slot as usize).copied().unwrap_or_default()
    }

    /// Truth/twin distance by slot (out of range: 0).
    pub fn divergence(&self, slot: u32) -> f64 {
        match (self.positions.get(slot as usize), self.twin_positions.get(slot as usize)) {
            (Some(p), Some(t)) => p.dist(*t),
            _ => 0.0,
        }
    }

    /// Write the ground-truth position (no-op out of range).
    pub fn set_position(&mut self, slot: u32, p: Point) {
        if let Some(q) = self.positions.get_mut(slot as usize) {
            *q = p;
        }
    }

    /// Write the twin position (no-op out of range).
    pub fn set_twin_position(&mut self, slot: u32, p: Point) {
        if let Some(q) = self.twin_positions.get_mut(slot as usize) {
            *q = p;
        }
    }

    /// Read an attribute (0 default, mirroring [`EntityRef::attr`]).
    pub fn attr(&self, slot: u32, name: &str) -> f64 {
        self.attrs
            .get(slot as usize)
            .and_then(|m| m.get(name))
            .copied()
            .unwrap_or(0.0)
    }

    /// Write an attribute (no-op out of range).
    pub fn set_attr(&mut self, slot: u32, name: impl Into<String>, v: f64) {
        if let Some(m) = self.attrs.get_mut(slot as usize) {
            m.insert(name.into(), v);
        }
    }

    /// Flip the retired flag on (idempotent calls are the caller's
    /// bug; the engine checks first).
    pub fn retire(&mut self, slot: u32) {
        if let Some(r) = self.retired.get_mut(slot as usize) {
            if !*r {
                *r = true;
                self.live -= 1;
            }
        }
    }

    /// `(sum, max, live count)` of twin divergences in ascending-id
    /// order — f64 addition is not associative, so the fold order is
    /// pinned. In the common case (spawn order = id order) this is one
    /// sequential pass over two dense columns, no sort, no hashing.
    pub fn divergence_parts(&self) -> (f64, f64, usize) {
        let rows = self
            .retired
            .iter()
            .zip(self.positions.iter().zip(self.twin_positions.iter()));
        if self.ids_ascending {
            let mut acc = (0.0f64, 0.0f64, 0usize);
            for (&retired, (p, t)) in rows {
                if !retired {
                    let d = p.dist(*t);
                    acc = (acc.0 + d, f64::max(acc.1, d), acc.2 + 1);
                }
            }
            acc
        } else {
            let mut parts: Vec<(EntityId, f64)> = self
                .ids
                .iter()
                .zip(rows)
                .filter(|(_, (&retired, _))| !retired)
                .map(|(&id, (_, (p, t)))| (id, p.dist(*t)))
                .collect();
            parts.sort_unstable_by_key(|&(id, _)| id);
            parts.iter().fold((0.0, 0.0, 0), |(sum, max, count), &(_, d)| {
                (sum + d, f64::max(max, d), count + 1)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ent(i: u64, x: f64) -> Entity {
        Entity::new(EntityId::new(i), format!("e{i}"), EntityKind::Person, Point::new(x, 0.0))
    }

    #[test]
    fn insert_get_and_columns_agree() {
        let mut a = EntityArena::new();
        let s0 = a.insert(ent(0, 1.0));
        let s1 = a.insert(ent(1, 2.0));
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(a.len(), 2);
        assert_eq!(a.live_count(), 2);
        let r = a.get(EntityId::new(1)).unwrap();
        assert_eq!(r.id, EntityId::new(1));
        assert_eq!(r.name, "e1");
        assert_eq!(r.position, Point::new(2.0, 0.0));
        assert_eq!(r.twin_position, r.position);
        assert!(!r.retired);
        assert_eq!(r.divergence(), 0.0);
        assert!(a.get(EntityId::new(9)).is_none());
    }

    #[test]
    fn retire_is_a_flag_not_a_removal() {
        let mut a = EntityArena::new();
        a.insert(ent(0, 0.0));
        let s = a.slot_of(EntityId::new(0)).unwrap();
        a.retire(s);
        assert!(a.is_retired(EntityId::new(0)));
        assert_eq!(a.live_count(), 0);
        assert_eq!(a.len(), 1, "row kept for audit");
        assert_eq!(a.get(EntityId::new(0)).unwrap().name, "e0");
    }

    #[test]
    fn attrs_and_positions_update_in_place() {
        let mut a = EntityArena::new();
        let s = a.insert(ent(3, 0.0));
        a.set_position(s, Point::new(5.0, 0.0));
        assert_eq!(a.divergence(s), 5.0);
        a.set_twin_position(s, Point::new(5.0, 0.0));
        assert_eq!(a.divergence(s), 0.0);
        assert_eq!(a.attr(s, "fuel"), 0.0);
        a.set_attr(s, "fuel", 0.75);
        assert_eq!(a.attr(s, "fuel"), 0.75);
        assert_eq!(a.get_slot(s).unwrap().attr("fuel"), 0.75);
        assert!(a.get_slot(999).is_none());
        assert!(a.retired(999), "out-of-range slots fail closed as retired");
    }

    #[test]
    fn divergence_parts_match_between_fast_and_sorted_paths() {
        // Build the same population twice: in id order (fast path) and
        // shuffled (sort fallback); the fold must agree bit-for-bit.
        let mut moved = Vec::new();
        for i in 0..40u64 {
            let mut e = ent(i, 0.0);
            e.position = Point::new(i as f64 * 0.1, 0.3);
            if i % 7 == 0 {
                e.retired = true;
            }
            moved.push(e);
        }
        let mut ordered = EntityArena::new();
        for e in &moved {
            ordered.insert(e.clone());
        }
        let mut shuffled = EntityArena::new();
        for e in moved.iter().rev() {
            shuffled.insert(e.clone());
        }
        assert!(!shuffled.ids_ascending);
        assert_eq!(ordered.divergence_parts(), shuffled.divergence_parts());
        assert_eq!(ordered.live_count(), shuffled.live_count());
    }
}
