//! Interest management: per-user areas of interest over the co-space.
//!
//! §IV quotes the MMO literature's open problem of *"methods to guarantee
//! consistency across multiple virtual views"* scaled to many users. The
//! standard engine answer is interest management: each user only receives
//! updates about entities inside their area of interest (AOI), so the
//! per-user stream scales with local density, not world population.
//!
//! [`InterestManager`] sits on top of [`crate::Metaverse`]: users attach
//! an AOI to their viewer entity; after each engine tick the manager
//! diffs every user's visible set and emits enter/leave deltas — the
//! messages an update-dissemination layer would actually ship.

use crate::engine::Metaverse;
use mv_common::geom::Aabb;
use mv_common::hash::{FastMap, FastSet};
use mv_common::id::{ClientId, EntityId};
use mv_common::metrics::Counters;
use mv_common::Space;
use mv_common::{MvError, MvResult};

/// A delta delivered to one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterestUpdate {
    /// An entity entered the client's AOI (ship full state).
    Entered(ClientId, EntityId),
    /// An entity left the AOI (client may drop its replica).
    Left(ClientId, EntityId),
}

#[derive(Debug)]
struct Aoi {
    viewer: EntityId,
    radius: f64,
    space: Space,
    known: FastSet<EntityId>,
}

/// The manager.
#[derive(Debug, Default)]
pub struct InterestManager {
    aois: FastMap<ClientId, Aoi>,
    /// `enters`, `leaves`, `clients_ticked` counters.
    pub stats: Counters,
}

impl InterestManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach an AOI: `client` follows `viewer` and sees everything
    /// visible in `space` within `radius` of it.
    pub fn subscribe(&mut self, client: ClientId, viewer: EntityId, radius: f64, space: Space) {
        assert!(radius > 0.0, "AOI radius must be positive");
        self.aois.insert(client, Aoi { viewer, radius, space, known: FastSet::default() });
    }

    /// Detach a client.
    pub fn unsubscribe(&mut self, client: ClientId) -> bool {
        self.aois.remove(&client).is_some()
    }

    /// Subscribed clients.
    pub fn client_count(&self) -> usize {
        self.aois.len()
    }

    /// Diff every client's AOI against the world; returns the deltas in
    /// deterministic (client, entity) order.
    pub fn tick(&mut self, world: &Metaverse) -> MvResult<Vec<InterestUpdate>> {
        let mut out = Vec::new();
        let mut clients: Vec<ClientId> = self.aois.keys().copied().collect();
        clients.sort_unstable();
        for client in clients {
            let aoi = self.aois.get_mut(&client).expect("listed above");
            let viewer = world.entity(aoi.viewer)?;
            if viewer.retired {
                return Err(MvError::IllegalState(format!(
                    "viewer {} of client {client} is retired",
                    aoi.viewer
                )));
            }
            let center = viewer.position;
            let visible: FastSet<EntityId> = world
                .query_visible(aoi.space, &Aabb::centered(center, aoi.radius))
                .into_iter()
                .filter(|&id| id != aoi.viewer)
                .collect();
            let mut entered: Vec<EntityId> =
                visible.difference(&aoi.known).copied().collect();
            let mut left: Vec<EntityId> = aoi.known.difference(&visible).copied().collect();
            entered.sort_unstable();
            left.sort_unstable();
            for e in entered {
                self.stats.incr("enters");
                out.push(InterestUpdate::Entered(client, e));
            }
            for e in left {
                self.stats.incr("leaves");
                out.push(InterestUpdate::Left(client, e));
            }
            aoi.known = visible;
            self.stats.incr("clients_ticked");
        }
        Ok(out)
    }

    /// Entities currently replicated at a client.
    pub fn replica_count(&self, client: ClientId) -> usize {
        self.aois.get(&client).map_or(0, |a| a.known.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncPolicy;
    use crate::entity::EntityKind;
    use mv_common::geom::Point;
    use mv_common::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn world_with_viewer() -> (Metaverse, EntityId) {
        let mut world = Metaverse::new(SyncPolicy { position_bound: 0.1, attr_bound: 0.0 }, 50.0);
        let viewer = world.spawn("viewer", EntityKind::Avatar, Point::ORIGIN, t(0));
        (world, viewer)
    }

    #[test]
    fn enter_and_leave_deltas() {
        let (mut world, viewer) = world_with_viewer();
        let mut im = InterestManager::new();
        let client = ClientId::new(1);
        im.subscribe(client, viewer, 50.0, Space::Virtual);
        assert!(im.tick(&world).unwrap().is_empty());

        let npc = world.spawn("npc", EntityKind::Avatar, Point::new(10.0, 0.0), t(1));
        let updates = im.tick(&world).unwrap();
        assert_eq!(updates, vec![InterestUpdate::Entered(client, npc)]);
        assert_eq!(im.replica_count(client), 1);
        // No change, no traffic.
        assert!(im.tick(&world).unwrap().is_empty());
        // The NPC wanders off.
        world.update_position(npc, Point::new(500.0, 0.0), t(2)).unwrap();
        let updates = im.tick(&world).unwrap();
        assert_eq!(updates, vec![InterestUpdate::Left(client, npc)]);
        assert_eq!(im.replica_count(client), 0);
    }

    #[test]
    fn viewer_movement_shifts_the_aoi() {
        let (mut world, viewer) = world_with_viewer();
        let far = world.spawn("far", EntityKind::Avatar, Point::new(200.0, 0.0), t(0));
        let mut im = InterestManager::new();
        let client = ClientId::new(1);
        im.subscribe(client, viewer, 50.0, Space::Virtual);
        assert!(im.tick(&world).unwrap().is_empty());
        world.update_position(viewer, Point::new(180.0, 0.0), t(1)).unwrap();
        let updates = im.tick(&world).unwrap();
        assert_eq!(updates, vec![InterestUpdate::Entered(client, far)]);
    }

    #[test]
    fn cross_space_twins_are_visible_in_the_aoi() {
        // A physical person's twin enters a virtual viewer's AOI.
        let (mut world, viewer) = world_with_viewer();
        let mut im = InterestManager::new();
        let client = ClientId::new(1);
        im.subscribe(client, viewer, 50.0, Space::Virtual);
        let person = world.spawn("person", EntityKind::Person, Point::new(20.0, 0.0), t(1));
        let updates = im.tick(&world).unwrap();
        assert_eq!(updates, vec![InterestUpdate::Entered(client, person)]);
    }

    #[test]
    fn traffic_scales_with_local_density_not_world_size() {
        let (mut world, viewer) = world_with_viewer();
        // 5 nearby entities, 500 far away.
        for i in 0..5 {
            world.spawn(format!("near{i}"), EntityKind::Avatar, Point::new(i as f64, 5.0), t(0));
        }
        for i in 0..500 {
            world.spawn(
                format!("far{i}"),
                EntityKind::Avatar,
                Point::new(5_000.0 + i as f64, 0.0),
                t(0),
            );
        }
        let mut im = InterestManager::new();
        let client = ClientId::new(1);
        im.subscribe(client, viewer, 50.0, Space::Virtual);
        let updates = im.tick(&world).unwrap();
        assert_eq!(updates.len(), 5, "only the local cluster is delivered");
    }

    #[test]
    fn multiple_clients_are_independent_and_ordered() {
        let (mut world, v1) = world_with_viewer();
        let v2 = world.spawn("viewer2", EntityKind::Avatar, Point::new(1_000.0, 0.0), t(0));
        let mut im = InterestManager::new();
        im.subscribe(ClientId::new(2), v2, 50.0, Space::Virtual);
        im.subscribe(ClientId::new(1), v1, 50.0, Space::Virtual);
        let near_v2 = world.spawn("x", EntityKind::Avatar, Point::new(1_010.0, 0.0), t(1));
        let updates = im.tick(&world).unwrap();
        // Only client 2's AOI holds x; client 1 sees nobody.
        assert_eq!(updates, vec![InterestUpdate::Entered(ClientId::new(2), near_v2)]);
        // Deterministic order: client 1's (possibly empty) deltas first.
        assert_eq!(im.client_count(), 2);
    }

    #[test]
    fn retired_viewer_is_an_error() {
        let (mut world, viewer) = world_with_viewer();
        let mut im = InterestManager::new();
        im.subscribe(ClientId::new(1), viewer, 50.0, Space::Virtual);
        world.retire(viewer, t(1)).unwrap();
        assert!(im.tick(&world).is_err());
        assert!(im.unsubscribe(ClientId::new(1)));
        assert!(!im.unsubscribe(ClientId::new(1)));
    }
}
