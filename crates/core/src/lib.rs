#![forbid(unsafe_code)]
//! `mv-core` — the co-space engine (the paper's primary contribution,
//! made executable).
//!
//! Fig. 1 of the paper shows data flowing *within* each space and
//! *across* spaces: the physical space is sensed and materialized in the
//! virtual space, and virtual actions are relayed back to physical
//! actors. This crate is that loop:
//!
//! * [`entity`] — co-space entities with a presence in either or both
//!   spaces (a soldier and their virtual twin; a product and its virtual
//!   listing);
//! * [`events`] — the cross-space event model and bus (a virtual
//!   air-raid becomes physical "perish" commands; a physical purchase
//!   becomes a virtual stock update);
//! * [`engine`] — [`engine::Metaverse`]: entity registry, one spatial
//!   index per space, coherency-bounded twin synchronization
//!   (physical→virtual, §IV-C), virtual→physical command relay, and
//!   divergence accounting;
//! * [`interest`] — per-user area-of-interest management so each user's
//!   update stream scales with local density, not world population (the
//!   MMO "consistency across multiple virtual views" problem);
//! * [`sharded`] — [`sharded::ShardedMetaverse`]: the same engine
//!   partitioned across hash-owned shards with parallel batched writes
//!   and deterministic event-log merging (§IV-C at ingest scale);
//! * [`durable`] — [`durable::DurableMetaverse`]: the sharded engine
//!   wired to `mv-storage` (log-then-apply through a group-commit WAL,
//!   event-log drain into a sharded LSM, replay-based crash recovery —
//!   the §IV-F durable ingest path, measured in E17);
//! * [`replicated`] — [`replicated::ReplicatedMetaverse`]: the durable
//!   engine raft-replicated across a 3–5 node region over the fault
//!   simulator (`mv-raft` leader election, log replication, snapshot
//!   install), so acknowledged writes survive leader crashes, minority
//!   partitions, and total per-node state loss (§IV disaggregation;
//!   proven by `tests/raft_failover.rs`, measured in E20);
//! * [`txn`] — cross-shard snapshot-isolation/serializable transactions
//!   over the durable engine: MVCC version chains per entity field,
//!   two-phase commit riding the group-commit WAL, in-doubt resolution
//!   on recovery (§IV-E1, proven by `tests/txn_differential.rs`);
//! * [`ops`] — a replayable operation model and generator used to prove
//!   the sharded engine observationally equivalent to the sequential
//!   one (`tests/sharded_differential.rs`).
//!
//! The examples in the repository root (`examples/`) drive this façade
//! through the paper's five §II scenarios.

pub mod arena;
pub mod durable;
pub mod engine;
pub mod entity;
pub mod events;
pub mod interest;
pub mod merge;
pub mod ops;
pub mod replicated;
pub mod sharded;
pub mod txn;

pub use arena::{EntityArena, EntityRef};
pub use durable::{DurableMetaverse, DurableOp};
pub use replicated::{RegionConfig, ReplicatedMetaverse};
pub use txn::{MetaTxn, TxnCrashPoint};
pub use engine::{Metaverse, SyncPolicy};
pub use entity::{Entity, EntityKind};
pub use events::{Command, CoEvent, EventKind};
pub use interest::{InterestManager, InterestUpdate};
pub use merge::KwayMerger;
pub use sharded::{shard_of, ShardedMetaverse, WriteOp};
