//! Reusable k-way merge scratch for cross-shard query reassembly.
//!
//! Every [`crate::ShardedMetaverse`] query merges k id-sorted per-shard
//! result lists. The merge itself is textbook (binary heap of list
//! heads); what this module adds is *reuse*: the heap storage and the
//! per-list cursors live in a [`KwayMerger`] owned by the engine, so a
//! steady-state query loop performs zero merge-scratch allocations —
//! only the result `Vec` the caller receives is fresh. At macro-bench
//! query rates (hundreds of area-of-interest probes per tick, every
//! tick) the per-query `BinaryHeap` + cursor-vector allocations this
//! replaces were pure churn on the hot path.

use mv_common::id::EntityId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable scratch for merging k id-sorted, pairwise-disjoint lists.
#[derive(Debug, Default)]
pub struct KwayMerger {
    /// Heap of `(head value, list index)`, min-first. Cleared (capacity
    /// kept) per merge.
    heap: BinaryHeap<Reverse<(EntityId, usize)>>,
    /// Per-list read cursor. Cleared (capacity kept) per merge.
    cursors: Vec<usize>,
}

impl KwayMerger {
    /// A merger with empty scratch (grows to its high-water mark on
    /// first use, then stays).
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge id-sorted lists into `out` (cleared first). The lists come
    /// from disjoint shards, so no equal keys exist across lists; ties
    /// cannot occur and the merge is trivially stable.
    pub fn merge_into<L: AsRef<[EntityId]>>(&mut self, lists: &[L], out: &mut Vec<EntityId>) {
        out.clear();
        out.reserve(lists.iter().map(|l| l.as_ref().len()).sum());
        self.heap.clear();
        self.cursors.clear();
        self.cursors.resize(lists.len(), 0);
        for (li, l) in lists.iter().enumerate() {
            if let Some(&first) = l.as_ref().first() {
                self.heap.push(Reverse((first, li)));
            }
        }
        while let Some(Reverse((id, li))) = self.heap.pop() {
            out.push(id);
            let next = self.cursors.get_mut(li).and_then(|cur| {
                *cur += 1;
                lists.get(li).and_then(|l| l.as_ref().get(*cur)).copied()
            });
            if let Some(next) = next {
                self.heap.push(Reverse((next, li)));
            }
        }
    }

    /// [`merge_into`](KwayMerger::merge_into) returning a fresh `Vec`.
    pub fn merge<L: AsRef<[EntityId]>>(&mut self, lists: &[L]) -> Vec<EntityId> {
        let mut out = Vec::new();
        self.merge_into(lists, &mut out);
        out
    }

    /// Current scratch capacities `(heap, cursors)` — lets tests assert
    /// the steady state stops growing.
    pub fn scratch_capacity(&self) -> (usize, usize) {
        (self.heap.capacity(), self.cursors.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u64) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn merges_disjoint_sorted_lists() {
        let mut m = KwayMerger::new();
        let merged = m.merge(&[
            vec![id(0), id(5), id(9)],
            vec![],
            vec![id(2), id(3)],
            vec![id(1), id(7)],
        ]);
        assert_eq!(merged, [0, 1, 2, 3, 5, 7, 9].map(id).to_vec());
    }

    #[test]
    fn empty_inputs_merge_to_empty() {
        let mut m = KwayMerger::new();
        assert!(m.merge::<Vec<EntityId>>(&[]).is_empty());
        assert!(m.merge(&[Vec::new(), Vec::new()]).is_empty());
    }

    #[test]
    fn works_over_borrowed_slices() {
        let mut m = KwayMerger::new();
        let a = [id(1), id(4)];
        let b = [id(2), id(3)];
        let lists: Vec<&[EntityId]> = vec![&a, &b];
        assert_eq!(m.merge(&lists), [1, 2, 3, 4].map(id).to_vec());
    }

    #[test]
    fn steady_state_reuses_scratch_without_growing() {
        let mut m = KwayMerger::new();
        let lists: Vec<Vec<EntityId>> = (0..8)
            .map(|li| (0..100u64).map(|i| id(i * 8 + li)).collect())
            .collect();
        let mut out = Vec::new();
        m.merge_into(&lists, &mut out);
        let warm = m.scratch_capacity();
        let out_cap = out.capacity();
        for _ in 0..1000 {
            m.merge_into(&lists, &mut out);
        }
        assert_eq!(m.scratch_capacity(), warm, "merge scratch must not regrow");
        assert_eq!(out.capacity(), out_cap, "reused output must not regrow");
        assert_eq!(out.len(), 800);
        assert!(out.windows(2).all(|w| w[0] < w[1]), "output sorted strictly");
    }
}
