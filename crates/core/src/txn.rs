//! Cross-shard transactions over the durable engine.
//!
//! §IV-E1 calls distributed transactions essential for data that spans
//! co-space partitions (trades, shared-object mutations crossing region
//! boundaries). This module wires `mv-txn`'s MVCC through
//! [`DurableMetaverse`]: a transaction reads a consistent snapshot of
//! entity state (version chains in [`mv_txn::ShardedMvcc`], routed with
//! the same hash as the KV shards, over the live engine for keys never
//! written transactionally), buffers writes, and commits with two-phase
//! commit riding the group-commit WAL:
//!
//! 1. **validate + lock** — every participant shard runs
//!    first-committer-wins validation over the write set *and* the read
//!    set (serializable, not just SI), then write-locks the transaction's
//!    keys;
//! 2. **prepare records** — one [`DurableOp::TxnPrepare`] per write
//!    shard is appended and the batch synced (phase-1 durability);
//! 3. **decision record** — one [`DurableOp::TxnDecision`] is appended
//!    and synced: *this sync is the commit point*;
//! 4. **apply** — versions install at the decision's oracle timestamp
//!    and the buffered ops replay into the engine, in exactly the order
//!    recovery would replay them from the log.
//!
//! A crash anywhere before step 3's sync leaves the transaction
//! *in-doubt*: recovery finds prepares with no decision and presumes
//! abort (nothing was applied, nothing will be). A crash after the
//! commit point loses nothing: recovery replays the decision's ops from
//! the prepare records. Either way no transaction is ever half-applied —
//! `tests/txn_differential.rs` sweeps every crash boundary and checks
//! byte-identical recovery.
//!
//! Plain (non-transactional) writes share the version store: every
//! engine-accepted `update_attr`/`update_position`/`apply_batch` write
//! installs a single-op committed version at a fresh oracle timestamp,
//! live and on recovery alike — a transactional snapshot can never
//! observe a torn read from a bypassing write (the anomaly DESIGN.md
//! §10 used to document). Keys written *only* at spawn time still read
//! through to the engine; a key's chain begins at its first write of
//! either kind, and a snapshot older than the chain reads
//! absent-at-snapshot, never a newer live value.
//!
//! GC is automatic: every commit and abort collects at the oldest live
//! snapshot's begin timestamp (a long-running transaction pins the
//! horizon), and recovery finishes with one collection pass so rebuilt
//! chains land in the same trimmed state.

use crate::durable::{DurableMetaverse, DurableOp};
use bytes::Bytes;
use mv_common::geom::Point;
use mv_common::codec::wire_u32;
use mv_common::id::EntityId;
use mv_common::time::SimTime;
use mv_common::{MvError, MvResult};
use mv_obs::{SharedRegistry, StatSet, TraceCtx};
use mv_txn::mvcc::Transaction;
use mv_txn::{IsolationLevel, ShardedMvcc};
use std::collections::BTreeMap;

// ---- MVCC key scheme ---------------------------------------------------
//
// Version chains are keyed by entity field: `[tag][entity id LE 8B]…`.
// Routing hashes only the id bytes with the same function `ShardedKv`
// uses on its (id-keyed) snapshot records, so an entity's version chains
// and its KV snapshot land on the same shard index.

const KEY_POSITION: u8 = 0;
const KEY_ATTR: u8 = 1;

/// MVCC key for an entity's ground-truth position.
pub(crate) fn pos_key(id: EntityId) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.push(KEY_POSITION);
    k.extend_from_slice(&id.raw().to_le_bytes());
    k
}

/// MVCC key for one entity attribute.
pub(crate) fn attr_key(id: EntityId, name: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(9 + name.len());
    k.push(KEY_ATTR);
    k.extend_from_slice(&id.raw().to_le_bytes());
    k.extend_from_slice(name.as_bytes());
    k
}

/// Shard router: hash the embedded entity-id bytes exactly as the KV
/// shards do, so MVCC and KV agree on placement.
pub(crate) fn txn_route(key: &[u8], shards: usize) -> usize {
    let id_bytes = key.get(1..9).unwrap_or(key);
    mv_storage::sharded_kv::shard_of_key(id_bytes, shards)
}

fn f64_value(v: f64) -> Bytes {
    Bytes::copy_from_slice(&v.to_le_bytes())
}

fn decode_f64(b: &Bytes) -> Option<f64> {
    let arr: [u8; 8] = b.as_ref().try_into().ok()?;
    Some(f64::from_le_bytes(arr))
}

fn point_value(p: Point) -> Bytes {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&p.x.to_le_bytes());
    out.extend_from_slice(&p.y.to_le_bytes());
    Bytes::from(out)
}

fn decode_point(b: &Bytes) -> Option<Point> {
    let x: [u8; 8] = b.get(0..8)?.try_into().ok()?;
    let y: [u8; 8] = b.get(8..16)?.try_into().ok()?;
    (b.len() == 16).then(|| Point::new(f64::from_le_bytes(x), f64::from_le_bytes(y)))
}

/// The MVCC key + value a transactional leaf op writes.
pub(crate) fn mvcc_kv_for(op: &DurableOp) -> Option<(Vec<u8>, Option<Bytes>)> {
    match op {
        DurableOp::Position { id, position, .. } => Some((pos_key(*id), Some(point_value(*position)))),
        DurableOp::Attr { id, name, value, .. } => {
            Some((attr_key(*id, name), Some(f64_value(*value))))
        }
        _ => None,
    }
}

/// Transactional state owned by [`DurableMetaverse`]: the sharded MVCC
/// overlay (serializable) and the `core.txn.*` counters.
pub(crate) struct TxnState {
    pub(crate) mvcc: ShardedMvcc,
    pub(crate) stats: StatSet,
}

impl TxnState {
    pub(crate) fn new(shards: usize) -> Self {
        TxnState {
            mvcc: ShardedMvcc::new(shards.max(1), IsolationLevel::Serializable, txn_route),
            stats: StatSet::new("core.txn"),
        }
    }

    /// Recovery: install the MVCC versions a decided-commit transaction
    /// wrote, deduplicated to the final value per key (the live path
    /// installs from the write buffer, which holds final values only —
    /// the rebuilt chains must match it version-for-version).
    pub(crate) fn install_recovered(&mut self, ops: &[DurableOp], commit_ts: u64) {
        let mut final_writes: BTreeMap<Vec<u8>, Option<Bytes>> = BTreeMap::new();
        for op in ops {
            if let Some((k, v)) = mvcc_kv_for(op) {
                final_writes.insert(k, v);
            }
        }
        for (k, v) in final_writes {
            self.mvcc.install_version(&k, v, commit_ts);
        }
        self.stats.incr("recovered_commits");
    }

    /// Install the single-key version a *plain* (non-transactional)
    /// write produces, at a fresh commit timestamp drawn from the op's
    /// own time. Plain ingest and transactional commits now share one
    /// version store, so a transactional snapshot can never observe a
    /// torn read from a bypassing write (the old §10 anomaly). Called on
    /// the live path after the engine accepts the write, and on recovery
    /// after a successful replay — same order, same timestamps, so the
    /// rebuilt chains stay byte-identical.
    pub(crate) fn install_plain(&mut self, op: &DurableOp) {
        if let Some((k, v)) = mvcc_kv_for(op) {
            let commit_ts = self.mvcc.oracle().next(op.ts());
            self.mvcc.install_version(&k, v, commit_ts);
            self.stats.incr("plain_versions");
        }
    }
}

/// An open transaction against a [`DurableMetaverse`]: a snapshot
/// handle, buffered writes, and the durable ops to replay on commit.
/// Reads go through [`DurableMetaverse::txn_read_attr`] /
/// [`DurableMetaverse::txn_read_position`]; writes buffer locally here
/// and touch nothing until [`DurableMetaverse::commit_txn`].
pub struct MetaTxn {
    pub(crate) inner: Transaction,
    pub(crate) ops: Vec<DurableOp>,
    pub(crate) root: Option<TraceCtx>,
}

impl MetaTxn {
    /// Raw transaction id (also the id logged in 2PC records).
    pub fn id(&self) -> u64 {
        self.inner.id.raw()
    }

    /// Snapshot timestamp.
    pub fn begin_ts(&self) -> u64 {
        self.inner.begin_ts()
    }

    /// Buffer an attribute write.
    pub fn write_attr(&mut self, id: EntityId, name: &str, value: f64, now: SimTime) {
        self.inner.write(attr_key(id, name), f64_value(value));
        self.ops.push(DurableOp::Attr { id, name: name.to_string(), value, ts: now });
    }

    /// Buffer a ground-truth position write.
    pub fn write_position(&mut self, id: EntityId, position: Point, now: SimTime) {
        self.inner.write(pos_key(id), point_value(position));
        self.ops.push(DurableOp::Position { id, position, ts: now });
    }

    /// Number of buffered writes (distinct keys).
    pub fn write_count(&self) -> usize {
        self.inner.write_count()
    }
}

/// Where [`DurableMetaverse::commit_txn_crashing`] pulls the plug. Each
/// point sits on a prepare/decision boundary of the 2PC flow; the sweep
/// in `tests/txn_differential.rs` visits all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnCrashPoint {
    /// After appending the first `n` prepare records (1-based), before
    /// any sync: the whole transaction sits in the volatile WAL tail.
    AfterPrepare(usize),
    /// After the phase-1 sync: prepares durable, no decision — the
    /// canonical in-doubt state.
    AfterPrepareSync,
    /// Decision appended but unsynced: still in-doubt (the decision
    /// batch dies with the crash).
    AfterDecisionAppend,
    /// Decision synced — *past the commit point* — but nothing applied:
    /// recovery must fully apply the transaction.
    AfterDecisionSync,
}

impl TxnCrashPoint {
    /// Every boundary for a transaction spanning `write_shards` shards.
    pub fn sweep(write_shards: usize) -> Vec<TxnCrashPoint> {
        let mut points: Vec<TxnCrashPoint> =
            (1..=write_shards.max(1)).map(TxnCrashPoint::AfterPrepare).collect();
        points.extend([
            TxnCrashPoint::AfterPrepareSync,
            TxnCrashPoint::AfterDecisionAppend,
            TxnCrashPoint::AfterDecisionSync,
        ]);
        points
    }
}

impl DurableMetaverse {
    /// Begin a transaction snapshotted at the current oracle timestamp.
    pub fn txn(&mut self, now: SimTime) -> MetaTxn {
        self.txns.stats.incr("begun");
        let root = self.tracer.as_ref().and_then(|tr| tr.maybe_trace("txn.begin", now));
        MetaTxn { inner: self.txns.mvcc.begin(), ops: Vec::new(), root }
    }

    /// Read an attribute inside `txn`: buffered write, else snapshot
    /// version, else (for keys with no version chain at all — written
    /// only at spawn time) the live engine value. `None` =
    /// entity/attribute absent at the snapshot.
    pub fn txn_read_attr(&self, txn: &mut MetaTxn, id: EntityId, name: &str) -> Option<f64> {
        let key = attr_key(id, name);
        match self.txns.mvcc.read_versioned(&mut txn.inner, &key) {
            Some(visible) => visible.as_ref().and_then(decode_f64),
            None => self.engine.entity(id).ok().and_then(|e| e.attrs.get(name).copied()),
        }
    }

    /// Read a ground-truth position inside `txn` (same fallback rules as
    /// [`Self::txn_read_attr`]).
    pub fn txn_read_position(&self, txn: &mut MetaTxn, id: EntityId) -> Option<Point> {
        let key = pos_key(id);
        match self.txns.mvcc.read_versioned(&mut txn.inner, &key) {
            Some(visible) => visible.as_ref().and_then(decode_point),
            None => self.engine.entity(id).ok().map(|e| e.position),
        }
    }

    /// Commit `txn` with cross-shard 2PC (see the module docs). Returns
    /// the commit timestamp; [`MvError::Conflict`] aborts the
    /// transaction cleanly (nothing logged, nothing applied, no locks
    /// left behind).
    pub fn commit_txn(&mut self, txn: MetaTxn, now: SimTime) -> MvResult<u64> {
        // `None` only happens when a crash point fires; there is none.
        self.commit_txn_crashing(txn, now, None).map(|ts| ts.unwrap_or(0))
    }

    /// [`Self::commit_txn`] with an injected crash: at `crash`, the
    /// commit stops dead and returns `Ok(None)` — the caller owns a
    /// half-written WAL and *must* [`Self::crash_and_recover`] before
    /// touching the engine again, exactly as after a process kill.
    pub fn commit_txn_crashing(
        &mut self,
        txn: MetaTxn,
        now: SimTime,
        crash: Option<TxnCrashPoint>,
    ) -> MvResult<Option<u64>> {
        let MetaTxn { inner, ops, root } = txn;
        let txn_id = inner.id;
        let crashed = move |dm: &mut Self, root: Option<TraceCtx>| {
            // The snapshot is retired even on a simulated process kill:
            // recovery rebuilds `TxnState` wholesale, but the surviving
            // in-memory registry must not pin the GC horizon on a ghost.
            dm.txns.mvcc.finish(txn_id);
            dm.txns.stats.incr("crash_interrupted");
            if let (Some(tr), Some(c)) = (&dm.tracer, root) {
                tr.abort(c.span, "lost");
            }
            Ok(None)
        };

        // Phase 1a: validate + write-lock every participant shard
        // (write shards, plus read shards for serializable validation),
        // in ascending index order so concurrent preparers cannot
        // deadlock.
        let participants = self.txns.mvcc.participants(&inner);
        for (i, &si) in participants.iter().enumerate() {
            let prep_span = match (&self.tracer, root) {
                (Some(tr), Some(c)) => Some(tr.child(c, "txn.prepare", now)),
                _ => None,
            };
            match self.txns.mvcc.prepare_shard(&inner, si) {
                Ok(()) => {
                    if let (Some(tr), Some(s)) = (&self.tracer, prep_span) {
                        tr.close(s, now, "prepared");
                    }
                }
                Err(e) => {
                    if let (Some(tr), Some(s)) = (&self.tracer, prep_span) {
                        tr.close(s, now, "conflict");
                    }
                    self.txns.mvcc.release(&inner, participants.get(..i).unwrap_or(&[]));
                    self.txns.mvcc.finish(inner.id);
                    self.auto_gc();
                    self.txns.stats.incr("aborted_conflict");
                    if let (Some(tr), Some(c)) = (&self.tracer, root) {
                        tr.event(c, "txn.abort", now, "conflict");
                        tr.close(c.span, now, "aborted");
                    }
                    return Err(e);
                }
            }
        }

        // Phase 1b: durable prepare records, one per write shard, in
        // shard order — the order recovery replays in. A single-shard
        // transaction takes the fast path: prepare and decision ride
        // *one* batch and one sync — batch recovery is all-or-nothing,
        // so "decision durable ⟹ prepare durable" still holds.
        let write_shards = self.txns.mvcc.write_shards(&inner);
        let by_shard = self.ops_by_shard(&ops, &write_shards);
        let fast_path = by_shard.len() == 1;
        for (logged, (si, shard_ops)) in by_shard.iter().enumerate() {
            self.log(&DurableOp::TxnPrepare {
                txn: inner.id.raw(),
                shard: wire_u32(*si),
                ops: shard_ops.clone(),
                ts: now,
            });
            self.txns.stats.incr("prepares_logged");
            if crash == Some(TxnCrashPoint::AfterPrepare(logged + 1)) {
                return crashed(self, root);
            }
        }
        if !by_shard.is_empty() && !fast_path {
            self.wal.sync();
            self.txns.stats.incr("commit_syncs");
        }
        if crash == Some(TxnCrashPoint::AfterPrepareSync) {
            return crashed(self, root);
        }

        // Phase 2: the decision. Its sync is the commit point.
        let commit_ts = self.txns.mvcc.oracle().next(now);
        if !by_shard.is_empty() {
            self.log(&DurableOp::TxnDecision {
                txn: inner.id.raw(),
                commit: true,
                commit_ts,
                ts: now,
            });
            self.txns.stats.incr("decisions_logged");
            if crash == Some(TxnCrashPoint::AfterDecisionAppend) {
                return crashed(self, root);
            }
            self.wal.sync();
            self.txns.stats.incr("commit_syncs");
        }
        if crash == Some(TxnCrashPoint::AfterDecisionSync) {
            return crashed(self, root);
        }

        // Apply: install versions at the decision timestamp, replay the
        // buffered ops into the engine in prepare-record order.
        self.txns.mvcc.install(&inner, commit_ts);
        for (_, shard_ops) in by_shard {
            for op in shard_ops {
                Self::replay(&mut self.engine, &mut self.ids, op);
            }
        }
        self.txns.mvcc.finish(inner.id);
        self.auto_gc();
        self.txns.stats.incr("committed");
        match write_shards.len() {
            0 => self.txns.stats.incr("readonly_commits"),
            1 => self.txns.stats.incr("single_shard_commits"),
            _ => self.txns.stats.incr("cross_shard_commits"),
        }
        if let (Some(tr), Some(c)) = (&self.tracer, root) {
            tr.event(c, "txn.commit", now, "ok");
            tr.close(c.span, now, "committed");
        }
        Ok(Some(commit_ts))
    }

    /// Abort an open transaction explicitly (nothing was locked or
    /// logged — begin/read/write touch no shared state).
    pub fn abort_txn(&mut self, txn: MetaTxn, now: SimTime) {
        self.txns.mvcc.finish(txn.inner.id);
        self.auto_gc();
        self.txns.stats.incr("aborted_explicit");
        if let (Some(tr), Some(c)) = (&self.tracer, txn.root) {
            tr.event(c, "txn.abort", now, "explicit");
            tr.close(c.span, now, "aborted");
        }
    }

    /// Group `ops` by write shard, in `write_shards` (ascending) order,
    /// preserving program order within each shard.
    fn ops_by_shard(
        &self,
        ops: &[DurableOp],
        write_shards: &[usize],
    ) -> Vec<(usize, Vec<DurableOp>)> {
        let n = self.txns.mvcc.shard_count();
        write_shards
            .iter()
            .map(|&si| {
                let shard_ops = ops
                    .iter()
                    .filter(|op| {
                        mvcc_kv_for(op).is_some_and(|(key, _)| txn_route(&key, n) == si)
                    })
                    .cloned()
                    .collect();
                (si, shard_ops)
            })
            .collect()
    }

    /// The `core.txn.*` counters.
    pub fn txn_stats(&self) -> &StatSet {
        &self.txns.stats
    }

    /// Route the txn counters into a shared registry (merging whatever
    /// was already recorded).
    pub fn attach_txn_registry(&mut self, registry: &SharedRegistry) {
        self.txns.stats.attach(registry);
    }

    /// Current oracle timestamp (every committed txn so far is ≤ this).
    pub fn txn_current_ts(&self) -> u64 {
        self.txns.mvcc.oracle().current()
    }

    /// Deterministic digest of the MVCC version chains (compared across
    /// crash/recovery by the differential harness).
    pub fn txn_digest(&self) -> u64 {
        self.txns.mvcc.digest()
    }

    /// Garbage-collect version chains at an explicit `horizon`;
    /// versions dropped. Normally unnecessary: every commit and abort
    /// runs the automatic collector (see [`Self::txn_auto_gc`]), which
    /// tracks the oldest live snapshot by itself.
    pub fn txn_gc(&mut self, horizon: u64) -> usize {
        self.txns.mvcc.gc(horizon)
    }

    /// Run the automatic collector now: GC at the oldest live
    /// snapshot's begin timestamp (or the oracle's current time when no
    /// transaction is open). A long-running transaction pins the
    /// horizon — nothing it could still read is collected.
    pub fn txn_auto_gc(&mut self) -> usize {
        let dropped = self.txns.mvcc.auto_gc();
        if dropped > 0 {
            self.txns.stats.add("gc_versions_auto", dropped as u64);
        }
        dropped
    }

    /// Begin timestamp of the oldest open transaction, if any (the
    /// automatic GC horizon clamp).
    pub fn txn_oldest_live_snapshot(&self) -> Option<u64> {
        self.txns.mvcc.oldest_live_snapshot()
    }

    fn auto_gc(&mut self) {
        let dropped = self.txns.mvcc.auto_gc();
        if dropped > 0 {
            self.txns.stats.add("gc_versions_auto", dropped as u64);
        }
    }

    /// Prepared-but-undecided locks (0 whenever no commit is mid-flight
    /// — a nonzero value after recovery would mean a leak).
    pub fn txn_lock_count(&self) -> usize {
        self.txns.mvcc.lock_count()
    }

    /// Live MVCC version count (GC pressure metric).
    pub fn txn_version_count(&self) -> usize {
        self.txns.mvcc.version_count()
    }

    /// Convenience retry loop: run `body` against fresh transactions
    /// until it commits or `attempts` conflicts pass. Returns the commit
    /// timestamp.
    pub fn with_txn_retry(
        &mut self,
        now: SimTime,
        attempts: usize,
        mut body: impl FnMut(&mut Self, &mut MetaTxn),
    ) -> MvResult<u64> {
        let mut last = MvError::Conflict("zero attempts".into());
        for _ in 0..attempts.max(1) {
            let mut txn = self.txn(now);
            body(self, &mut txn);
            match self.commit_txn(txn, now) {
                Ok(ts) => return Ok(ts),
                Err(e) if e.is_retryable() => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::WriteOp;
    use crate::entity::EntityKind;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn world(shards: usize, entities: usize) -> (DurableMetaverse, Vec<EntityId>) {
        let mut dm = DurableMetaverse::with_defaults(shards);
        let ids = (0..entities)
            .map(|i| {
                let id =
                    dm.spawn(format!("e{i}"), EntityKind::Avatar, Point::new(i as f64, 0.0), t(1));
                dm.update_attr(id, "gold", 100.0, t(1)).expect("live entity");
                id
            })
            .collect();
        dm.commit(t(1));
        (dm, ids)
    }

    #[test]
    fn trade_moves_value_atomically() {
        let (mut dm, ids) = world(4, 8);
        let mut txn = dm.txn(t(2));
        let a = dm.txn_read_attr(&mut txn, ids[0], "gold").expect("seeded");
        let b = dm.txn_read_attr(&mut txn, ids[5], "gold").expect("seeded");
        txn.write_attr(ids[0], "gold", a - 30.0, t(2));
        txn.write_attr(ids[5], "gold", b + 30.0, t(2));
        let ts = dm.commit_txn(txn, t(2)).expect("no contention");
        assert!(ts > 0);
        // Engine state reflects the trade…
        assert_eq!(dm.engine().entity(ids[0]).unwrap().attr("gold"), 70.0);
        assert_eq!(dm.engine().entity(ids[5]).unwrap().attr("gold"), 130.0);
        // …and so does a fresh transactional snapshot.
        let mut check = dm.txn(t(3));
        assert_eq!(dm.txn_read_attr(&mut check, ids[0], "gold"), Some(70.0));
        assert_eq!(dm.txn_read_attr(&mut check, ids[5], "gold"), Some(130.0));
        assert_eq!(dm.txn_lock_count(), 0);
        assert_eq!(dm.txn_stats().get("committed"), 1);
    }

    #[test]
    fn conflicting_trades_first_committer_wins() {
        let (mut dm, ids) = world(4, 4);
        let mut t1 = dm.txn(t(2));
        let mut t2 = dm.txn(t(2));
        let v1 = dm.txn_read_attr(&mut t1, ids[0], "gold").expect("seeded");
        let v2 = dm.txn_read_attr(&mut t2, ids[0], "gold").expect("seeded");
        t1.write_attr(ids[0], "gold", v1 - 10.0, t(2));
        t2.write_attr(ids[0], "gold", v2 - 90.0, t(2));
        assert!(dm.commit_txn(t1, t(2)).is_ok());
        let err = dm.commit_txn(t2, t(2)).expect_err("second writer must abort");
        assert!(err.is_retryable());
        assert_eq!(dm.engine().entity(ids[0]).unwrap().attr("gold"), 90.0, "no double spend");
        assert_eq!(dm.txn_stats().get("aborted_conflict"), 1);
        assert_eq!(dm.txn_lock_count(), 0);
    }

    #[test]
    fn long_running_txn_pins_the_auto_gc_horizon() {
        let (mut dm, ids) = world(4, 4);
        // Establish a transactional baseline version, then open a
        // long-running reader snapshotted on top of it.
        let mut init = dm.txn(t(2));
        let base = dm.txn_read_attr(&mut init, ids[0], "gold").expect("seeded");
        init.write_attr(ids[0], "gold", base, t(2));
        dm.commit_txn(init, t(2)).expect("baseline");
        let mut reader = dm.txn(t(2));
        let seen = dm.txn_read_attr(&mut reader, ids[0], "gold").expect("seeded");

        // Twenty commits rewrite the same attribute. Every commit runs
        // the automatic collector, but the reader's snapshot pins the
        // horizon — the version chain must keep growing.
        for i in 0..20u64 {
            let mut txn = dm.txn(t(3 + i));
            let cur = dm.txn_read_attr(&mut txn, ids[0], "gold").expect("seeded");
            txn.write_attr(ids[0], "gold", cur + 1.0, t(3 + i));
            dm.commit_txn(txn, t(3 + i)).expect("no contention");
        }
        assert!(
            dm.txn_version_count() >= 20,
            "pinned horizon must retain the churned chain, got {}",
            dm.txn_version_count()
        );
        assert!(dm.txn_oldest_live_snapshot().is_some());
        assert_eq!(
            dm.txn_read_attr(&mut reader, ids[0], "gold"),
            Some(seen),
            "the pinned snapshot still reads its original value"
        );

        // Retiring the reader unpins the horizon; the next commit's
        // automatic collection trims every superseded version.
        dm.abort_txn(reader, t(40));
        assert_eq!(dm.txn_oldest_live_snapshot(), None);
        let mut last = dm.txn(t(41));
        let cur = dm.txn_read_attr(&mut last, ids[0], "gold").expect("seeded");
        last.write_attr(ids[0], "gold", cur, t(41));
        dm.commit_txn(last, t(41)).expect("no contention");
        assert!(
            dm.txn_version_count() <= 1 + ids.len() * 3,
            "unpinned collector must trim the chain, got {}",
            dm.txn_version_count()
        );
        assert!(dm.txn_stats().get("gc_versions_auto") > 0);
    }

    #[test]
    fn txn_snapshot_never_observes_a_bypassing_plain_write() {
        let (mut dm, ids) = world(2, 2);
        // The plain seed write installed a version; snapshot on top.
        let mut reader = dm.txn(t(2));
        assert_eq!(dm.txn_read_attr(&mut reader, ids[0], "gold"), Some(100.0));

        // Plain writes land *after* the snapshot, bypassing 2PC...
        dm.update_attr(ids[0], "gold", 9_999.0, t(3)).unwrap();
        dm.update_position(ids[0], Point::new(777.0, 777.0), t(3)).unwrap();
        let batch = vec![WriteOp::Attr { id: ids[0], name: "gold".into(), value: 4_242.0, ts: t(4) }];
        assert!(dm.apply_batch(&batch).iter().all(|r| r.is_ok()));

        // ...the live engine sees them immediately...
        assert_eq!(dm.engine().entity(ids[0]).unwrap().attr("gold"), 4_242.0);
        // ...but the open snapshot still reads its own version — no tear.
        assert_eq!(dm.txn_read_attr(&mut reader, ids[0], "gold"), Some(100.0));
        // A position chain born after the snapshot reads absent-at-
        // snapshot, never the newer live value.
        assert_eq!(dm.txn_read_position(&mut reader, ids[0]), None);

        // Serializable validation sees the plain write as a conflict: a
        // stale read-modify-write on top of it must abort.
        let stale = dm.txn_read_attr(&mut reader, ids[0], "gold").unwrap();
        reader.write_attr(ids[0], "gold", stale + 1.0, t(5));
        assert!(dm.commit_txn(reader, t(5)).is_err(), "plain write must conflict");
        assert_eq!(dm.engine().entity(ids[0]).unwrap().attr("gold"), 4_242.0);

        // Recovery rebuilds the plain-write versions byte-identically
        // (sync first — unsynced tail writes die with the crash).
        dm.commit(t(6));
        let chains = dm.txn_digest();
        dm.crash_and_recover();
        assert_eq!(dm.txn_digest(), chains, "plain versions rebuilt identically");
        assert!(dm.txn_stats().get("plain_versions") > 0);
    }

    #[test]
    fn serializable_rejects_stale_reads() {
        let (mut dm, ids) = world(2, 2);
        let mut reader = dm.txn(t(2));
        // reader snapshots a's gold, then a concurrent txn changes it.
        let seen = dm.txn_read_attr(&mut reader, ids[0], "gold").expect("seeded");
        let mut w = dm.txn(t(2));
        let cur = dm.txn_read_attr(&mut w, ids[0], "gold").expect("seeded");
        w.write_attr(ids[0], "gold", cur + 1.0, t(2));
        dm.commit_txn(w, t(2)).expect("first writer");
        // reader writes somewhere else based on the stale read: rejected.
        let mut update = dm.txn(t(2));
        // (carry the read set over — same handle keeps reading)
        update.write_attr(ids[1], "gold", seen * 2.0, t(2));
        drop(update);
        reader.write_attr(ids[1], "gold", seen * 2.0, t(2));
        let err = dm.commit_txn(reader, t(2)).expect_err("stale read must abort");
        assert!(err.is_retryable());
    }

    #[test]
    fn committed_txns_survive_crash_and_recovery() {
        let (mut dm, ids) = world(4, 6);
        let mut txn = dm.txn(t(2));
        let a = dm.txn_read_attr(&mut txn, ids[1], "gold").expect("seeded");
        txn.write_attr(ids[1], "gold", a - 5.0, t(2));
        txn.write_position(ids[2], Point::new(42.0, 7.0), t(2));
        dm.commit_txn(txn, t(2)).expect("commit");
        let engine_bytes = dm.state_encoding();
        let chains = dm.txn_digest();

        dm.crash_and_recover();
        assert_eq!(dm.state_encoding(), engine_bytes, "engine byte-identical");
        assert_eq!(dm.txn_digest(), chains, "version chains byte-identical");
        assert_eq!(dm.txn_lock_count(), 0);
        let mut check = dm.txn(t(3));
        assert_eq!(dm.txn_read_attr(&mut check, ids[1], "gold"), Some(95.0));
        assert_eq!(dm.txn_read_position(&mut check, ids[2]), Some(Point::new(42.0, 7.0)));
    }

    #[test]
    fn indoubt_transactions_presume_abort() {
        let (mut dm, ids) = world(4, 6);
        let committed = {
            let mut txn = dm.txn(t(2));
            let a = dm.txn_read_attr(&mut txn, ids[0], "gold").expect("seeded");
            txn.write_attr(ids[0], "gold", a + 1.0, t(2));
            dm.commit_txn(txn, t(2)).expect("commit");
            dm.state_encoding()
        };
        // A second txn dies after its prepares are durable but before
        // any decision: the canonical in-doubt state. Pick a write set
        // that genuinely spans two shards — a single-shard txn takes
        // the one-sync fast path and its crash would lose the tail
        // instead of leaving prepares in doubt.
        let s1 = txn_route(&attr_key(ids[1], "gold"), 4);
        let far = ids
            .iter()
            .copied()
            .find(|&id| txn_route(&attr_key(id, "gold"), 4) != s1)
            .expect("some entity routes to another shard");
        let mut doomed = dm.txn(t(3));
        let b = dm.txn_read_attr(&mut doomed, ids[1], "gold").expect("seeded");
        doomed.write_attr(ids[1], "gold", b * 0.5, t(3));
        doomed.write_attr(far, "gold", b * 2.0, t(3));
        let r = dm
            .commit_txn_crashing(doomed, t(3), Some(TxnCrashPoint::AfterPrepareSync))
            .expect("crash injection is not an error");
        assert_eq!(r, None, "the commit never finished");

        dm.crash_and_recover();
        assert_eq!(dm.state_encoding(), committed, "in-doubt txn fully absent");
        assert_eq!(dm.txn_stats().get("indoubt_aborted"), 1);
        assert_eq!(dm.txn_lock_count(), 0, "recovery leaves no locks");
        // The world keeps working afterwards.
        let mut after = dm.txn(t(4));
        assert_eq!(dm.txn_read_attr(&mut after, ids[1], "gold"), Some(100.0));
    }

    #[test]
    fn decision_synced_means_committed_even_if_apply_never_ran() {
        let (mut dm, ids) = world(4, 4);
        let mut txn = dm.txn(t(2));
        let a = dm.txn_read_attr(&mut txn, ids[0], "gold").expect("seeded");
        txn.write_attr(ids[0], "gold", a - 40.0, t(2));
        txn.write_attr(ids[3], "gold", a + 40.0, t(2));
        let r = dm
            .commit_txn_crashing(txn, t(2), Some(TxnCrashPoint::AfterDecisionSync))
            .expect("crash injection");
        assert_eq!(r, None);
        dm.crash_and_recover();
        // Past the commit point: recovery must apply everything.
        assert_eq!(dm.engine().entity(ids[0]).unwrap().attr("gold"), 60.0);
        assert_eq!(dm.engine().entity(ids[3]).unwrap().attr("gold"), 140.0);
        assert_eq!(dm.txn_stats().get("recovered_commits"), 1);
        assert_eq!(dm.txn_lock_count(), 0);
    }

    #[test]
    fn single_shard_commits_take_the_one_sync_fast_path() {
        let (mut dm, ids) = world(4, 8);
        let base = dm.txn_stats().get("commit_syncs");

        // One write → one shard → one sync.
        let mut solo = dm.txn(t(2));
        let a = dm.txn_read_attr(&mut solo, ids[0], "gold").expect("seeded");
        solo.write_attr(ids[0], "gold", a + 1.0, t(2));
        dm.commit_txn(solo, t(2)).expect("commit");
        assert_eq!(dm.txn_stats().get("commit_syncs"), base + 1, "fast path: one sync");
        assert_eq!(dm.txn_stats().get("single_shard_commits"), 1);

        // A write set spanning two shards → prepare sync + decision sync.
        let s0 = txn_route(&attr_key(ids[0], "gold"), 4);
        let far = ids
            .iter()
            .copied()
            .find(|&id| txn_route(&attr_key(id, "gold"), 4) != s0)
            .expect("some entity routes to another shard");
        let mut cross = dm.txn(t(3));
        let b = dm.txn_read_attr(&mut cross, ids[0], "gold").expect("seeded");
        cross.write_attr(ids[0], "gold", b - 5.0, t(3));
        cross.write_attr(far, "gold", b + 5.0, t(3));
        dm.commit_txn(cross, t(3)).expect("commit");
        assert_eq!(dm.txn_stats().get("commit_syncs"), base + 3, "2PC: two syncs");
        assert_eq!(dm.txn_stats().get("cross_shard_commits"), 1);

        // The fast path is still durable: everything survives recovery.
        let bytes = dm.state_encoding();
        dm.crash_and_recover();
        assert_eq!(dm.state_encoding(), bytes);
    }

    #[test]
    fn txn_spans_open_and_close_cleanly() {
        let tracer = mv_obs::SharedTracer::new();
        let (mut dm, ids) = world(2, 4);
        dm.set_tracer(tracer.clone());
        let mut txn = dm.txn(t(2));
        let a = dm.txn_read_attr(&mut txn, ids[0], "gold").expect("seeded");
        txn.write_attr(ids[0], "gold", a - 1.0, t(2));
        txn.write_attr(ids[1], "gold", a + 1.0, t(2));
        dm.commit_txn(txn, t(2)).expect("commit");
        dm.commit(t(2));
        assert_eq!(tracer.open_count(), 0, "no leaked spans");
        let recs = tracer.records();
        assert!(recs.iter().any(|r| r.name == "txn.begin" && r.status == "committed"));
        assert!(recs.iter().any(|r| r.name == "txn.prepare" && r.status == "prepared"));
        assert!(recs.iter().any(|r| r.name == "txn.commit"));

        let doomed = dm.txn(t(3));
        dm.abort_txn(doomed, t(3));
        assert_eq!(tracer.open_count(), 0);
        assert!(tracer
            .records()
            .iter()
            .any(|r| r.name == "txn.begin" && r.status == "aborted"));
    }

    #[test]
    fn retry_loop_resolves_contention() {
        let (mut dm, ids) = world(2, 2);
        // Pre-commit a conflicting write between begin and commit is hard
        // to stage via the public retry API alone, so just check the
        // happy path: one attempt, commits.
        let ts = dm
            .with_txn_retry(t(2), 3, |dm, txn| {
                let v = dm.txn_read_attr(txn, ids[0], "gold").unwrap_or(0.0);
                txn.write_attr(ids[0], "gold", v + 1.0, t(2));
            })
            .expect("commits within retries");
        assert!(ts > 0);
        assert_eq!(dm.engine().entity(ids[0]).unwrap().attr("gold"), 101.0);
    }

    #[test]
    fn txn_gc_keeps_latest_state_readable() {
        let (mut dm, ids) = world(2, 2);
        for i in 0..10u64 {
            let mut txn = dm.txn(t(2 + i));
            txn.write_attr(ids[0], "gold", i as f64, t(2 + i));
            dm.commit_txn(txn, t(2 + i)).expect("serial commits");
        }
        // With no snapshot live, the automatic collector already trimmed
        // each superseded version at commit time — manual GC is a no-op
        // and the latest state stays readable.
        assert!(dm.txn_stats().get("gc_versions_auto") >= 9);
        assert_eq!(dm.txn_gc(dm.txn_current_ts()), 0, "nothing left for the manual horizon");
        let mut check = dm.txn(t(20));
        assert_eq!(dm.txn_read_attr(&mut check, ids[0], "gold"), Some(9.0));
    }
}
