//! `ShardedMetaverse` — the co-space engine partitioned across N shards.
//!
//! §IV-C of the paper argues the co-space write path must absorb "data
//! of unprecedented scale" from sensed physical entities; one entity map
//! plus two spatial indexes eventually serializes on a single lock. This
//! module partitions the engine by *entity ownership*: each entity lives
//! on exactly one shard (hash of its id), and a shard is a complete
//! [`Metaverse`] — entity map, truth/twin [`GridIndex`]es, event buffer,
//! counters — so every per-entity code path is byte-for-byte the code
//! the sequential engine runs. What this module adds is the routing and
//! the *deterministic reassembly*:
//!
//! * batched writes ([`ShardedMetaverse::apply_batch`]) are partitioned
//!   by owner (stable, preserving per-entity order) and applied by one
//!   scoped thread per shard;
//! * cross-shard queries fan out and k-way-merge the per-shard sorted
//!   results (ownership makes shard results disjoint);
//! * area effects scan all shards for targets, then retire each victim
//!   through its owner shard;
//! * the merged event log is ordered by `(ts, entity, shard, shard-seq)`
//!   and re-numbered, so two runs over the same ops produce *identical
//!   bytes* regardless of thread scheduling.
//!
//! Equivalence with the sequential engine is not argued, it is *tested*:
//! `tests/sharded_differential.rs` replays random op sequences against
//! both engines and asserts identical results at every step.
//!
//! [`GridIndex`]: mv_spatial::GridIndex

use crate::arena::EntityRef;
use crate::engine::{Metaverse, SyncPolicy};
use crate::entity::{Entity, EntityKind};
use crate::events::{CoEvent, Command};
use crate::merge::KwayMerger;
use mv_common::geom::{Aabb, Point};
use mv_common::id::{EntityId, EventId, IdGen};
use mv_common::metrics::Counters;
use mv_common::time::SimTime;
use mv_common::Space;
use mv_common::MvResult;
use mv_obs::SharedTracer;
use std::time::Instant;

/// Owner shard of an entity: a SplitMix64 finalizer over the raw id,
/// reduced mod the shard count. Ids are dense (allocated sequentially),
/// so mixing is what spreads consecutive spawns across shards.
#[inline]
pub fn shard_of(id: EntityId, shards: usize) -> usize {
    let mut z = id.raw().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as usize % shards
}

/// One write in a batch. Carries its own timestamp so a batch can span
/// simulation ticks and still replay exactly like op-at-a-time
/// application (each shard applies its ops in batch order).
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Ground-truth move (authoritative space).
    Position {
        /// Entity to move.
        id: EntityId,
        /// New ground-truth position.
        position: Point,
        /// When the move was observed.
        ts: SimTime,
    },
    /// Attribute write (authoritative space).
    Attr {
        /// Entity to update.
        id: EntityId,
        /// Attribute name.
        name: String,
        /// New value.
        value: f64,
        /// When the write was observed.
        ts: SimTime,
    },
}

impl WriteOp {
    /// The entity this op addresses (decides the owner shard).
    pub fn entity(&self) -> EntityId {
        match self {
            WriteOp::Position { id, .. } | WriteOp::Attr { id, .. } => *id,
        }
    }

    /// The op's timestamp.
    pub fn ts(&self) -> SimTime {
        match self {
            WriteOp::Position { ts, .. } | WriteOp::Attr { ts, .. } => *ts,
        }
    }
}

/// The sharded co-space engine. Same observable behaviour as
/// [`Metaverse`] (see module docs), scaled across owner shards.
pub struct ShardedMetaverse {
    shards: Vec<Metaverse>,
    ids: IdGen,
    clock: SimTime,
    /// Next merged event id (per-shard ids are re-numbered at drain).
    next_event: u64,
    /// Per-shard wall seconds of the last [`apply_batch`] call.
    ///
    /// [`apply_batch`]: ShardedMetaverse::apply_batch
    last_shard_walls: Vec<f64>,
    /// When false, `apply_batch` runs shards sequentially on the calling
    /// thread (timing mode: on an oversubscribed host, in-thread wall
    /// clocks include descheduling, so per-shard costs are only honest
    /// when shards run one at a time).
    parallel_apply: bool,
    /// Span collector: each (sampled) `apply_batch` call mints a
    /// `core.sharded.apply_batch` root marking the batch's ingest.
    tracer: Option<SharedTracer>,
    /// Reusable k-way merge scratch for query reassembly (a `Mutex` so
    /// queries keep `&self`; uncontended in the engine's tick loop).
    /// Steady-state queries perform zero merge-scratch allocations.
    merge_scratch: std::sync::Mutex<KwayMerger>,
}

impl ShardedMetaverse {
    /// Build with `shards` owner shards (each a full engine with the
    /// given policy and grid cell size). A shard count of zero is
    /// clamped to one — a sweep written as `0..n` should degrade to the
    /// unsharded engine, not panic.
    pub fn new(policy: SyncPolicy, cell_size: f64, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedMetaverse {
            shards: (0..shards).map(|_| Metaverse::new(policy, cell_size)).collect(),
            ids: IdGen::new(),
            clock: SimTime::ZERO,
            next_event: 0,
            last_shard_walls: vec![0.0; shards],
            parallel_apply: true,
            tracer: None,
            merge_scratch: std::sync::Mutex::new(KwayMerger::new()),
        }
    }

    /// Default policy, 50 m grid cells.
    pub fn with_defaults(shards: usize) -> Self {
        ShardedMetaverse::new(SyncPolicy::default(), 50.0, shards)
    }

    /// Number of owner shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current engine time (max over observed update times).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Toggle parallel batch application. With it off, `apply_batch`
    /// applies shard queues sequentially and the per-shard walls in
    /// [`last_shard_walls`] measure pure per-shard work (no scheduler
    /// interference) — what E1d's critical-path model needs.
    ///
    /// [`last_shard_walls`]: ShardedMetaverse::last_shard_walls
    pub fn set_parallel_apply(&mut self, on: bool) {
        self.parallel_apply = on;
    }

    /// Install a span collector: each (sampled) [`apply_batch`] call
    /// records a `core.sharded.apply_batch` ingest root.
    ///
    /// [`apply_batch`]: ShardedMetaverse::apply_batch
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Wall seconds each shard spent applying its queue in the last
    /// [`apply_batch`]. The maximum is the batch's critical path.
    ///
    /// [`apply_batch`]: ShardedMetaverse::apply_batch
    pub fn last_shard_walls(&self) -> &[f64] {
        &self.last_shard_walls
    }

    /// Live entities per shard (occupancy of the hash partitioning).
    pub fn shard_live_counts(&self) -> Vec<usize> {
        self.shards.iter().map(Metaverse::live_count).collect()
    }

    fn advance(&mut self, now: SimTime) {
        self.clock = self.clock.max(now);
    }

    fn owner(&self, id: EntityId) -> usize {
        shard_of(id, self.shards.len())
    }

    /// Register an entity. Ids are allocated by a single global
    /// generator, so spawn order yields the same dense ids the
    /// sequential engine would assign.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        kind: EntityKind,
        position: Point,
        now: SimTime,
    ) -> EntityId {
        self.advance(now);
        let id: EntityId = self.ids.next();
        let owner = self.owner(id);
        self.shards[owner].insert_prebuilt(Entity::new(id, name, kind, position), now);
        id
    }

    /// Register many entities at once: ids are assigned in input order
    /// (matching sequential spawns), then shards materialize their
    /// partitions in parallel.
    pub fn spawn_batch(
        &mut self,
        specs: &[(String, EntityKind, Point)],
        now: SimTime,
    ) -> Vec<EntityId> {
        self.advance(now);
        let n = self.shards.len();
        let mut ids = Vec::with_capacity(specs.len());
        let mut routed: Vec<Vec<(EntityId, usize)>> = vec![Vec::new(); n];
        for (i, _) in specs.iter().enumerate() {
            let id: EntityId = self.ids.next();
            routed[shard_of(id, n)].push((id, i));
            ids.push(id);
        }
        std::thread::scope(|scope| {
            for (shard, routes) in self.shards.iter_mut().zip(routed.iter()) {
                scope.spawn(move || {
                    for &(id, i) in routes {
                        let (ref name, kind, position) = specs[i];
                        shard.insert_prebuilt(Entity::new(id, name.clone(), kind, position), now);
                    }
                });
            }
        });
        ids
    }

    /// Apply a batch of writes. Ops are routed to their owner shards
    /// (stable partition: two ops on the same entity keep their relative
    /// order) and the shard queues run on scoped threads. Returns one
    /// result per op, in input order, identical to applying the ops
    /// one-by-one on the sequential engine: `Ok(synced)` or the
    /// per-entity error.
    pub fn apply_batch(&mut self, ops: &[WriteOp]) -> Vec<MvResult<bool>> {
        let n = self.shards.len();
        if let Some(max_ts) = ops.iter().map(WriteOp::ts).max() {
            self.advance(max_ts);
        }
        // One sampled root per batch (not per op): the ingest marker the
        // observability layer keys on, at one Option check when untraced.
        if let Some(tr) = &self.tracer {
            if let Some(ctx) = tr.maybe_trace("core.sharded.apply_batch", self.clock) {
                tr.close(ctx.span, self.clock, "applied");
            }
        }
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, op) in ops.iter().enumerate() {
            // lint:allow(panic-path): shard_of is `hash % n` with n == queues.len(); the routing index is local arithmetic, not decoded data
            queues[shard_of(op.entity(), n)].push(i);
        }
        let mut results: Vec<Option<MvResult<bool>>> = ops.iter().map(|_| None).collect();
        let mut walls = vec![0.0f64; n];
        let run_queue = |shard: &mut Metaverse, queue: &[usize]| {
            // lint:allow(wall-clock): measures real CPU time of the serial critical path for the speedup report; never feeds sim state
            let t0 = Instant::now();
            let out: Vec<(usize, MvResult<bool>)> = queue
                .iter()
                // lint:allow(panic-path): queue indices were produced by enumerating this same ops slice above
                .map(|&i| (i, Self::apply_one(shard, &ops[i])))
                .collect();
            (out, t0.elapsed().as_secs_f64())
        };
        if self.parallel_apply {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(queues.iter())
                    .map(|(shard, queue)| scope.spawn(|| run_queue(shard, queue)))
                    .collect();
                for (si, handle) in handles.into_iter().enumerate() {
                    // lint:allow(panic-path): a panicked shard worker poisons the batch; propagating the panic is the contract
                    let (out, wall) = handle.join().expect("shard worker panicked");
                    // lint:allow(panic-path): si enumerates the per-shard handles; walls was sized to n above
                    walls[si] = wall;
                    for (i, r) in out {
                        // lint:allow(panic-path): i came from enumerating ops; results was sized to ops.len() above
                        results[i] = Some(r);
                    }
                }
            });
        } else {
            for (si, (shard, queue)) in self.shards.iter_mut().zip(queues.iter()).enumerate() {
                let (out, wall) = run_queue(shard, queue);
                // lint:allow(panic-path): si enumerates the shards; walls was sized to n above
                walls[si] = wall;
                for (i, r) in out {
                    // lint:allow(panic-path): i came from enumerating ops; results was sized to ops.len() above
                    results[i] = Some(r);
                }
            }
        }
        self.last_shard_walls = walls;
        results
            .into_iter()
            // lint:allow(panic-path): routing places every op index in exactly one queue, so every slot was filled
            .map(|r| r.expect("every op was routed to exactly one shard"))
            .collect()
    }

    fn apply_one(shard: &mut Metaverse, op: &WriteOp) -> MvResult<bool> {
        match op {
            WriteOp::Position { id, position, ts } => shard.update_position(*id, *position, *ts),
            WriteOp::Attr { id, name, value, ts } => shard.update_attr(*id, name, *value, *ts),
        }
    }

    /// Move one entity's ground truth (routes to the owner shard).
    pub fn update_position(&mut self, id: EntityId, position: Point, now: SimTime) -> MvResult<bool> {
        self.advance(now);
        let owner = self.owner(id);
        self.shards[owner].update_position(id, position, now)
    }

    /// Update one entity's attribute (routes to the owner shard).
    pub fn update_attr(&mut self, id: EntityId, name: &str, value: f64, now: SimTime) -> MvResult<bool> {
        self.advance(now);
        let owner = self.owner(id);
        self.shards[owner].update_attr(id, name, value, now)
    }

    /// Retire an entity from both spaces (routes to the owner shard).
    pub fn retire(&mut self, id: EntityId, now: SimTime) -> MvResult<()> {
        self.advance(now);
        let owner = self.owner(id);
        self.shards[owner].retire(id, now)
    }

    /// Access an entity as a borrowed column view (routes to the owner
    /// shard).
    pub fn entity(&self, id: EntityId) -> MvResult<EntityRef<'_>> {
        self.shards[self.owner(id)].entity(id)
    }

    /// Number of live entities across all shards.
    pub fn live_count(&self) -> usize {
        self.shards.iter().map(Metaverse::live_count).sum()
    }

    /// Run a read-only closure on every shard concurrently, collecting
    /// results in shard order.
    fn fan_out<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Metaverse) -> T + Sync,
    {
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self.shards.iter().map(|shard| scope.spawn(move || f(shard))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard reader panicked"))
                .collect()
        })
    }

    /// Merge per-shard sorted lists through the engine's reusable
    /// scratch (zero merge-scratch allocations in steady state).
    fn merge_shard_lists<L: AsRef<[EntityId]>>(&self, lists: &[L]) -> Vec<EntityId> {
        self.merge_scratch.lock().expect("merge scratch poisoned").merge(lists)
    }

    /// Ground-truth entities of `space` within `area`, merged across
    /// shards, sorted by id — identical to [`Metaverse::query_truth`].
    pub fn query_truth(&self, space: Space, area: &Aabb) -> Vec<EntityId> {
        let lists = self.fan_out(|shard| shard.query_truth(space, area));
        self.merge_shard_lists(&lists)
    }

    /// Entities visible in `space` within `area`, merged across shards,
    /// sorted by id — identical to [`Metaverse::query_visible`].
    pub fn query_visible(&self, space: Space, area: &Aabb) -> Vec<EntityId> {
        // Shards partition entities, and an entity's truth and twin rows
        // both live on its owner shard, so per-shard visible sets are
        // disjoint: the merge needs no cross-shard dedup.
        let lists = self.fan_out(|shard| shard.query_visible(space, area));
        self.merge_shard_lists(&lists)
    }

    /// Batched [`query_truth`]: element `i` equals
    /// `query_truth(space, &areas[i])`, at one shard fan-out for the
    /// whole probe set (instead of one scoped-thread round per probe)
    /// and one shared grid pass per shard.
    ///
    /// [`query_truth`]: ShardedMetaverse::query_truth
    pub fn query_truth_batch(&self, space: Space, areas: &[Aabb]) -> Vec<Vec<EntityId>> {
        let per_shard = self.fan_out(|shard| shard.query_truth_batch(space, areas));
        self.merge_batch(areas.len(), &per_shard)
    }

    /// Batched [`query_visible`]: element `i` equals
    /// `query_visible(space, &areas[i])`, at one shard fan-out and one
    /// shared grid pass per index for the whole probe set.
    ///
    /// [`query_visible`]: ShardedMetaverse::query_visible
    pub fn query_visible_batch(&self, space: Space, areas: &[Aabb]) -> Vec<Vec<EntityId>> {
        let per_shard = self.fan_out(|shard| shard.query_visible_batch(space, areas));
        self.merge_batch(areas.len(), &per_shard)
    }

    /// Reassemble per-shard batch results: merge shard lists probe by
    /// probe through the reusable scratch.
    fn merge_batch(&self, probes: usize, per_shard: &[Vec<Vec<EntityId>>]) -> Vec<Vec<EntityId>> {
        let mut merger = self.merge_scratch.lock().expect("merge scratch poisoned");
        let mut refs: Vec<&[EntityId]> = Vec::with_capacity(per_shard.len());
        (0..probes)
            .map(|qi| {
                refs.clear();
                refs.extend(per_shard.iter().map(|lists| lists[qi].as_slice()));
                let mut out = Vec::new();
                merger.merge_into(&refs, &mut out);
                out
            })
            .collect()
    }

    /// Raise an area effect in `space`: the target scan fans out over
    /// every shard's twin index, then each victim is commanded/retired
    /// through its owner shard, in id order — the same commands (same
    /// order) the sequential engine emits.
    pub fn area_effect(
        &mut self,
        space: Space,
        effect: &str,
        region: Aabb,
        action: &str,
        retire: bool,
        now: SimTime,
    ) -> Vec<Command> {
        self.advance(now);
        // The area-effect fact is a global (entity-less) event; record it
        // once. Shard 0 hosts globals so the merged log sees it exactly
        // once, like the sequential engine's log does.
        self.shards[0].note_area_effect(space, effect, region, now);
        let lists = self.fan_out(|shard| {
            let mut ids = shard.affected_twins(space, &region);
            ids.sort_unstable();
            ids
        });
        let affected = self.merge_shard_lists(&lists);
        affected
            .into_iter()
            .map(|id| {
                let owner = self.owner(id);
                self.shards[owner].relay_command(id, action, retire, now)
            })
            .collect()
    }

    /// Mean twin divergence over live entities across all shards.
    pub fn mean_divergence(&self) -> f64 {
        let (sum, count) = self
            .shards
            .iter()
            .map(Metaverse::divergence_parts)
            .fold((0.0, 0usize), |(s, c), (sum, _, count)| (s + sum, c + count));
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Maximum twin divergence over live entities across all shards.
    pub fn max_divergence(&self) -> f64 {
        self.shards
            .iter()
            .map(Metaverse::max_divergence)
            .fold(0.0, f64::max)
    }

    /// Counter totals summed across shards (`sync_msgs`,
    /// `suppressed_syncs`, `commands`) — equals the sequential engine's
    /// single counter set.
    pub fn stats(&self) -> Counters {
        let mut total = Counters::new();
        for shard in &self.shards {
            total.merge(&shard.stats);
        }
        total
    }

    /// Drain and merge every shard's event buffer into one
    /// deterministically ordered log.
    ///
    /// Merge order is `(ts, entity, shard, shard-local sequence)` with
    /// entity-less events last within a timestamp. Per-entity order is
    /// exact (an entity's events all come from its owner shard, where
    /// the local sequence preserves emission order), and the order never
    /// depends on thread scheduling — replaying the same ops yields a
    /// byte-identical log. Event ids are re-numbered globally.
    pub fn drain_events(&mut self) -> Vec<CoEvent> {
        let mut tagged: Vec<(u64, usize, usize, CoEvent)> = Vec::new();
        for (si, shard) in self.shards.iter_mut().enumerate() {
            for (seq, event) in shard.drain_events().into_iter().enumerate() {
                let entity_key = event.entity.map_or(u64::MAX, EntityId::raw);
                tagged.push((entity_key, si, seq, event));
            }
        }
        tagged.sort_by_key(|(entity_key, si, seq, event)| (event.ts, *entity_key, *si, *seq));
        tagged
            .into_iter()
            .map(|(_, _, _, mut event)| {
                event.id = EventId::new(self.next_event);
                self.next_event += 1;
                event
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn shard_of_is_total_and_balanced_enough() {
        let n = 8;
        let mut buckets = vec![0usize; n];
        for raw in 0..8_000u64 {
            buckets[shard_of(EntityId::new(raw), n)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            // Expect ~1000 per bucket; allow wide slack — we only care
            // that no shard starves or hoards.
            assert!((700..=1300).contains(&b), "bucket {i} holds {b}");
        }
        // One shard owns everything.
        assert_eq!(shard_of(EntityId::new(123), 1), 0);
    }

    #[test]
    fn spawn_assigns_sequential_ids_across_shards() {
        let mut mv = ShardedMetaverse::with_defaults(4);
        let a = mv.spawn("a", EntityKind::Person, Point::ORIGIN, t(0));
        let b = mv.spawn("b", EntityKind::Avatar, Point::new(1.0, 1.0), t(1));
        let c = mv.spawn("c", EntityKind::Vehicle, Point::new(2.0, 2.0), t(2));
        assert_eq!((a.raw(), b.raw(), c.raw()), (0, 1, 2));
        assert_eq!(mv.live_count(), 3);
        assert_eq!(mv.now(), t(2));
    }

    #[test]
    fn spawn_batch_matches_sequential_spawns() {
        let specs: Vec<(String, EntityKind, Point)> = (0..64)
            .map(|i| (format!("e{i}"), EntityKind::Person, Point::new(i as f64, 0.0)))
            .collect();
        let mut batched = ShardedMetaverse::with_defaults(4);
        let ids = batched.spawn_batch(&specs, t(0));
        let mut sequential = ShardedMetaverse::with_defaults(4);
        let seq_ids: Vec<_> = specs
            .iter()
            .map(|(n, k, p)| sequential.spawn(n.clone(), *k, *p, t(0)))
            .collect();
        assert_eq!(ids, seq_ids);
        assert_eq!(
            format!("{:?}", batched.drain_events()),
            format!("{:?}", sequential.drain_events())
        );
    }

    #[test]
    fn batch_results_preserve_input_order_and_errors() {
        let mut mv = ShardedMetaverse::with_defaults(4);
        let ids: Vec<_> = (0..8)
            .map(|i| mv.spawn(format!("e{i}"), EntityKind::Person, Point::ORIGIN, t(0)))
            .collect();
        mv.retire(ids[3], t(1)).unwrap();
        let ops: Vec<WriteOp> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| WriteOp::Position {
                id,
                position: Point::new(100.0 + i as f64, 0.0),
                ts: t(2),
            })
            .collect();
        let results = mv.apply_batch(&ops);
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                assert!(r.is_err(), "retired entity must reject the move");
            } else {
                assert!(*r.as_ref().unwrap(), "100 m move forces a sync");
            }
        }
        assert_eq!(mv.stats().get("sync_msgs"), 7);
        assert_eq!(mv.last_shard_walls().len(), 4);
    }

    #[test]
    fn merged_event_log_is_identical_across_runs() {
        let run = || {
            let mut mv = ShardedMetaverse::with_defaults(8);
            let ids: Vec<_> = (0..32)
                .map(|i| mv.spawn(format!("e{i}"), EntityKind::Person, Point::ORIGIN, t(0)))
                .collect();
            let ops: Vec<WriteOp> = ids
                .iter()
                .map(|&id| WriteOp::Position { id, position: Point::new(50.0, 50.0), ts: t(1) })
                .collect();
            mv.apply_batch(&ops);
            mv.area_effect(Space::Virtual, "raid", Aabb::centered(Point::new(50.0, 50.0), 10.0), "perish", true, t(2));
            format!("{:?}", mv.drain_events())
        };
        let first = run();
        for _ in 0..4 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn batch_queries_match_per_probe_queries() {
        let mut mv = ShardedMetaverse::with_defaults(4);
        let mut rng = mv_common::seeded_rng(7);
        use rand::Rng as _;
        for i in 0..200 {
            let p = Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0));
            mv.spawn(format!("e{i}"), EntityKind::Person, p, t(0));
        }
        // Move some so twins diverge and both indexes carry entries.
        let ops: Vec<WriteOp> = (0..100u64)
            .map(|i| WriteOp::Position {
                id: EntityId::new(i),
                position: Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)),
                ts: t(1),
            })
            .collect();
        mv.apply_batch(&ops);
        mv.retire(EntityId::new(3), t(2)).unwrap();
        let areas: Vec<Aabb> = (0..24)
            .map(|_| {
                let c = Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0));
                Aabb::centered(c, rng.gen_range(5.0..200.0))
            })
            .chain([Aabb::everything()])
            .collect();
        for space in [Space::Physical, Space::Virtual] {
            let truth = mv.query_truth_batch(space, &areas);
            let visible = mv.query_visible_batch(space, &areas);
            for (i, area) in areas.iter().enumerate() {
                assert_eq!(truth[i], mv.query_truth(space, area), "truth probe {i}");
                assert_eq!(visible[i], mv.query_visible(space, area), "visible probe {i}");
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one_instead_of_panicking() {
        let mut mv = ShardedMetaverse::with_defaults(0);
        assert_eq!(mv.shard_count(), 1);
        // And the clamped engine actually works.
        let id = mv.spawn("e", EntityKind::Avatar, Point::ORIGIN, t(0));
        let ops = [WriteOp::Position { id, position: Point::new(1.0, 2.0), ts: t(1) }];
        mv.apply_batch(&ops);
        assert_eq!(mv.live_count(), 1);
    }

    #[test]
    fn serial_apply_mode_matches_parallel_apply() {
        let build = |parallel: bool| {
            let mut mv = ShardedMetaverse::with_defaults(4);
            mv.set_parallel_apply(parallel);
            let ids: Vec<_> = (0..16)
                .map(|i| mv.spawn(format!("e{i}"), EntityKind::Vehicle, Point::ORIGIN, t(0)))
                .collect();
            let ops: Vec<WriteOp> = ids
                .iter()
                .enumerate()
                .map(|(i, &id)| WriteOp::Position { id, position: Point::new(i as f64 * 3.0, 0.0), ts: t(1) })
                .collect();
            let results: Vec<String> = mv.apply_batch(&ops).iter().map(|r| format!("{r:?}")).collect();
            (results, format!("{:?}", mv.drain_events()), mv.stats().to_string())
        };
        assert_eq!(build(true), build(false));
    }
}
