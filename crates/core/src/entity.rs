//! Co-space entities.

use mv_common::geom::Point;
use mv_common::id::EntityId;
use mv_common::Space;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What an entity is — drives default sync behaviour and which space is
/// authoritative for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// A sensed person/soldier/shopper (physical-authoritative).
    Person,
    /// A sensed vehicle (physical-authoritative).
    Vehicle,
    /// A deployed sensor (physical, static).
    Sensor,
    /// A product with stock in both spaces.
    Product,
    /// A purely virtual avatar or NPC (virtual-authoritative).
    Avatar,
    /// A virtual scene object (building, prop).
    SceneObject,
}

impl EntityKind {
    /// Which space owns the ground truth for this kind.
    pub fn authoritative_space(self) -> Space {
        match self {
            EntityKind::Person | EntityKind::Vehicle | EntityKind::Sensor => Space::Physical,
            EntityKind::Product => Space::Physical, // quantity-on-hand is physical truth
            EntityKind::Avatar | EntityKind::SceneObject => Space::Virtual,
        }
    }
}

/// A registered co-space entity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entity {
    /// Identifier (shared across both presences).
    pub id: EntityId,
    /// Human-readable name.
    pub name: String,
    /// Kind.
    pub kind: EntityKind,
    /// Ground-truth position in the authoritative space.
    pub position: Point,
    /// The other space's *materialized* view of the position (the twin).
    /// Lags within the sync policy's coherency bound.
    pub twin_position: Point,
    /// Free-form numeric attributes (health, stock, score…), tagged by
    /// name; both spaces read them, the authoritative space writes.
    pub attrs: BTreeMap<String, f64>,
    /// True once the entity has been destroyed/perished/sold out; kept
    /// for audit, excluded from queries.
    pub retired: bool,
}

impl Entity {
    /// Construct at a position; the twin starts synchronized.
    pub fn new(id: EntityId, name: impl Into<String>, kind: EntityKind, position: Point) -> Self {
        Entity {
            id,
            name: name.into(),
            kind,
            position,
            twin_position: position,
            attrs: BTreeMap::new(),
            retired: false,
        }
    }

    /// Distance between truth and the materialized twin — the §IV-C
    /// incoherency of this entity.
    pub fn divergence(&self) -> f64 {
        self.position.dist(self.twin_position)
    }

    /// Read an attribute (0 default keeps call sites tidy).
    pub fn attr(&self, name: &str) -> f64 {
        self.attrs.get(name).copied().unwrap_or(0.0)
    }

    /// Write an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, v: f64) {
        self.attrs.insert(name.into(), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authoritative_spaces() {
        assert_eq!(EntityKind::Person.authoritative_space(), Space::Physical);
        assert_eq!(EntityKind::Avatar.authoritative_space(), Space::Virtual);
        assert_eq!(EntityKind::Product.authoritative_space(), Space::Physical);
    }

    #[test]
    fn divergence_starts_at_zero() {
        let e = Entity::new(EntityId::new(1), "alice", EntityKind::Person, Point::new(1.0, 2.0));
        assert_eq!(e.divergence(), 0.0);
    }

    #[test]
    fn attrs_default_to_zero() {
        let mut e = Entity::new(EntityId::new(1), "tank", EntityKind::Vehicle, Point::ORIGIN);
        assert_eq!(e.attr("fuel"), 0.0);
        e.set_attr("fuel", 0.8);
        assert_eq!(e.attr("fuel"), 0.8);
    }
}
