//! Cross-space events and commands.
//!
//! Events are facts raised in one space; commands are the engine's
//! relayed instructions to actors in the *other* space (the paper's
//! military example: a virtual air-raid ⇒ ground troops "perish").

use mv_common::geom::Aabb;
use mv_common::id::{EntityId, EventId};
use mv_common::time::SimTime;
use mv_common::Space;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// An entity moved (authoritative-space update).
    Moved,
    /// The twin was re-synchronized across the boundary.
    TwinSynced,
    /// An entity's attribute changed.
    AttrChanged {
        /// Attribute name.
        name: String,
        /// New value.
        value: f64,
    },
    /// An area-effect action in some space (air-raid, flash-sale zone…).
    AreaEffect {
        /// Effect tag ("air_raid", "flash_sale").
        effect: String,
        /// Affected region.
        region: Aabb,
    },
    /// An entity was retired (perished, sold out, despawned).
    Retired,
}

/// One event on the co-space timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoEvent {
    /// Identifier.
    pub id: EventId,
    /// When.
    pub ts: SimTime,
    /// Which space raised it.
    pub space: Space,
    /// Subject entity, if any.
    pub entity: Option<EntityId>,
    /// What happened.
    pub kind: EventKind,
}

/// A relayed instruction for an actor in the target space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Space whose actors must act.
    pub target_space: Space,
    /// Acting/affected entity.
    pub entity: EntityId,
    /// Instruction tag ("perish", "restock", "reinforce"…).
    pub action: String,
    /// When the command was issued.
    pub ts: SimTime,
}

/// A simple ordered event log with drain semantics.
#[derive(Debug, Default)]
pub struct EventBus {
    events: Vec<CoEvent>,
    next: u64,
}

impl EventBus {
    /// Empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event; returns its id.
    pub fn emit(
        &mut self,
        ts: SimTime,
        space: Space,
        entity: Option<EntityId>,
        kind: EventKind,
    ) -> EventId {
        let id = EventId::new(self.next);
        self.next += 1;
        self.events.push(CoEvent { id, ts, space, entity, kind });
        id
    }

    /// Events recorded so far (not yet drained).
    pub fn pending(&self) -> &[CoEvent] {
        &self.events
    }

    /// Take all recorded events.
    pub fn drain(&mut self) -> Vec<CoEvent> {
        std::mem::take(&mut self.events)
    }

    /// Total events ever emitted.
    pub fn emitted(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::geom::Point;

    #[test]
    fn bus_assigns_ordered_ids_and_drains() {
        let mut bus = EventBus::new();
        let a = bus.emit(SimTime::ZERO, Space::Physical, None, EventKind::Moved);
        let b = bus.emit(SimTime::from_millis(1), Space::Virtual, None, EventKind::Retired);
        assert!(a < b);
        assert_eq!(bus.pending().len(), 2);
        let drained = bus.drain();
        assert_eq!(drained.len(), 2);
        assert!(bus.pending().is_empty());
        assert_eq!(bus.emitted(), 2);
    }

    #[test]
    fn area_effect_carries_region() {
        let mut bus = EventBus::new();
        bus.emit(
            SimTime::ZERO,
            Space::Virtual,
            None,
            EventKind::AreaEffect {
                effect: "air_raid".into(),
                region: Aabb::centered(Point::new(10.0, 10.0), 5.0),
            },
        );
        match &bus.pending()[0].kind {
            EventKind::AreaEffect { effect, region } => {
                assert_eq!(effect, "air_raid");
                assert!(region.contains(Point::new(12.0, 12.0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
