//! `ReplicatedMetaverse` — a raft-replicated co-space region.
//!
//! The durable engine (`crate::durable`) survives a crash of its *own*
//! node; §IV's consistency/disaggregation story needs region state to
//! survive the node entirely. This module closes that gap: a group of
//! 3–5 replicas each runs a [`RaftNode`] (`mv-raft`) over the fault
//! simulator's [`Network`] + [`ReliableTransport`], and every client
//! mutation travels as an encoded [`DurableOp`] through the leader's
//! raft log. An operation is **acknowledged** only when the proposing
//! leader applies it at its committed index — by Raft's log-matching
//! and leader-completeness properties, an acknowledged op is then on a
//! majority and survives any minority of crashes, partitions, and even
//! total per-node state loss.
//!
//! Each replica's state machine is a [`DurableMetaverse`] fed strictly
//! by committed raft entries in index order. The engine is
//! deterministic, so replicas stay byte-identical (per
//! `DurableMetaverse::state_encoding`) without further coordination —
//! the fault harness (`tests/raft_failover.rs`) checks exactly that
//! after every fault boundary.
//!
//! Snapshots reuse the engine's canonical encodings: a snapshot is the
//! full committed command history plus the `state_encoding()` of the
//! resulting engine. Install replays the history into a fresh engine
//! and *verifies* the encoding byte-for-byte before accepting — a
//! diverged snapshot is refused loudly rather than installed silently.
//! (A page-image snapshot would replace the history; the op-prefix form
//! keeps the integrity check and stays proportional to history length,
//! which the compaction threshold bounds.)
//!
//! Faults arrive through [`FaultTarget`]: a node crash bumps the
//! transport epoch, crashes the raft WAL (losing its unsynced tail) and
//! discards the replica's entire engine; restart folds the surviving
//! raft records back and rebuilds the engine by replay (or snapshot
//! install, for a node flagged `wipe_on_crash` that lost its disk too).
//! The replica's fresh `TimestampOracle` is re-anchored with
//! `advance_past` so recovered MVCC versions never run backwards.

use crate::durable::{DurableMetaverse, DurableOp};
use mv_common::time::TS_SEQ_BITS;
use mv_common::codec::wire_u32;
use mv_common::id::NodeId;
use mv_common::time::{SimDuration, SimTime};
use mv_net::fault::FaultTarget;
use mv_net::{LinkSpec, Network, ReliableEvent, ReliableTransport, RetryPolicy};
use mv_obs::{SharedRegistry, StatSet};
use mv_raft::{RaftConfig, RaftMsg, RaftNode};

pub use mv_raft::RaftConfig as RaftTuning;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let chunk: [u8; 4] = buf.get(*at..*at + 4)?.try_into().ok()?;
    *at += 4;
    Some(u32::from_le_bytes(chunk))
}

/// One replica's deterministic state machine: the durable engine plus
/// the committed command history that produced it (the snapshot body).
struct MetaverseSm {
    dm: DurableMetaverse,
    /// Every applied command, in commit order (no-ops excluded).
    history: Vec<Vec<u8>>,
}

impl MetaverseSm {
    fn new(shards: usize) -> Self {
        MetaverseSm { dm: DurableMetaverse::with_defaults(shards), history: Vec::new() }
    }

    /// Apply one committed command. Unknown/transactional frames are
    /// refused (`false`) — the replicated log carries only plain ops.
    fn apply(&mut self, cmd: &[u8]) -> bool {
        let Some(op) = DurableOp::decode(cmd) else { return false };
        match op {
            DurableOp::Spawn { name, kind, position, ts } => {
                self.dm.spawn(name, kind, position, ts);
            }
            DurableOp::Position { id, position, ts } => {
                let _ = self.dm.update_position(id, position, ts);
            }
            DurableOp::Attr { id, name, value, ts } => {
                let _ = self.dm.update_attr(id, &name, value, ts);
            }
            DurableOp::Retire { id, ts } => {
                let _ = self.dm.retire(id, ts);
            }
            DurableOp::AreaEffect { space, effect, region, action, retire, ts } => {
                let _ = self.dm.area_effect(space, &effect, region, &action, retire, ts);
            }
            DurableOp::TxnPrepare { .. } | DurableOp::TxnDecision { .. } => return false,
        }
        self.history.push(cmd.to_vec());
        true
    }

    /// Snapshot = framed command history + the engine encoding it must
    /// reproduce.
    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, wire_u32(self.history.len()));
        for cmd in &self.history {
            put_u32(&mut out, wire_u32(cmd.len()));
            out.extend_from_slice(cmd);
        }
        let state = self.dm.state_encoding();
        put_u32(&mut out, wire_u32(state.len()));
        out.extend_from_slice(&state);
        out
    }

    /// Rebuild from a snapshot: replay the history into a fresh engine
    /// and verify it reproduces the recorded encoding byte-for-byte.
    /// `None` on structural damage *or* divergence.
    fn install(shards: usize, bytes: &[u8]) -> Option<MetaverseSm> {
        let mut at = 0usize;
        let count = read_u32(bytes, &mut at)? as usize;
        let mut sm = MetaverseSm::new(shards);
        for _ in 0..count {
            let len = read_u32(bytes, &mut at)? as usize;
            let cmd = bytes.get(at..at.checked_add(len)?)?.to_vec();
            at += len;
            if !sm.apply(&cmd) {
                return None;
            }
        }
        let state_len = read_u32(bytes, &mut at)? as usize;
        let state = bytes.get(at..at.checked_add(state_len)?)?;
        if at + state_len != bytes.len() || sm.dm.state_encoding() != state {
            return None;
        }
        sm.reanchor_oracle();
        Some(sm)
    }

    /// Push the fresh oracle past every replayed op timestamp so MVCC
    /// commit timestamps allocated after recovery never run backwards
    /// relative to pre-crash ones.
    fn reanchor_oracle(&mut self) {
        let max_ts = self
            .history
            .iter()
            .filter_map(|c| DurableOp::decode(c))
            .map(|op| op.ts().as_micros())
            .max()
            .unwrap_or(0);
        self.dm.txns.mvcc.oracle().advance_past(max_ts << TS_SEQ_BITS);
    }
}

/// Per-replica tuning for a [`ReplicatedMetaverse`] region.
#[derive(Debug, Clone, Copy)]
pub struct RegionConfig {
    /// Group size (3 or 5 in the harness).
    pub replicas: usize,
    /// Engine shards per replica.
    pub shards: usize,
    /// Raft protocol timing.
    pub raft: RaftConfig,
    /// One-way link latency between any two replicas.
    pub link_latency: SimDuration,
    /// Link loss fraction.
    pub link_loss: f64,
    /// Compact a replica's raft log once it holds more than this many
    /// applied-but-uncompacted entries.
    pub compact_threshold: u64,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            replicas: 3,
            shards: 2,
            raft: RaftConfig::default(),
            link_latency: SimDuration::from_millis(5),
            link_loss: 0.0,
            compact_threshold: 64,
        }
    }
}

struct ReplicaSlot {
    node: RaftNode,
    /// `None` while the process is down (volatile state dropped).
    sm: Option<MetaverseSm>,
    up: bool,
    /// Crash also destroys the disk: restart via [`RaftNode::wipe`].
    wipe_on_crash: bool,
    /// Highest raft index applied into `sm`.
    applied_raft: u64,
}

/// A raft-replicated co-space region over the fault simulator. See the
/// module docs for the guarantees; drive it by calling
/// [`Self::tick`] every simulated millisecond (or finer) and submitting
/// client ops through [`Self::submit`].
pub struct ReplicatedMetaverse {
    net: Network,
    transport: ReliableTransport<RaftMsg>,
    rng: StdRng,
    cfg: RegionConfig,
    members: Vec<NodeId>,
    replicas: Vec<ReplicaSlot>,
    /// One registry consolidating every layer's metrics: the network,
    /// the transport, all raft nodes, and the region's own
    /// `core.replicated.*` probes. The SLO layer windows this.
    registry: SharedRegistry,
    /// `core.replicated.*`: `submit_attempts`/`submit_unavailable`/
    /// `acks`/`leader_changes` counters, the `ack_ms` latency
    /// histogram, and `down_replicas`/`commit_lag`/`term`/`has_leader`
    /// gauges.
    stats: StatSet,
    /// Client writes awaiting commit at their proposing leader:
    /// `(leader, index, cmd, submitted_at)`.
    pending: Vec<(NodeId, u64, Vec<u8>, SimTime)>,
    /// Commands acknowledged to the client, in ack order. The safety
    /// harness checks every one survives on every replica.
    acked: Vec<Vec<u8>>,
    /// First leader observed per term; a second, different one is a
    /// safety violation.
    leaders_by_term: BTreeMap<u64, NodeId>,
    /// Safety violations observed while running (must stay empty).
    violations: Vec<String>,
    /// Event log for whole-run determinism hashing.
    pub log: Vec<String>,
    now: SimTime,
}

impl FaultTarget for ReplicatedMetaverse {
    fn fault_network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn on_node_crash(&mut self, node: NodeId) {
        self.transport.on_node_crash(node);
        let now = self.now;
        if let Some(slot) = self.replicas.iter_mut().find(|s| s.node.id() == node) {
            slot.up = false;
            slot.sm = None; // volatile engine state is gone
            slot.applied_raft = 0;
            slot.node.crash();
            self.log.push(format!("{now} crash {node:?}"));
        }
    }

    fn on_node_restart(&mut self, node: NodeId) {
        let now = self.now;
        let wipe = self
            .replicas
            .iter()
            .find(|s| s.node.id() == node)
            .is_some_and(|s| s.wipe_on_crash);
        if let Some(slot) = self.replicas.iter_mut().find(|s| s.node.id() == node) {
            slot.up = true;
            if wipe {
                slot.node.wipe(now);
            } else {
                slot.node.restart(now);
            }
            // The engine rebuilds from the node's durable image: its
            // snapshot (if any) is re-flagged for install by restart();
            // committed entries above it re-drain through the normal
            // apply path in `tick`.
            slot.sm = Some(MetaverseSm::new(self.cfg.shards));
            slot.applied_raft = 0;
            self.log.push(format!("{now} restart {node:?} wipe={wipe}"));
        }
    }
}

impl ReplicatedMetaverse {
    /// Build a fully-meshed region of `cfg.replicas` nodes. `seed` pins
    /// everything: election timeouts, transport jitter, link loss.
    pub fn new(cfg: RegionConfig, seed: u64) -> Self {
        let members: Vec<NodeId> = (0..cfg.replicas as u64).map(NodeId::new).collect();
        let mut net = Network::new();
        for &m in &members {
            net.add_node(m, "replica");
        }
        for (i, &a) in members.iter().enumerate() {
            for &b in members.iter().skip(i + 1) {
                net.add_link_bidi(
                    a,
                    b,
                    LinkSpec::new(cfg.link_latency, 1e8).with_loss(cfg.link_loss),
                );
            }
        }
        let registry = SharedRegistry::new();
        net.attach_registry(&registry);
        let replicas: Vec<ReplicaSlot> = members
            .iter()
            .map(|&m| {
                let mut node = RaftNode::new(m, &members, cfg.raft, seed ^ 0x5eed, SimTime::ZERO);
                // All replicas consolidate under `raft.node.*`: counters
                // sum region-wide; per-replica gauges are superseded by
                // the region-level `core.replicated.*` gauges below.
                node.attach_registry(&registry);
                ReplicaSlot {
                    node,
                    sm: Some(MetaverseSm::new(cfg.shards)),
                    up: true,
                    wipe_on_crash: false,
                    applied_raft: 0,
                }
            })
            .collect();
        // Raft retries at its own cadence (heartbeats); the transport's
        // retry budget stays short so a partitioned message dies fast
        // instead of ghost-delivering after the heal.
        let policy = RetryPolicy {
            initial_rto: SimDuration::from_millis(50),
            backoff: 2.0,
            max_rto: SimDuration::from_millis(500),
            max_attempts: 3,
            jitter_frac: 0.1,
        };
        let mut transport = ReliableTransport::new(policy, seed ^ 0x7a57);
        transport.attach_registry(&registry);
        let stats = StatSet::in_registry("core.replicated", &registry);
        ReplicatedMetaverse {
            net,
            transport,
            rng: mv_common::seeded_rng(seed),
            cfg,
            members,
            replicas,
            registry,
            stats,
            pending: Vec::new(),
            acked: Vec::new(),
            leaders_by_term: BTreeMap::new(),
            violations: Vec::new(),
            log: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// Flag one replica so its next crash also loses its disk (restart
    /// through [`RaftNode::wipe`] → snapshot/backfill recovery).
    pub fn set_wipe_on_crash(&mut self, node: NodeId, wipe: bool) {
        if let Some(slot) = self.replicas.iter_mut().find(|s| s.node.id() == node) {
            slot.wipe_on_crash = wipe;
        }
    }

    /// The group's member ids, in replica order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The current leader among *up* replicas, if any.
    pub fn leader(&self) -> Option<NodeId> {
        self.replicas.iter().find(|s| s.up && s.node.is_leader()).map(|s| s.node.id())
    }

    /// The leader whose read lease is currently valid (safe local
    /// reads), if any.
    pub fn lease_holder(&self, now: SimTime) -> Option<NodeId> {
        self.replicas
            .iter()
            .find(|s| s.up && s.node.is_leader() && s.node.lease_valid(now))
            .map(|s| s.node.id())
    }

    /// Submit one client op. Returns the raft index it was proposed at,
    /// or `None` when no up replica currently leads (the client must
    /// retry — that window is the measured unavailability).
    pub fn submit(&mut self, op: &DurableOp, now: SimTime) -> Option<u64> {
        let cmd = op.encode();
        self.stats.incr("submit_attempts");
        let appended = (|| {
            let slot = self.replicas.iter_mut().find(|s| s.up && s.node.is_leader())?;
            let leader = slot.node.id();
            let index = slot.node.client_append(cmd.clone(), now)?;
            Some((leader, index))
        })();
        let Some((leader, index)) = appended else {
            // Measured unavailability: the availability SLO burns here.
            self.stats.incr("submit_unavailable");
            return None;
        };
        self.pending.push((leader, index, cmd, now));
        Some(index)
    }

    /// Commands acknowledged as committed, in ack order.
    pub fn acked(&self) -> &[Vec<u8>] {
        &self.acked
    }

    /// Safety violations observed so far (two leaders in a term,
    /// refused snapshot installs, commit divergence). Must stay empty.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of distinct terms that elected a leader (election churn).
    pub fn elected_terms(&self) -> usize {
        self.leaders_by_term.len()
    }

    /// Per-replica engine digests (`None` while down).
    pub fn replica_digests(&self) -> Vec<Option<u64>> {
        self.replicas.iter().map(|s| s.sm.as_ref().map(|sm| sm.dm.state_digest())).collect()
    }

    /// Per-replica committed-log digests (up replicas only).
    pub fn committed_digests(&self) -> Vec<Option<u64>> {
        self.replicas
            .iter()
            .map(|s| s.up.then(|| s.node.committed_digest()))
            .collect()
    }

    /// Hash of replica `i`'s full applied-command history (`None` while
    /// down). Compaction-invariant, so equal hashes across replicas
    /// mean the same committed commands applied in the same order.
    pub fn history_hash(&self, i: usize) -> Option<u64> {
        use std::hash::Hasher as _;
        let sm = self.replicas.get(i)?.sm.as_ref()?;
        let mut h = mv_common::hash::FxHasher::default();
        for cmd in &sm.history {
            h.write(cmd);
        }
        Some(h.finish())
    }

    /// Number of commands replica `i` has applied (`None` while down).
    pub fn history_len(&self, i: usize) -> Option<usize> {
        Some(self.replicas.get(i)?.sm.as_ref()?.history.len())
    }

    /// Does `cmd` appear in replica `i`'s applied history?
    pub fn replica_applied(&self, i: usize, cmd: &[u8]) -> bool {
        self.replicas
            .get(i)
            .and_then(|s| s.sm.as_ref())
            .is_some_and(|sm| sm.history.iter().any(|c| c == cmd))
    }

    /// Number of replicas currently up.
    pub fn up_count(&self) -> usize {
        self.replicas.iter().filter(|s| s.up).count()
    }

    /// Move the leader (and enough followers to form a minority) into
    /// partition group 1 and sever it from the rest. Returns the
    /// severed minority, `None` when no leader is up.
    pub fn partition_minority_with_leader(&mut self) -> Option<Vec<NodeId>> {
        let leader = self.leader()?;
        let minority_size = (self.members.len() - 1) / 2; // 3→1, 5→2
        let mut minority = vec![leader];
        minority.extend(
            self.members
                .iter()
                .copied()
                .filter(|&m| m != leader)
                .take(minority_size.saturating_sub(1)),
        );
        for &m in &self.members {
            let group = u32::from(minority.contains(&m));
            let _ = self.net.set_group(m, group);
        }
        self.net.sever(0, 1);
        self.log.push(format!("{} sever minority {minority:?}", self.now));
        Some(minority)
    }

    /// Heal the minority partition and put every node back in group 0.
    pub fn heal_partition(&mut self) {
        self.net.heal(0, 1);
        for &m in &self.members {
            let _ = self.net.set_group(m, 0);
        }
        self.log.push(format!("{} heal", self.now));
    }

    /// Raw transport statistics (retransmits, expiries, …).
    pub fn transport_stats(&self) -> &mv_obs::StatSet {
        &self.transport.stats
    }

    /// The consolidated registry: network + transport + raft node
    /// counters plus the region's `core.replicated.*` probes. Hand
    /// this to an `mv_obs::HealthMonitor` to arm SLOs over the region.
    pub fn registry(&self) -> &SharedRegistry {
        &self.registry
    }

    /// The region's own `core.replicated.*` stats.
    pub fn region_stats(&self) -> &StatSet {
        &self.stats
    }

    /// One scheduler tick: deliver transport arrivals to up replicas,
    /// fire raft timers, ship outgoing messages, drain committed
    /// entries into each engine, resolve client acks, and compact logs
    /// past the threshold.
    pub fn tick(&mut self, now: SimTime) {
        self.now = now;
        let mut sends: Vec<(NodeId, mv_raft::Outgoing)> = Vec::new();

        for ev in self.transport.poll(&mut self.net, &mut self.rng, now) {
            let ReliableEvent::Delivered { src, dst, payload, .. } = ev else { continue };
            let Some(slot) = self.replicas.iter_mut().find(|s| s.node.id() == dst && s.up)
            else {
                continue;
            };
            for o in slot.node.handle(src, payload, now) {
                sends.push((dst, o));
            }
        }

        for slot in self.replicas.iter_mut().filter(|s| s.up) {
            let from = slot.node.id();
            for o in slot.node.tick(now) {
                sends.push((from, o));
            }
        }

        for (src, out) in sends {
            let bytes = out.msg.wire_bytes();
            self.transport.send(&mut self.net, &mut self.rng, src, out.to, out.msg, bytes, now);
        }

        self.pump_state_machines(now);
        self.observe_leaders(now);
        self.publish_health_gauges();
    }

    /// Region-level gauges for the SLO layer, refreshed once per tick:
    /// replica liveness, worst commit lag, leader presence and term.
    fn publish_health_gauges(&mut self) {
        let down = (self.replicas.len() - self.up_count()) as f64;
        let commit_lag = self
            .replicas
            .iter()
            .filter(|s| s.up)
            .map(|s| s.node.last_index().saturating_sub(s.node.commit_index()))
            .max()
            .unwrap_or(0) as f64;
        let term = self
            .replicas
            .iter()
            .filter(|s| s.up)
            .map(|s| s.node.term())
            .max()
            .unwrap_or(0) as f64;
        let has_leader = if self.leader().is_some() { 1.0 } else { 0.0 };
        self.stats.set_gauge("down_replicas", down);
        self.stats.set_gauge("commit_lag", commit_lag);
        self.stats.set_gauge("term", term);
        self.stats.set_gauge("has_leader", has_leader);
        self.stats.set_gauge("pending_submits", self.pending.len() as f64);
    }

    fn pump_state_machines(&mut self, now: SimTime) {
        let shards = self.cfg.shards;
        let compact_threshold = self.cfg.compact_threshold;
        for slot in self.replicas.iter_mut().filter(|s| s.up) {
            let id = slot.node.id();
            // A freshly accepted (or restart-recovered) snapshot
            // replaces the engine wholesale.
            if let Some((base, _term, data)) = slot.node.take_pending_install() {
                match MetaverseSm::install(shards, &data) {
                    Some(sm) => {
                        slot.sm = Some(sm);
                        slot.applied_raft = base;
                        self.log.push(format!("{now} install {id:?} base={base}"));
                    }
                    None => {
                        self.violations
                            .push(format!("{now} {id:?}: snapshot at base={base} refused"));
                    }
                }
            }
            let Some(sm) = slot.sm.as_mut() else { continue };
            let committed = slot.node.take_committed();
            for (index, cmd) in committed {
                slot.applied_raft = index;
                if !cmd.is_empty() {
                    sm.apply(&cmd);
                    // The proposing leader's commit is the client ack.
                    let acked = &mut self.acked;
                    let stats = &mut self.stats;
                    self.pending.retain(|(leader, idx, pcmd, submitted)| {
                        let ours = *leader == id && *idx == index && *pcmd == cmd;
                        if ours {
                            acked.push(pcmd.clone());
                            stats.incr("acks");
                            stats.observe("ack_ms", now.since(*submitted).as_millis_f64());
                        }
                        !ours
                    });
                }
            }
            if slot.applied_raft.saturating_sub(slot.node.base_index()) > compact_threshold {
                slot.node.compact(slot.applied_raft, sm.snapshot(), now);
                self.log.push(format!(
                    "{now} compact {id:?} base={}",
                    slot.node.base_index()
                ));
            }
        }
    }

    /// Record leadership per term; a term with two distinct leaders is
    /// the election-safety violation the harness asserts never happens.
    fn observe_leaders(&mut self, now: SimTime) {
        for slot in self.replicas.iter().filter(|s| s.up && s.node.is_leader()) {
            let (term, id) = (slot.node.term(), slot.node.id());
            match self.leaders_by_term.get(&term) {
                None => {
                    self.leaders_by_term.insert(term, id);
                    self.stats.incr("leader_changes");
                    self.log.push(format!("{now} leader {id:?} term={term}"));
                }
                Some(&prev) if prev != id => {
                    self.violations
                        .push(format!("{now} two leaders in term {term}: {prev:?} and {id:?}"));
                }
                Some(_) => {}
            }
        }
        // Two simultaneously valid read leases would let both serve
        // stale local reads — the lease-safety property says it cannot
        // happen (a rival needs at least one election-min of silence).
        let holders = self
            .replicas
            .iter()
            .filter(|s| s.up && s.node.is_leader() && s.node.lease_valid(now))
            .count();
        if holders > 1 {
            self.violations.push(format!("{now} {holders} simultaneous lease holders"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::geom::Point;
    use mv_common::Space;
    use mv_common::time::SimTime;
    use crate::entity::EntityKind;

    fn spawn_op(i: u64, now: SimTime) -> DurableOp {
        DurableOp::Spawn {
            name: format!("e{i}"),
            kind: EntityKind::Avatar,
            position: Point::new(i as f64, 0.0),
            ts: now,
        }
    }

    fn drive(world: &mut ReplicatedMetaverse, from_ms: u64, to_ms: u64) {
        for ms in from_ms..to_ms {
            world.tick(SimTime::from_millis(ms));
        }
    }

    #[test]
    fn region_elects_replicates_and_acks() {
        let mut w = ReplicatedMetaverse::new(RegionConfig::default(), 7);
        drive(&mut w, 0, 1_000);
        let leader = w.leader().expect("a leader by 1s");
        for i in 0..5 {
            let op = spawn_op(i, SimTime::from_millis(1_000 + i * 20));
            assert!(w.submit(&op, SimTime::from_millis(1_000 + i * 20)).is_some());
            drive(&mut w, 1_000 + i * 20, 1_000 + (i + 1) * 20);
        }
        drive(&mut w, 1_100, 1_600);
        assert_eq!(w.acked().len(), 5, "all submissions commit and ack");
        assert!(w.violations().is_empty(), "{:?}", w.violations());
        let digests = w.replica_digests();
        assert!(digests.iter().all(|d| *d == digests[0] && d.is_some()), "{digests:?}");
        assert_eq!(w.leader(), Some(leader), "stable leadership in a quiet net");
        // Every acked command survives on every replica.
        for cmd in w.acked().to_vec() {
            for i in 0..w.members().len() {
                assert!(w.replica_applied(i, &cmd), "replica {i} lost an acked write");
            }
        }
    }

    #[test]
    fn area_effect_commands_replicate_deterministically() {
        use mv_common::geom::Aabb;
        let mut w = ReplicatedMetaverse::new(RegionConfig::default(), 11);
        drive(&mut w, 0, 1_000);
        for i in 0..4 {
            let t = SimTime::from_millis(1_000 + i * 30);
            w.submit(&spawn_op(i, t), t);
            drive(&mut w, 1_000 + i * 30, 1_000 + (i + 1) * 30);
        }
        let t = SimTime::from_millis(1_200);
        let raid = DurableOp::AreaEffect {
            space: Space::Virtual,
            effect: "air_raid".into(),
            region: Aabb::new(Point::new(-1.0, -1.0), Point::new(2.5, 1.0)),
            action: "perish".into(),
            retire: true,
            ts: t,
        };
        w.submit(&raid, t);
        drive(&mut w, 1_200, 1_700);
        let digests = w.replica_digests();
        assert!(digests.iter().all(|d| *d == digests[0] && d.is_some()), "{digests:?}");
        assert!(w.violations().is_empty(), "{:?}", w.violations());
    }

    #[test]
    fn snapshot_install_verifies_and_refuses_damage() {
        let mut sm = MetaverseSm::new(2);
        for i in 0..3 {
            assert!(sm.apply(&spawn_op(i, SimTime::from_millis(i + 1)).encode()));
        }
        let snap = sm.snapshot();
        let rebuilt = MetaverseSm::install(2, &snap).expect("clean install");
        assert_eq!(rebuilt.dm.state_encoding(), sm.dm.state_encoding());
        // Any flipped byte must refuse, not silently diverge.
        let mut bad = snap.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(MetaverseSm::install(2, &bad).is_none());
        assert!(MetaverseSm::install(2, &snap[..snap.len() - 2]).is_none());
    }

    #[test]
    fn oracle_reanchors_past_replayed_timestamps() {
        let mut sm = MetaverseSm::new(2);
        sm.apply(&spawn_op(0, SimTime::from_millis(500)).encode());
        let snap = sm.snapshot();
        let rebuilt = MetaverseSm::install(2, &snap).expect("install");
        let anchored = rebuilt.dm.txns.mvcc.oracle().current();
        assert!(
            anchored >= SimTime::from_millis(500).as_micros() << TS_SEQ_BITS,
            "oracle must not run behind replayed history: {anchored}"
        );
    }
}
