//! Transmission scheduling over a bandwidth-limited uplink.
//!
//! §IV-C: *"more critical data can be transmitted first before less
//! critical data … to study different scheduling schemes"*. The scheduler
//! simulates one outgoing link draining a queue of transmission requests
//! under four policies, reporting per-priority-class latency (E4).

use mv_common::metrics::Histogram;
use mv_common::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Criticality classes, most critical first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Safety/consistency-critical (troop "perish" orders, purchase
    /// confirmations).
    Critical,
    /// Interactive state (positions, scores).
    High,
    /// Regular telemetry.
    Normal,
    /// Bulk media/prefetch.
    Bulk,
}

impl Priority {
    /// All classes, most critical first.
    pub const ALL: [Priority; 4] =
        [Priority::Critical, Priority::High, Priority::Normal, Priority::Bulk];

    /// Weight for weighted-fair scheduling.
    pub fn weight(self) -> u64 {
        match self {
            Priority::Critical => 8,
            Priority::High => 4,
            Priority::Normal => 2,
            Priority::Bulk => 1,
        }
    }

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Critical => "critical",
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Bulk => "bulk",
        }
    }
}

/// One transmission request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxRequest {
    /// Arrival time in the outbound queue.
    pub arrival: SimTime,
    /// Payload size.
    pub bytes: u64,
    /// Criticality class.
    pub priority: Priority,
    /// Optional absolute deadline.
    pub deadline: Option<SimTime>,
}

/// Queue-service policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Arrival order regardless of class.
    Fifo,
    /// Strict priority: drain Critical, then High, … (Bulk can starve).
    StrictPriority,
    /// Earliest absolute deadline first (no deadline = last).
    Edf,
    /// Weighted round-robin by class weight (starvation-free).
    WeightedFair,
}

impl SchedPolicy {
    /// All policies, for sweeps.
    pub const ALL: [SchedPolicy; 4] =
        [SchedPolicy::Fifo, SchedPolicy::StrictPriority, SchedPolicy::Edf, SchedPolicy::WeightedFair];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::StrictPriority => "strict-priority",
            SchedPolicy::Edf => "edf",
            SchedPolicy::WeightedFair => "weighted-fair",
        }
    }
}

/// Per-class results of one run.
#[derive(Debug, Default)]
pub struct TxReport {
    /// Latency (finish − arrival) histograms per class, ms.
    pub latency_ms: std::collections::BTreeMap<&'static str, Histogram>,
    /// Deadline misses.
    pub deadline_misses: u64,
    /// Total messages sent.
    pub sent: u64,
}

/// The single-uplink scheduler simulation.
#[derive(Debug)]
pub struct LinkScheduler {
    /// Uplink bandwidth, bytes per simulated second.
    bandwidth_bps: f64,
}

impl LinkScheduler {
    /// A link with the given bandwidth.
    pub fn new(bandwidth_bps: f64) -> Self {
        assert!(bandwidth_bps > 0.0);
        LinkScheduler { bandwidth_bps }
    }

    fn service_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// Drain all requests under a policy; returns the per-class report.
    pub fn run(&self, mut requests: Vec<TxRequest>, policy: SchedPolicy) -> TxReport {
        requests.sort_by_key(|r| (r.arrival, r.bytes));
        let mut report = TxReport::default();
        for p in Priority::ALL {
            report.latency_ms.insert(p.name(), Histogram::new());
        }
        // Per-class FIFO queues (preserve arrival order within class).
        let mut queues: std::collections::BTreeMap<Priority, VecDeque<TxRequest>> =
            Priority::ALL.iter().map(|&p| (p, VecDeque::new())).collect();
        let mut next_arrival = 0usize;
        let mut now = SimTime::ZERO;
        // Weighted-fair state: remaining credits per class in this cycle.
        let mut credits: std::collections::BTreeMap<Priority, u64> =
            Priority::ALL.iter().map(|&p| (p, p.weight())).collect();

        loop {
            while next_arrival < requests.len() && requests[next_arrival].arrival <= now {
                let r = requests[next_arrival];
                queues.get_mut(&r.priority).expect("all classes present").push_back(r);
                next_arrival += 1;
            }
            let total_pending: usize = queues.values().map(VecDeque::len).sum();
            if total_pending == 0 {
                if next_arrival >= requests.len() {
                    break;
                }
                now = requests[next_arrival].arrival;
                continue;
            }
            let pick: Priority = match policy {
                SchedPolicy::Fifo => Priority::ALL
                    .iter()
                    .copied()
                    .filter(|p| !queues[p].is_empty())
                    .min_by_key(|p| queues[p][0].arrival)
                    .expect("pending"),
                SchedPolicy::StrictPriority => Priority::ALL
                    .iter()
                    .copied()
                    .find(|p| !queues[p].is_empty())
                    .expect("pending"),
                SchedPolicy::Edf => Priority::ALL
                    .iter()
                    .copied()
                    .filter(|p| !queues[p].is_empty())
                    .min_by_key(|p| {
                        (queues[p][0].deadline.unwrap_or(SimTime::MAX), queues[p][0].arrival)
                    })
                    .expect("pending"),
                SchedPolicy::WeightedFair => {
                    // Serve classes with remaining credit, most critical
                    // first; refill when all pending classes are out.
                    let with_credit = Priority::ALL
                        .iter()
                        .copied()
                        .find(|p| !queues[p].is_empty() && credits[p] > 0);
                    match with_credit {
                        Some(p) => p,
                        None => {
                            for (p, c) in credits.iter_mut() {
                                *c = p.weight();
                            }
                            Priority::ALL
                                .iter()
                                .copied()
                                .find(|p| !queues[p].is_empty())
                                .expect("pending")
                        }
                    }
                }
            };
            if policy == SchedPolicy::WeightedFair {
                if let Some(c) = credits.get_mut(&pick) {
                    *c = c.saturating_sub(1);
                }
            }
            let req = queues.get_mut(&pick).expect("class exists").pop_front().expect("nonempty");
            let finish = now.max(req.arrival) + self.service_time(req.bytes);
            report
                .latency_ms
                .get_mut(req.priority.name())
                .expect("class registered")
                .record(finish.since(req.arrival).as_millis_f64());
            if let Some(d) = req.deadline {
                if finish > d {
                    report.deadline_misses += 1;
                }
            }
            report.sent += 1;
            now = finish;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Burst of bulk traffic at t=0 with critical messages sprinkled in.
    fn burst() -> Vec<TxRequest> {
        let mut reqs = Vec::new();
        for i in 0..100u64 {
            reqs.push(TxRequest {
                arrival: SimTime::from_millis(i / 10),
                bytes: 100_000, // 100 KB bulk
                priority: Priority::Bulk,
                deadline: None,
            });
        }
        for i in 0..10u64 {
            reqs.push(TxRequest {
                arrival: SimTime::from_millis(i),
                bytes: 1_000, // 1 KB critical
                priority: Priority::Critical,
                deadline: Some(SimTime::from_millis(i + 50)),
            });
        }
        reqs
    }

    #[test]
    fn all_policies_send_everything() {
        let link = LinkScheduler::new(1e6); // 1 MB/s
        for p in SchedPolicy::ALL {
            let r = link.run(burst(), p);
            assert_eq!(r.sent, 110, "{}", p.name());
        }
    }

    #[test]
    fn strict_priority_slashes_critical_latency() {
        let link = LinkScheduler::new(1e6);
        let fifo = link.run(burst(), SchedPolicy::Fifo);
        let strict = link.run(burst(), SchedPolicy::StrictPriority);
        let crit = |r: &TxReport| r.latency_ms["critical"].clone().p99();
        assert!(
            crit(&strict) * 5.0 < crit(&fifo),
            "strict {} vs fifo {}",
            crit(&strict),
            crit(&fifo)
        );
    }

    #[test]
    fn edf_respects_deadlines() {
        let link = LinkScheduler::new(1e6);
        let fifo = link.run(burst(), SchedPolicy::Fifo);
        let edf = link.run(burst(), SchedPolicy::Edf);
        assert!(edf.deadline_misses <= fifo.deadline_misses);
        assert_eq!(edf.deadline_misses, 0, "critical deadlines all met under EDF");
    }

    #[test]
    fn weighted_fair_avoids_bulk_starvation() {
        // Continuous critical traffic would starve bulk under strict
        // priority; weighted-fair must still serve bulk early.
        let mut reqs = Vec::new();
        for i in 0..200u64 {
            reqs.push(TxRequest {
                arrival: SimTime::from_millis(i / 4),
                bytes: 10_000,
                priority: Priority::Critical,
                deadline: None,
            });
        }
        for i in 0..10u64 {
            reqs.push(TxRequest {
                arrival: SimTime::from_millis(i),
                bytes: 10_000,
                priority: Priority::Bulk,
                deadline: None,
            });
        }
        let link = LinkScheduler::new(1e6);
        let strict = link.run(reqs.clone(), SchedPolicy::StrictPriority);
        let fair = link.run(reqs, SchedPolicy::WeightedFair);
        let bulk = |r: &TxReport| r.latency_ms["bulk"].clone().p50();
        assert!(
            bulk(&fair) < bulk(&strict),
            "fair {} vs strict {}",
            bulk(&fair),
            bulk(&strict)
        );
    }

    #[test]
    fn fifo_is_arrival_ordered() {
        let link = LinkScheduler::new(1e6);
        let reqs = vec![
            TxRequest {
                arrival: SimTime::from_millis(0),
                bytes: 1000,
                priority: Priority::Bulk,
                deadline: None,
            },
            TxRequest {
                arrival: SimTime::from_millis(1),
                bytes: 1000,
                priority: Priority::Critical,
                deadline: None,
            },
        ];
        let r = link.run(reqs, SchedPolicy::Fifo);
        // Bulk arrived first so it finishes first: its latency (1 ms) is
        // below critical's (1 ms service + 1 ms queue − 1 ms later arrival).
        assert!(r.latency_ms["bulk"].clone().p50() <= r.latency_ms["critical"].clone().p50());
    }
}
