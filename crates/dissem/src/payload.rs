//! Payload encoding: delta compression and multimedia degradation.
//!
//! Two §IV-C bandwidth levers: numeric state vectors are shipped as
//! sparse deltas against the receiver's last acknowledged state, and
//! multimedia objects degrade to lower resolutions for
//! bandwidth-constrained clients.

use mv_common::hash::FastMap;
use serde::{Deserialize, Serialize};

/// A numeric state vector (e.g. an avatar pose, a scoreboard page).
pub type StateVector = Vec<f64>;

/// Wire cost model: 8 bytes per f64 + 4 bytes per delta index + header.
const HEADER_BYTES: u64 = 16;
const VALUE_BYTES: u64 = 8;
const INDEX_BYTES: u64 = 4;

/// An encoded transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Encoded {
    /// Full snapshot of the vector.
    Full(StateVector),
    /// Sparse delta: (index, new value) pairs against the receiver state.
    Delta(Vec<(u32, f64)>),
}

impl Encoded {
    /// Bytes on the wire under the cost model.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Encoded::Full(v) => HEADER_BYTES + VALUE_BYTES * v.len() as u64,
            Encoded::Delta(d) => HEADER_BYTES + (VALUE_BYTES + INDEX_BYTES) * d.len() as u64,
        }
    }
}

/// Per-receiver delta codec: tracks the receiver's acknowledged state and
/// chooses full vs delta per transmission (delta only when cheaper).
#[derive(Debug, Default)]
pub struct DeltaCodec {
    acked: FastMap<u64, StateVector>,
    /// Accumulated bytes if everything had been sent full.
    pub full_bytes: u64,
    /// Accumulated bytes actually sent.
    pub sent_bytes: u64,
}

impl DeltaCodec {
    /// A fresh codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode the new state of `stream` for its receiver.
    pub fn encode(&mut self, stream: u64, state: &StateVector) -> Encoded {
        let full_cost = HEADER_BYTES + VALUE_BYTES * state.len() as u64;
        self.full_bytes += full_cost;
        let enc = match self.acked.get(&stream) {
            Some(prev) if prev.len() == state.len() => {
                let delta: Vec<(u32, f64)> = state
                    .iter()
                    .zip(prev.iter())
                    .enumerate()
                    .filter(|(_, (v, p))| p != v)
                    .map(|(i, (v, _))| (i as u32, *v))
                    .collect();
                let delta_enc = Encoded::Delta(delta);
                if delta_enc.wire_bytes() < full_cost {
                    delta_enc
                } else {
                    Encoded::Full(state.clone())
                }
            }
            _ => Encoded::Full(state.clone()),
        };
        self.sent_bytes += enc.wire_bytes();
        self.acked.insert(stream, state.clone());
        enc
    }

    /// Apply an encoded message to a receiver-side state copy.
    pub fn apply(state: &mut StateVector, enc: &Encoded) {
        match enc {
            Encoded::Full(v) => *state = v.clone(),
            Encoded::Delta(d) => {
                for &(i, v) in d {
                    if let Some(slot) = state.get_mut(i as usize) {
                        *slot = v;
                    }
                }
            }
        }
    }

    /// Fraction of bytes saved vs always-full (0 when nothing sent).
    pub fn savings(&self) -> f64 {
        if self.full_bytes == 0 {
            0.0
        } else {
            1.0 - self.sent_bytes as f64 / self.full_bytes as f64
        }
    }
}

/// Multimedia resolution ladder (the "low resolution image/video …
/// animation" degradation §IV-C and §IV-G describe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MediaResolution {
    /// Sprite/animation stand-in.
    Animation,
    /// Reduced-resolution stream.
    Low,
    /// Full-fidelity stream.
    High,
}

impl MediaResolution {
    /// Bytes per simulated second of streaming at this resolution, for a
    /// media object whose full-rate cost is `high_bps`.
    pub fn bytes_per_sec(self, high_bps: u64) -> u64 {
        match self {
            MediaResolution::High => high_bps,
            MediaResolution::Low => (high_bps / 10).max(1),
            MediaResolution::Animation => (high_bps / 100).max(1),
        }
    }

    /// Pick the best resolution whose rate fits within `budget_bps`.
    pub fn fit(high_bps: u64, budget_bps: u64) -> MediaResolution {
        for r in [MediaResolution::High, MediaResolution::Low, MediaResolution::Animation] {
            if r.bytes_per_sec(high_bps) <= budget_bps {
                return r;
            }
        }
        MediaResolution::Animation
    }

    /// Subjective quality score in \[0,1\] (for utility accounting in E3).
    pub fn quality(self) -> f64 {
        match self {
            MediaResolution::High => 1.0,
            MediaResolution::Low => 0.6,
            MediaResolution::Animation => 0.2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_send_is_full_then_delta() {
        let mut codec = DeltaCodec::new();
        let s1 = vec![1.0, 2.0, 3.0, 4.0];
        assert!(matches!(codec.encode(1, &s1), Encoded::Full(_)));
        let mut s2 = s1.clone();
        s2[2] = 9.0;
        let enc = codec.encode(1, &s2);
        assert_eq!(enc, Encoded::Delta(vec![(2, 9.0)]));
        assert!(codec.savings() > 0.0);
    }

    #[test]
    fn full_chosen_when_delta_larger() {
        let mut codec = DeltaCodec::new();
        let s1 = vec![0.0; 4];
        codec.encode(1, &s1);
        // All four entries change: delta = 4×12 + 16 = 64 > full = 48.
        let s2 = vec![1.0, 2.0, 3.0, 4.0];
        assert!(matches!(codec.encode(1, &s2), Encoded::Full(_)));
    }

    #[test]
    fn length_change_forces_full() {
        let mut codec = DeltaCodec::new();
        codec.encode(1, &vec![1.0, 2.0]);
        assert!(matches!(codec.encode(1, &vec![1.0, 2.0, 3.0]), Encoded::Full(_)));
    }

    #[test]
    fn streams_are_independent() {
        let mut codec = DeltaCodec::new();
        codec.encode(1, &vec![1.0]);
        // A different stream's first send must be full even though stream
        // 1 already synced.
        assert!(matches!(codec.encode(2, &vec![1.0]), Encoded::Full(_)));
    }

    #[test]
    fn resolution_ladder_and_fit() {
        let high = 1_000_000u64;
        assert_eq!(MediaResolution::fit(high, 2_000_000), MediaResolution::High);
        assert_eq!(MediaResolution::fit(high, 200_000), MediaResolution::Low);
        assert_eq!(MediaResolution::fit(high, 20_000), MediaResolution::Animation);
        // Even an impossible budget yields the animation fallback.
        assert_eq!(MediaResolution::fit(high, 1), MediaResolution::Animation);
        assert!(MediaResolution::High.quality() > MediaResolution::Animation.quality());
    }

    proptest! {
        #[test]
        fn prop_receiver_reconstructs_exactly(
            states in proptest::collection::vec(
                proptest::collection::vec(-100.0f64..100.0, 8), 1..20),
        ) {
            let mut codec = DeltaCodec::new();
            let mut receiver: StateVector = Vec::new();
            for s in &states {
                let enc = codec.encode(7, s);
                DeltaCodec::apply(&mut receiver, &enc);
                prop_assert_eq!(&receiver, s);
            }
            // Savings never negative: codec only picks delta when cheaper.
            prop_assert!(codec.sent_bytes <= codec.full_bytes);
        }
    }
}
