#![forbid(unsafe_code)]
//! `mv-dissem` — data dissemination with bounded incoherency.
//!
//! §IV-C (Data Consistency): *"Given the constraints in bandwidth and the
//! large amount of data to be transmitted, we do not expect to see a truly
//! consistent view in both worlds. However, we can try to keep the virtual
//! world as close to the real world as possible. One solution is to
//! tolerate some degree of discrepancies — for numerical data, they may
//! be within certain coherency requirements; for multimedia data, a low
//! resolution image/video may be used instead."* …and later: *"A closely
//! related approach is to study how data to be transmitted should be
//! prioritized."*
//!
//! * [`coherency`] — per-client per-object incoherency bounds with
//!   server-side value filtering. The paper notes prior schemes "assume a
//!   small number of distinct objects, and so do not scale"; the filter
//!   here is O(1) per (update, subscriber) with hash-indexed state, and
//!   experiment E3 sweeps it to 100k objects.
//! * [`payload`] — delta encoding for numeric state vectors and
//!   resolution degradation for multimedia payloads (the "low resolution
//!   image/video" escape hatch).
//! * [`sched`] — priority/deadline transmission scheduling over a
//!   bandwidth-limited uplink (E4).
//! * [`resume`] — disruption-tolerant client outboxes with
//!   newest-value-wins merging, after ICeDB (the paper's reference \[92\]).
//! * [`reliable`] — outbox pushes carried over `mv-net`'s reliable
//!   transport, with a client-side [`reliable::Replica`] deduplicating
//!   by outbox sequence so a flapping client converges to exactly the
//!   retained state.

pub mod coherency;
pub mod payload;
pub mod reliable;
pub mod resume;
pub mod sched;

pub use coherency::{Bound, CoherencyServer, PushMsg};
pub use payload::{DeltaCodec, MediaResolution, StateVector};
pub use reliable::{PushServer, Replica};
pub use resume::OutboxManager;
pub use sched::{LinkScheduler, Priority, SchedPolicy, TxRequest};
