//! Outbox dissemination over the reliable transport.
//!
//! [`crate::resume::OutboxManager`] decides *what* a client should
//! eventually see (newest value per object, priority-ordered replay);
//! this module decides *how it survives the trip*: every push and every
//! reconnect replay rides [`mv_net::ReliableTransport`], so lost
//! messages retransmit, a message the transport gives up on is
//! re-buffered into the outbox (newest-wins), and the client-side
//! [`Replica`] deduplicates at the application level by outbox sequence
//! number — the end-to-end effect is that a flapping client converges to
//! exactly the retained state, applying each retained update once.
//!
//! Two dedup layers on purpose: the transport deduplicates per-transport
//! sequence number, but a message that *expires* and is later replayed
//! gets a fresh transport sequence — only the outbox `seq` carried in
//! the payload identifies it across attempts. See DESIGN.md ("Fault
//! model") for the guarantee boundary.

use crate::resume::{OutMsg, OutboxManager};
use crate::sched::Priority;
use mv_common::hash::FastMap;
use mv_common::id::{ClientId, NodeId, ObjectId};
use mv_common::metrics::Counters;
use mv_common::time::SimTime;
use mv_net::reliable::Event;
use mv_net::{Network, ReliableTransport, RetryPolicy};
use mv_obs::{SharedTracer, TraceCtx};
use rand::Rng;

/// Server side: outbox retention wired onto reliable delivery.
#[derive(Debug)]
pub struct PushServer {
    /// The server's node in the simulated network.
    server: NodeId,
    /// Wire bytes charged per push message.
    msg_bytes: u64,
    /// Retention/merge policy (what each client still needs to see).
    pub outbox: OutboxManager,
    /// Delivery machinery (retries, dedup, expiry).
    pub transport: ReliableTransport<OutMsg>,
    /// client → its network node.
    routes: FastMap<ClientId, NodeId>,
    /// network node → client (for mapping transport events back).
    clients_by_node: FastMap<NodeId, ClientId>,
}

impl PushServer {
    /// A server at `server`, shipping `msg_bytes`-sized messages under
    /// `policy`; `seed` pins the transport's retry jitter.
    pub fn new(server: NodeId, policy: RetryPolicy, seed: u64, msg_bytes: u64) -> Self {
        PushServer {
            server,
            msg_bytes,
            outbox: OutboxManager::new(),
            transport: ReliableTransport::new(policy, seed),
            routes: FastMap::default(),
            clients_by_node: FastMap::default(),
        }
    }

    /// Register a client living at `node` (starts connected).
    pub fn register(&mut self, client: ClientId, node: NodeId) {
        self.outbox.register(client);
        self.routes.insert(client, node);
        self.clients_by_node.insert(node, client);
    }

    /// Collect spans for traced pushes: the underlying transport gets
    /// the tracer, and outbox replays/rebuffers log events on it.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.transport.set_tracer(tracer);
    }

    /// Push a value to a client: delivered over the transport when the
    /// outbox says the client is connected, buffered otherwise.
    #[allow(clippy::too_many_arguments)]
    pub fn push<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        client: ClientId,
        object: ObjectId,
        value: f64,
        priority: Priority,
        now: SimTime,
    ) {
        self.push_traced(net, rng, client, object, value, priority, now, None);
    }

    /// [`Self::push`] carrying the update's causal context: the context
    /// rides in the [`OutMsg`] through outbox buffering, newest-wins
    /// merges, expiry rebuffers, and reconnect replays, so every
    /// transport attempt for this value hangs off the same trace.
    #[allow(clippy::too_many_arguments)]
    pub fn push_traced<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        client: ClientId,
        object: ObjectId,
        value: f64,
        priority: Priority,
        now: SimTime,
        ctx: Option<TraceCtx>,
    ) {
        if let Some(msg) = self.outbox.push_traced(client, object, value, priority, ctx) {
            self.ship(net, rng, client, msg, now);
        }
    }

    /// Mark a client disconnected: pushes buffer from here on.
    pub fn disconnect(&mut self, client: ClientId) {
        self.outbox.disconnect(client);
    }

    /// Total messages buffered across every client's outbox — the
    /// dissemination-depth health probe (`OutboxManager::total_backlog`).
    pub fn outbox_depth(&self) -> usize {
        self.outbox.total_backlog()
    }

    /// Reconnect a client and ship its backlog, most critical first
    /// (the outbox's pinned `(priority, object)` order). Returns how
    /// many messages were replayed onto the wire.
    pub fn reconnect<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
    ) -> usize {
        let backlog = self.outbox.reconnect(client);
        let n = backlog.len();
        for msg in backlog {
            // Replay is a visible causal step: the value sat in the
            // outbox between its original push and this ship.
            if let (Some(tr), Some(c)) = (self.transport.tracer().cloned(), msg.ctx) {
                tr.event(c, "dissem.outbox.replay", now, "ok");
            }
            self.ship(net, rng, client, msg, now);
        }
        n
    }

    fn ship<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        client: ClientId,
        msg: OutMsg,
        now: SimTime,
    ) {
        let Some(&node) = self.routes.get(&client) else {
            return;
        };
        let ctx = msg.ctx;
        self.transport.send_traced(net, rng, self.server, node, msg, self.msg_bytes, now, ctx);
    }

    /// Earliest pending transport work; drive the clock here and `poll`.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.transport.next_wakeup()
    }

    /// Pump the transport up to `now`. Messages that arrived at a client
    /// node are returned for the client side to [`Replica::apply`];
    /// messages the transport gave up on are re-buffered into the outbox
    /// (newest-wins) and the client is marked disconnected — the next
    /// [`reconnect`](Self::reconnect) replays them.
    pub fn poll<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        now: SimTime,
    ) -> Vec<(ClientId, OutMsg)> {
        let mut arrived = Vec::new();
        for ev in self.transport.poll(net, rng, now) {
            match ev {
                Event::Delivered { dst, payload, .. } => {
                    if let Some(&client) = self.clients_by_node.get(&dst) {
                        arrived.push((client, payload));
                    }
                }
                Event::Expired { dst, payload, at, .. } => {
                    if let Some(&client) = self.clients_by_node.get(&dst) {
                        if let (Some(tr), Some(c)) = (self.transport.tracer().cloned(), payload.ctx)
                        {
                            tr.event(c, "dissem.outbox.rebuffer", at, "ok");
                        }
                        self.outbox.rebuffer(client, payload);
                    }
                }
            }
        }
        arrived
    }

    /// A node crashed: drop the transport's volatile state for it and,
    /// if a client lived there, start buffering for it. Call from
    /// `FaultTarget::on_node_crash`.
    pub fn on_node_crash(&mut self, node: NodeId) {
        self.transport.on_node_crash(node);
        if let Some(&client) = self.clients_by_node.get(&node) {
            self.outbox.disconnect(client);
        }
    }
}

/// Client-side replica of pushed object values, deduplicated at the
/// application level: each object keeps the highest outbox `seq` seen,
/// so replayed/duplicated messages are absorbed (`stale` counter) and
/// each retained update mutates the replica at most once.
#[derive(Debug, Default)]
pub struct Replica {
    state: FastMap<ObjectId, (u64, f64)>,
    /// `applied` / `stale` counters.
    pub stats: Counters,
}

impl Replica {
    /// An empty replica.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a delivered message; returns false (and counts `stale`)
    /// when an equal-or-newer seq for the object was already applied.
    pub fn apply(&mut self, msg: &OutMsg) -> bool {
        match self.state.get(&msg.object) {
            Some(&(seq, _)) if seq >= msg.seq => {
                self.stats.incr("stale");
                false
            }
            _ => {
                self.state.insert(msg.object, (msg.seq, msg.value));
                self.stats.incr("applied");
                true
            }
        }
    }

    /// Current value of an object, if any update has arrived.
    pub fn get(&self, object: ObjectId) -> Option<f64> {
        self.state.get(&object).map(|&(_, v)| v)
    }

    /// Number of objects with a value.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no update has been applied.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Drop all state (a client crash loses its replica).
    pub fn clear(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use mv_common::time::SimDuration;
    use mv_net::LinkSpec;

    fn world(loss: f64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let (server, client) = (NodeId::new(0), NodeId::new(1));
        net.add_node(server, "server");
        net.add_node(client, "client");
        net.add_link_bidi(
            server,
            client,
            LinkSpec::new(SimDuration::from_millis(10), 1e8).with_loss(loss),
        );
        net.set_group(client, 1).unwrap();
        (net, server, client)
    }

    fn drain(
        ps: &mut PushServer,
        replica: &mut Replica,
        net: &mut Network,
        rng: &mut rand::rngs::StdRng,
    ) {
        while let Some(at) = ps.next_wakeup() {
            for (_client, msg) in ps.poll(net, rng, at) {
                replica.apply(&msg);
            }
        }
    }

    #[test]
    fn connected_push_rides_the_reliable_transport() {
        let (mut net, server, node) = world(0.0);
        let mut ps = PushServer::new(server, RetryPolicy::default(), 1, 64);
        let mut rng = seeded_rng(1);
        let client = ClientId::new(1);
        ps.register(client, node);
        ps.push(&mut net, &mut rng, client, ObjectId::new(7), 3.5, Priority::Normal, SimTime::ZERO);
        let mut replica = Replica::new();
        drain(&mut ps, &mut replica, &mut net, &mut rng);
        assert_eq!(replica.get(ObjectId::new(7)), Some(3.5));
        assert_eq!(replica.stats.get("applied"), 1);
        assert_eq!(ps.transport.stats.get("delivered"), 1);
    }

    #[test]
    fn flapping_client_receives_every_retained_update_exactly_once() {
        let (mut net, server, node) = world(0.2);
        let mut ps = PushServer::new(server, RetryPolicy::default(), 9, 64);
        let mut rng = seeded_rng(9);
        let client = ClientId::new(1);
        ps.register(client, node);

        // Client drops off; the link also partitions.
        ps.disconnect(client);
        net.sever(0, 1);
        for i in 0..10u64 {
            // Two updates per object: only the newest is retained.
            for round in 0..2 {
                ps.push(
                    &mut net,
                    &mut rng,
                    client,
                    ObjectId::new(i),
                    (i * 10 + round) as f64,
                    Priority::Normal,
                    SimTime::ZERO,
                );
            }
        }
        assert_eq!(ps.outbox.backlog(client), 10);

        // Heal + reconnect: the retained backlog replays reliably.
        net.heal(0, 1);
        let replayed = ps.reconnect(&mut net, &mut rng, client, SimTime::from_secs(1));
        assert_eq!(replayed, 10);
        let mut replica = Replica::new();
        drain(&mut ps, &mut replica, &mut net, &mut rng);

        // Every object holds exactly its newest value, applied once.
        assert_eq!(replica.len(), 10);
        for i in 0..10u64 {
            assert_eq!(replica.get(ObjectId::new(i)), Some((i * 10 + 1) as f64));
        }
        assert_eq!(replica.stats.get("applied"), 10, "each retained update applied once");
        assert_eq!(replica.stats.get("stale"), 0);
    }

    #[test]
    fn expired_messages_rebuffer_and_replay_after_reconnect() {
        let (mut net, server, node) = world(0.0);
        // Tight policy so expiry happens fast.
        let policy = RetryPolicy { max_attempts: 2, ..RetryPolicy::default() };
        let mut ps = PushServer::new(server, policy, 4, 64);
        let mut rng = seeded_rng(4);
        let client = ClientId::new(1);
        ps.register(client, node);

        // The server still believes the client is connected, but the
        // network has already partitioned: the send expires.
        net.sever(0, 1);
        ps.push(&mut net, &mut rng, client, ObjectId::new(1), 1.0, Priority::Normal, SimTime::ZERO);
        let mut replica = Replica::new();
        drain(&mut ps, &mut replica, &mut net, &mut rng);
        assert!(replica.is_empty());
        assert_eq!(ps.transport.stats.get("expired"), 1);
        assert_eq!(ps.outbox.backlog(client), 1, "expired message re-buffered");
        assert!(!ps.outbox.is_connected(client), "expiry implies disconnection");

        // A newer value supersedes the re-buffered one while offline.
        ps.push(&mut net, &mut rng, client, ObjectId::new(1), 2.0, Priority::Normal, SimTime::ZERO);
        net.heal(0, 1);
        ps.reconnect(&mut net, &mut rng, client, SimTime::from_secs(5));
        drain(&mut ps, &mut replica, &mut net, &mut rng);
        assert_eq!(replica.get(ObjectId::new(1)), Some(2.0));
        assert_eq!(replica.stats.get("applied"), 1);
    }

    #[test]
    fn two_runs_same_seed_are_identical() {
        let run = || {
            let (mut net, server, node) = world(0.3);
            let mut ps = PushServer::new(server, RetryPolicy::default(), 77, 64);
            let mut rng = seeded_rng(77);
            let client = ClientId::new(1);
            ps.register(client, node);
            for i in 0..20u64 {
                ps.push(
                    &mut net,
                    &mut rng,
                    client,
                    ObjectId::new(i % 5),
                    i as f64,
                    Priority::Normal,
                    SimTime::from_millis(i),
                );
            }
            let mut replica = Replica::new();
            drain(&mut ps, &mut replica, &mut net, &mut rng);
            (
                format!("{:?}", ps.transport.stats),
                format!("{:?}", replica.stats),
                (0..5u64).map(|i| replica.get(ObjectId::new(i))).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
