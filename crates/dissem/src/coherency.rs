//! Coherency-bounded push dissemination.
//!
//! Clients subscribe to objects with an incoherency bound; the server
//! filters updates and pushes only those that would otherwise leave a
//! client's cached copy more than its bound away from the source value.
//! The invariant (checked by property tests): after every call, for every
//! (client, object) subscription, `|source − client_copy| ≤ bound`
//! evaluated at push boundaries.

use mv_common::hash::FastMap;
use mv_common::id::{ClientId, ObjectId};
use mv_common::metrics::Counters;

/// A subscription's incoherency tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// Push whenever |v − last_pushed| exceeds this absolute amount.
    Absolute(f64),
    /// Push whenever the relative drift |v − last|/max(|last|, ε) exceeds
    /// this fraction.
    Relative(f64),
    /// No tolerance: every update is pushed (the naive baseline).
    Exact,
}

impl Bound {
    /// Does moving from `last_sent` to `v` violate the bound?
    #[inline]
    pub fn violated(self, last_sent: f64, v: f64) -> bool {
        match self {
            Bound::Exact => v != last_sent,
            Bound::Absolute(eps) => (v - last_sent).abs() > eps,
            Bound::Relative(frac) => {
                let base = last_sent.abs().max(1e-9);
                ((v - last_sent) / base).abs() > frac
            }
        }
    }
}

/// One push to one client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushMsg {
    /// Destination client.
    pub client: ClientId,
    /// Object whose value is pushed.
    pub object: ObjectId,
    /// The fresh value.
    pub value: f64,
}

/// The dissemination server.
#[derive(Debug, Default)]
pub struct CoherencyServer {
    values: FastMap<ObjectId, f64>,
    subs: FastMap<ObjectId, Vec<(ClientId, Bound)>>,
    last_sent: FastMap<(ObjectId, ClientId), f64>,
    /// `updates`, `pushes`, `suppressed` counters.
    pub stats: Counters,
}

impl CoherencyServer {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribe `client` to `object` with a bound. The current value (if
    /// any) is pushed immediately so the client starts coherent.
    pub fn subscribe(&mut self, client: ClientId, object: ObjectId, bound: Bound) -> Option<PushMsg> {
        let subs = self.subs.entry(object).or_default();
        if let Some(existing) = subs.iter_mut().find(|(c, _)| *c == client) {
            existing.1 = bound;
        } else {
            subs.push((client, bound));
        }
        self.values.get(&object).copied().map(|v| {
            self.last_sent.insert((object, client), v);
            self.stats.incr("pushes");
            PushMsg { client, object, value: v }
        })
    }

    /// Remove a subscription.
    pub fn unsubscribe(&mut self, client: ClientId, object: ObjectId) -> bool {
        let mut removed = false;
        if let Some(subs) = self.subs.get_mut(&object) {
            let before = subs.len();
            subs.retain(|(c, _)| *c != client);
            removed = subs.len() != before;
        }
        self.last_sent.remove(&(object, client));
        removed
    }

    /// Number of subscriptions on an object.
    pub fn subscriber_count(&self, object: ObjectId) -> usize {
        self.subs.get(&object).map_or(0, Vec::len)
    }

    /// Apply a source update; returns the pushes it triggers. Clients not
    /// pushed keep their old copy — by construction still within bound.
    pub fn update(&mut self, object: ObjectId, value: f64) -> Vec<PushMsg> {
        self.values.insert(object, value);
        self.stats.incr("updates");
        let mut out = Vec::new();
        if let Some(watchers) = self.subs.get(&object) {
            for &(client, bound) in watchers {
                let key = (object, client);
                let last = self.last_sent.get(&key).copied();
                let must_push = match last {
                    None => true, // never synced
                    Some(prev) => bound.violated(prev, value),
                };
                if must_push {
                    self.last_sent.insert(key, value);
                    out.push(PushMsg { client, object, value });
                } else {
                    self.stats.incr("suppressed");
                }
            }
        }
        self.stats.add("pushes", out.len() as u64);
        out
    }

    /// Source-of-truth value of an object.
    pub fn value(&self, object: ObjectId) -> Option<f64> {
        self.values.get(&object).copied()
    }

    /// The last value pushed to a (client, object) pair.
    pub fn client_copy(&self, client: ClientId, object: ObjectId) -> Option<f64> {
        self.last_sent.get(&(object, client)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use proptest::prelude::*;
    use rand::Rng;

    fn c(i: u64) -> ClientId {
        ClientId::new(i)
    }
    fn o(i: u64) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn exact_bound_pushes_everything() {
        let mut s = CoherencyServer::new();
        s.subscribe(c(1), o(1), Bound::Exact);
        assert_eq!(s.update(o(1), 1.0).len(), 1);
        assert_eq!(s.update(o(1), 2.0).len(), 1);
        assert_eq!(s.update(o(1), 2.0).len(), 0); // unchanged value
        assert_eq!(s.stats.get("pushes"), 2);
    }

    #[test]
    fn absolute_bound_suppresses_small_drift() {
        let mut s = CoherencyServer::new();
        s.subscribe(c(1), o(1), Bound::Absolute(1.0));
        assert_eq!(s.update(o(1), 10.0).len(), 1); // first sync
        assert!(s.update(o(1), 10.5).is_empty());
        assert!(s.update(o(1), 10.9).is_empty());
        let pushed = s.update(o(1), 11.5); // drift 1.5 > 1.0
        assert_eq!(pushed.len(), 1);
        assert_eq!(s.client_copy(c(1), o(1)), Some(11.5));
        assert_eq!(s.stats.get("suppressed"), 2);
    }

    #[test]
    fn relative_bound_scales_with_magnitude() {
        let mut s = CoherencyServer::new();
        s.subscribe(c(1), o(1), Bound::Relative(0.10));
        s.update(o(1), 100.0);
        assert!(s.update(o(1), 105.0).is_empty()); // 5% drift
        assert_eq!(s.update(o(1), 120.0).len(), 1); // 20% drift
    }

    #[test]
    fn late_subscriber_gets_current_value() {
        let mut s = CoherencyServer::new();
        s.update(o(1), 42.0);
        let push = s.subscribe(c(1), o(1), Bound::Absolute(5.0));
        assert_eq!(push, Some(PushMsg { client: c(1), object: o(1), value: 42.0 }));
    }

    #[test]
    fn mixed_bounds_per_client() {
        let mut s = CoherencyServer::new();
        s.subscribe(c(1), o(1), Bound::Absolute(0.5));
        s.subscribe(c(2), o(1), Bound::Absolute(5.0));
        s.update(o(1), 0.0);
        let pushes = s.update(o(1), 1.0);
        assert_eq!(pushes.len(), 1);
        assert_eq!(pushes[0].client, c(1));
        assert_eq!(s.subscriber_count(o(1)), 2);
    }

    #[test]
    fn unsubscribe_stops_pushes() {
        let mut s = CoherencyServer::new();
        s.subscribe(c(1), o(1), Bound::Exact);
        s.update(o(1), 1.0);
        assert!(s.unsubscribe(c(1), o(1)));
        assert!(!s.unsubscribe(c(1), o(1)));
        assert!(s.update(o(1), 2.0).is_empty());
    }

    #[test]
    fn resubscribe_updates_bound() {
        let mut s = CoherencyServer::new();
        s.subscribe(c(1), o(1), Bound::Exact);
        s.update(o(1), 1.0);
        s.subscribe(c(1), o(1), Bound::Absolute(100.0));
        assert_eq!(s.subscriber_count(o(1)), 1);
        assert!(s.update(o(1), 50.0).is_empty());
    }

    #[test]
    fn suppression_ratio_grows_with_bound() {
        let mut rng = seeded_rng(17);
        let mut walk = 0.0f64;
        let values: Vec<f64> = (0..2000)
            .map(|_| {
                walk += rng.gen_range(-1.0..1.0);
                walk
            })
            .collect();
        let mut pushes_by_bound = Vec::new();
        for bound in [0.0, 1.0, 4.0, 16.0] {
            let mut s = CoherencyServer::new();
            let b = if bound == 0.0 { Bound::Exact } else { Bound::Absolute(bound) };
            s.subscribe(c(1), o(1), b);
            for &v in &values {
                s.update(o(1), v);
            }
            pushes_by_bound.push(s.stats.get("pushes"));
        }
        // Monotone non-increasing push counts as the bound loosens.
        assert!(pushes_by_bound.windows(2).all(|w| w[0] >= w[1]), "{pushes_by_bound:?}");
        assert!(pushes_by_bound[3] * 10 < pushes_by_bound[0], "{pushes_by_bound:?}");
    }

    proptest! {
        #[test]
        fn prop_client_copy_within_absolute_bound(
            values in proptest::collection::vec(-1000.0f64..1000.0, 1..200),
            eps in 0.1f64..50.0,
        ) {
            let mut s = CoherencyServer::new();
            s.subscribe(c(1), o(1), Bound::Absolute(eps));
            for &v in &values {
                s.update(o(1), v);
                let copy = s.client_copy(c(1), o(1)).expect("synced after first update");
                // The invariant: the client's copy never drifts beyond eps
                // from the source at update boundaries.
                prop_assert!((copy - v).abs() <= eps, "copy {copy} vs source {v} eps {eps}");
            }
        }

        #[test]
        fn prop_exact_bound_equals_distinct_updates(
            values in proptest::collection::vec(-10.0f64..10.0, 1..100),
        ) {
            let mut s = CoherencyServer::new();
            s.subscribe(c(1), o(1), Bound::Exact);
            let mut expected = 0u64;
            let mut last = f64::NAN;
            for &v in &values {
                s.update(o(1), v);
                if v != last {
                    expected += 1;
                    last = v;
                }
            }
            prop_assert_eq!(s.stats.get("pushes"), expected);
        }
    }
}
