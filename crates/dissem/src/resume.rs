//! Disruption-tolerant per-client outboxes.
//!
//! §IV-C points to *"methods developed for intermittently-connected and
//! disruptive networks \[92\]"* (ICeDB). Mobile co-space clients drop off
//! cellular links constantly; while a client is disconnected the server
//! buffers its pushes in an outbox that (a) keeps only the newest value
//! per object — stale intermediate values are useless to a reconnecting
//! client — and (b) releases the backlog in priority order on reconnect.

use crate::sched::Priority;
use mv_common::hash::FastMap;
use mv_common::id::{ClientId, ObjectId};
use mv_common::metrics::Counters;
use mv_obs::TraceCtx;

/// One buffered (or delivered) outbox message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutMsg {
    /// Target object.
    pub object: ObjectId,
    /// Newest value.
    pub value: f64,
    /// Criticality (drives replay order).
    pub priority: Priority,
    /// Monotone sequence number of the *latest* absorbed update.
    pub seq: u64,
    /// Causal context of the *latest* absorbed update (newest-wins
    /// merges keep the winner's context, like its value).
    pub ctx: Option<TraceCtx>,
}

#[derive(Debug, Default)]
struct Outbox {
    connected: bool,
    /// object → buffered message (newest-wins).
    pending: FastMap<ObjectId, OutMsg>,
}

/// Manages outboxes for many clients.
#[derive(Debug, Default)]
pub struct OutboxManager {
    clients: FastMap<ClientId, Outbox>,
    seq: u64,
    /// `delivered`, `buffered`, `merged` (overwrites saved) counters.
    pub stats: Counters,
}

impl OutboxManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a client (starts connected).
    pub fn register(&mut self, client: ClientId) {
        self.clients.entry(client).or_insert(Outbox { connected: true, pending: FastMap::default() });
    }

    /// Mark a client disconnected; pushes start buffering.
    pub fn disconnect(&mut self, client: ClientId) {
        if let Some(o) = self.clients.get_mut(&client) {
            o.connected = false;
        }
    }

    /// Is the client currently connected?
    pub fn is_connected(&self, client: ClientId) -> bool {
        self.clients.get(&client).is_some_and(|o| o.connected)
    }

    /// Number of messages waiting for a client.
    pub fn backlog(&self, client: ClientId) -> usize {
        self.clients.get(&client).map_or(0, |o| o.pending.len())
    }

    /// Total messages buffered across every client — the outbox-depth
    /// health probe.
    pub fn total_backlog(&self) -> usize {
        self.clients.values().map(|o| o.pending.len()).sum()
    }

    /// Push a value to a client. Returns `Some(msg)` if deliverable now,
    /// `None` if buffered (client offline or unknown).
    pub fn push(
        &mut self,
        client: ClientId,
        object: ObjectId,
        value: f64,
        priority: Priority,
    ) -> Option<OutMsg> {
        self.push_traced(client, object, value, priority, None)
    }

    /// [`Self::push`] carrying the update's causal context; the context
    /// rides in the [`OutMsg`] through buffering, merges, and replay.
    pub fn push_traced(
        &mut self,
        client: ClientId,
        object: ObjectId,
        value: f64,
        priority: Priority,
        ctx: Option<TraceCtx>,
    ) -> Option<OutMsg> {
        self.seq += 1;
        let msg = OutMsg { object, value, priority, seq: self.seq, ctx };
        let outbox = self.clients.get_mut(&client)?;
        if outbox.connected {
            self.stats.incr("delivered");
            Some(msg)
        } else {
            if outbox.pending.insert(object, msg).is_some() {
                self.stats.incr("merged"); // an older buffered value died
            } else {
                self.stats.incr("buffered");
            }
            None
        }
    }

    /// Take back a message whose delivery failed (e.g. the reliable
    /// transport gave up on it): the client is marked disconnected and
    /// the message re-buffered — unless a newer value for the same
    /// object is already waiting, in which case the stale one dies
    /// (newest-wins, judged by `seq`).
    pub fn rebuffer(&mut self, client: ClientId, msg: OutMsg) {
        let Some(outbox) = self.clients.get_mut(&client) else {
            return;
        };
        outbox.connected = false;
        match outbox.pending.get(&msg.object) {
            Some(existing) if existing.seq >= msg.seq => {
                self.stats.incr("merged");
            }
            _ => {
                if outbox.pending.insert(msg.object, msg).is_some() {
                    self.stats.incr("merged");
                } else {
                    self.stats.incr("buffered");
                }
            }
        }
    }

    /// Reconnect a client: returns the backlog and marks the client
    /// connected. Replay order is **pinned**: ascending `(priority,
    /// object id)` — most critical first, ties broken by object id.
    /// Object keys are unique within an outbox, so this is a total
    /// order: two runs that buffered the same messages (in any
    /// insertion order) replay them identically.
    pub fn reconnect(&mut self, client: ClientId) -> Vec<OutMsg> {
        let Some(outbox) = self.clients.get_mut(&client) else {
            return Vec::new();
        };
        outbox.connected = true;
        let mut msgs: Vec<OutMsg> = outbox.pending.drain().map(|(_, m)| m).collect();
        msgs.sort_by_key(|m| (m.priority, m.object));
        self.stats.add("delivered", msgs.len() as u64);
        msgs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u64) -> ClientId {
        ClientId::new(i)
    }
    fn o(i: u64) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn connected_clients_get_immediate_delivery() {
        let mut m = OutboxManager::new();
        m.register(c(1));
        let msg = m.push(c(1), o(1), 5.0, Priority::Normal);
        assert!(msg.is_some());
        assert_eq!(m.stats.get("delivered"), 1);
        assert_eq!(m.backlog(c(1)), 0);
    }

    #[test]
    fn disconnected_pushes_buffer_and_merge() {
        let mut m = OutboxManager::new();
        m.register(c(1));
        m.disconnect(c(1));
        assert!(m.push(c(1), o(1), 1.0, Priority::Normal).is_none());
        assert!(m.push(c(1), o(1), 2.0, Priority::Normal).is_none());
        assert!(m.push(c(1), o(1), 3.0, Priority::Normal).is_none());
        assert!(m.push(c(1), o(2), 9.0, Priority::Normal).is_none());
        // Three updates to o(1) collapse into one buffered message.
        assert_eq!(m.backlog(c(1)), 2);
        assert_eq!(m.stats.get("merged"), 2);
        let replay = m.reconnect(c(1));
        assert_eq!(replay.len(), 2);
        let o1 = replay.iter().find(|r| r.object == o(1)).unwrap();
        assert_eq!(o1.value, 3.0); // newest wins
    }

    #[test]
    fn replay_is_priority_ordered() {
        let mut m = OutboxManager::new();
        m.register(c(1));
        m.disconnect(c(1));
        m.push(c(1), o(3), 1.0, Priority::Bulk);
        m.push(c(1), o(1), 2.0, Priority::Critical);
        m.push(c(1), o(2), 3.0, Priority::High);
        let replay = m.reconnect(c(1));
        let prios: Vec<Priority> = replay.iter().map(|r| r.priority).collect();
        assert_eq!(prios, vec![Priority::Critical, Priority::High, Priority::Bulk]);
        assert!(m.is_connected(c(1)));
    }

    #[test]
    fn unknown_client_is_dropped_silently() {
        let mut m = OutboxManager::new();
        assert!(m.push(c(9), o(1), 1.0, Priority::Normal).is_none());
        assert!(m.reconnect(c(9)).is_empty());
        assert!(!m.is_connected(c(9)));
    }

    #[test]
    fn equal_priority_replay_order_is_pinned_across_insertion_orders() {
        // The documented tie-break is ascending object id. Buffer the
        // same equal-priority messages in three different insertion
        // orders; every reconnect must drain them identically.
        let objects = [7u64, 3, 9, 1, 5];
        let orders: [Vec<usize>; 3] =
            [vec![0, 1, 2, 3, 4], vec![4, 3, 2, 1, 0], vec![2, 0, 4, 1, 3]];
        let mut replays = Vec::new();
        for order in &orders {
            let mut m = OutboxManager::new();
            m.register(c(1));
            m.disconnect(c(1));
            for &i in order {
                m.push(c(1), o(objects[i]), objects[i] as f64, Priority::Normal);
            }
            let replay: Vec<u64> = m.reconnect(c(1)).iter().map(|r| r.object.raw()).collect();
            replays.push(replay);
        }
        assert_eq!(replays[0], vec![1, 3, 5, 7, 9], "ascending object id");
        assert_eq!(replays[0], replays[1]);
        assert_eq!(replays[0], replays[2]);
    }

    #[test]
    fn rebuffer_keeps_the_newest_value_and_disconnects() {
        let mut m = OutboxManager::new();
        m.register(c(1));
        // A delivered message later bounces (transport gave up on it).
        let stale = m.push(c(1), o(1), 1.0, Priority::Normal).unwrap();
        let fresh = m.push(c(1), o(1), 2.0, Priority::Normal).unwrap();
        m.rebuffer(c(1), fresh);
        assert!(!m.is_connected(c(1)));
        // The older bounce must not clobber the newer buffered value.
        m.rebuffer(c(1), stale);
        let replay = m.reconnect(c(1));
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].value, 2.0);
        // Unknown clients are ignored.
        m.rebuffer(c(9), stale);
        assert_eq!(m.backlog(c(9)), 0);
    }

    #[test]
    fn reconnect_resumes_immediate_delivery() {
        let mut m = OutboxManager::new();
        m.register(c(1));
        m.disconnect(c(1));
        m.push(c(1), o(1), 1.0, Priority::Normal);
        m.reconnect(c(1));
        assert!(m.push(c(1), o(1), 2.0, Priority::Normal).is_some());
    }
}
