//! Differential proof of the sharded engine.
//!
//! The sequential `Metaverse` is the specification; `ShardedMetaverse`
//! claims to be observationally equivalent for every shard count. This
//! harness replays op sequences (fixed seeds and proptest-generated)
//! against both engines with shard counts {1, 2, 4, 8} and asserts, at
//! the level a client could observe:
//!
//! * per-op outcomes (return values, query results, relayed commands)
//!   are identical, op by op;
//! * the drained event logs hold the same facts (canonicalized — the
//!   engines order/number independently);
//! * counter totals, live counts, and divergence metrics agree
//!   (`mean_divergence` up to f64 summation order across shards);
//! * the sharded engine's *merged* log is byte-identical run-to-run —
//!   thread scheduling never leaks into observable state;
//! * coalescing writes into batches (`apply_batch`) changes nothing.

use mv_common::seeded_rng;
use mv_core::ops::{canonical_log, gen_ops, replay, replay_batched, CoSpace, Op};
use mv_core::{Metaverse, ShardedMetaverse, SyncPolicy};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORLD: f64 = 200.0;

fn policy() -> SyncPolicy {
    SyncPolicy { position_bound: 2.0, attr_bound: 0.5 }
}

/// Replay `ops` on the spec engine and on sharded engines at every
/// shard count, asserting full observable equivalence. Returns the spec
/// fingerprints so callers can add their own checks.
fn assert_equivalent(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut spec = Metaverse::new(policy(), 25.0);
    let spec_fps = replay(&mut spec, ops);
    let spec_log = canonical_log(&CoSpace::drain_events(&mut spec));

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedMetaverse::new(policy(), 25.0, shards);
        let fps = replay(&mut sharded, ops);
        for (i, (s, p)) in spec_fps.iter().zip(&fps).enumerate() {
            prop_assert_eq!(s, p, "shards={}: first divergence at op {} = {:?}", shards, i, ops[i]);
        }
        prop_assert_eq!(spec.live_count(), sharded.live_count(), "live count, shards={}", shards);
        prop_assert_eq!(
            spec.counters().to_string(),
            sharded.stats().to_string(),
            "counter totals, shards={}",
            shards
        );
        prop_assert_eq!(
            spec.max_divergence(),
            sharded.max_divergence(),
            "max divergence, shards={}",
            shards
        );
        let mean_gap = (spec.mean_divergence() - sharded.mean_divergence()).abs();
        prop_assert!(
            mean_gap < 1e-9,
            "mean divergence gap {} too large, shards={}",
            mean_gap,
            shards
        );
        let log = canonical_log(&sharded.drain_events());
        prop_assert_eq!(&spec_log, &log, "event logs differ, shards={}", shards);
    }
    Ok(())
}

/// One full replay of `ops` on a fresh sharded engine, returning the
/// merged event log rendered to bytes.
fn merged_log_bytes(ops: &[Op], shards: usize) -> String {
    let mut sharded = ShardedMetaverse::new(policy(), 25.0, shards);
    replay(&mut sharded, ops);
    format!("{:?}", sharded.drain_events())
}

#[test]
fn differential_fixed_seeds_all_shard_counts() {
    for seed in [1u64, 2, 3, 42, 2023] {
        let ops = gen_ops(&mut seeded_rng(seed), 300, WORLD);
        assert_equivalent(&ops).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
    }
}

#[test]
fn merged_event_log_is_byte_identical_across_runs() {
    let ops = gen_ops(&mut seeded_rng(77), 400, WORLD);
    for shards in SHARD_COUNTS {
        let first = merged_log_bytes(&ops, shards);
        for run in 1..4 {
            assert_eq!(
                merged_log_bytes(&ops, shards),
                first,
                "shards={shards}: merged log changed between run 0 and run {run}"
            );
        }
    }
}

#[test]
fn batched_replay_matches_op_at_a_time_replay() {
    let ops = gen_ops(&mut seeded_rng(9), 350, WORLD);
    let mut spec = Metaverse::new(policy(), 25.0);
    let spec_fps = replay(&mut spec, &ops);
    let spec_log = canonical_log(&CoSpace::drain_events(&mut spec));
    for shards in SHARD_COUNTS {
        for batch in [1usize, 7, 64] {
            let mut sharded = ShardedMetaverse::new(policy(), 25.0, shards);
            let fps = replay_batched(&mut sharded, &ops, batch);
            assert_eq!(spec_fps, fps, "shards={shards} batch={batch}");
            assert_eq!(
                spec_log,
                canonical_log(&sharded.drain_events()),
                "event logs differ, shards={shards} batch={batch}"
            );
        }
    }
}

#[test]
fn queries_agree_after_heavy_retirement() {
    // Drive most of the population through area_effect retirement, then
    // compare full-world queries — exercises the retired-entity filters
    // on every shard's twin index.
    let mut ops = gen_ops(&mut seeded_rng(5), 200, WORLD);
    ops.push(Op::AreaEffect {
        space: mv_common::Space::Virtual,
        effect: "purge".into(),
        region: mv_common::geom::Aabb::new(
            mv_common::geom::Point::ORIGIN,
            mv_common::geom::Point::new(WORLD, WORLD),
        ),
        action: "perish".into(),
        retire: true,
    });
    for space in mv_common::Space::ALL {
        ops.push(Op::QueryTruth {
            space,
            area: mv_common::geom::Aabb::new(
                mv_common::geom::Point::ORIGIN,
                mv_common::geom::Point::new(WORLD, WORLD),
            ),
        });
        ops.push(Op::QueryVisible {
            space,
            area: mv_common::geom::Aabb::new(
                mv_common::geom::Point::ORIGIN,
                mv_common::geom::Point::new(WORLD, WORLD),
            ),
        });
    }
    assert_equivalent(&ops).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn differential_random_sequences(ops in mv_core::ops::strategies::OpSeq { min_ops: 1, max_ops: 250, world: WORLD }) {
        assert_equivalent(&ops)?;
    }
}
