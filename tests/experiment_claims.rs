//! Shape assertions for the EXPERIMENTS.md claims: each test re-derives a
//! headline conclusion directly from the library crates, so a regression
//! that flips a paper-claim reproduction fails the suite. (The tables
//! themselves are produced by `mv-bench`'s `experiments` binary.)

use metaverse_deluge::common::time::SimDuration;

#[test]
fn e2_fusion_beats_every_single_source() {
    use metaverse_deluge::fusion::library::{LibraryParams, LibraryScenario};
    let r = LibraryScenario::new(LibraryParams::default(), 42).run_fusion();
    assert!(r.fused_acc > r.rfid_acc);
    assert!(r.fused_acc > r.camera_acc);
    assert!(r.fused_acc > r.social_acc);
}

#[test]
fn e6_single_round_commits_faster_and_aborts_less_than_2pc() {
    use metaverse_deluge::txn::{CommitProtocol, DistributedSim, SimParams};
    let sim = DistributedSim::new(SimParams {
        zipf_alpha: 1.0,
        keys: 500,
        inter_dc_latency: SimDuration::from_millis(40),
        ..Default::default()
    });
    let mut two = sim.run(CommitProtocol::TwoPhase);
    let mut one = sim.run(CommitProtocol::SingleRound);
    assert!(one.latency_ms.p50() < two.latency_ms.p50());
    assert!(one.abort_rate() <= two.abort_rate());
}

#[test]
fn e19_engine_round_structure_matches_the_e6_model() {
    // Reconciliation of the modelled simulator (E6, `DistributedSim`)
    // with the real durable commit path (E19): both must exhibit the
    // same *round structure* — a distributed commit costs two
    // synchronous rounds where a single-home commit costs one.
    // Absolute latencies diverge by design (the model charges a WAN
    // RTT per round, the engine a 20 µs local WAL flush); that gap is
    // documented in EXPERIMENTS.md. What must agree is the ratio.
    use metaverse_deluge::txn::{CommitProtocol, DistributedSim, SimParams};
    const TOLERANCE: f64 = 0.25;

    // Model side: p50 commit latency minus the client→coordinator hop
    // leaves the protocol rounds. TwoPhase/SingleRound ≈ 2.
    let one_way = SimDuration::from_millis(40);
    let sim = DistributedSim::new(SimParams {
        inter_dc_latency: one_way,
        zipf_alpha: 0.2,
        keys: 100_000,
        ..Default::default()
    });
    let mut two = sim.run(CommitProtocol::TwoPhase);
    let mut one = sim.run(CommitProtocol::SingleRound);
    // The model front-loads a 200 µs intra-DC client→coordinator hop
    // before the WAN rounds; strip it to leave the rounds alone.
    let hop = SimDuration::from_micros(200).as_millis_f64();
    let model_ratio = (two.latency_ms.p50() - hop) / (one.latency_ms.p50() - hop);

    // Engine side: a single-shard commit is one WAL sync, a cross-shard
    // commit two (prepare barrier + decision). Recover both costs from
    // measured E19 cells: a 1-shard world is 100% fast path, and a
    // sharded world's mean is sync_cost × (1 + cross_share).
    let solo = mv_bench::exp_txn::e19_cell(1, 64, 40, 7);
    let sharded = mv_bench::exp_txn::e19_cell(8, 64, 40, 7);
    assert!(solo.cross_share == 0.0, "one shard cannot cross shards");
    assert!(sharded.cross_share > 0.5, "eight shards: transfers mostly cross");
    let sync_cost = solo.mean_commit_us;
    let cross_cost = (sharded.mean_commit_us - sync_cost) / sharded.cross_share + sync_cost;
    let engine_ratio = cross_cost / sync_cost;

    assert!(
        (model_ratio - engine_ratio).abs() <= TOLERANCE,
        "round structure diverged: model {model_ratio:.3} vs engine {engine_ratio:.3}"
    );
}

#[test]
fn e7_offload_cuts_uplink_an_order_of_magnitude() {
    use metaverse_deluge::cloud::offload::{run, OffloadParams};
    let (raw, off) = run(&OffloadParams::default());
    assert!(off.uplink_bytes * 10 <= raw.uplink_bytes);
    assert!(off.cloud_cpu_us * 5 <= raw.cloud_cpu_us);
}

#[test]
fn e9_space_aware_cache_protects_physical_pages() {
    use metaverse_deluge::common::{seeded_rng, Space};
    use metaverse_deluge::storage::{BufferPool, EvictionPolicy, PageId};
    use rand::Rng;
    let run = |policy| {
        let mut pool = BufferPool::new(256, policy);
        let mut rng = seeded_rng(5);
        let (mut hits, mut total) = (0u64, 0u64);
        for _ in 0..30_000 {
            let page = if rng.gen_bool(0.4) {
                PageId::new(Space::Physical, rng.gen_range(0..300))
            } else {
                PageId::new(Space::Virtual, rng.gen_range(0..10_000))
            };
            let (hit, _) = pool.access(page);
            if page.space == Space::Physical {
                total += 1;
                hits += hit as u64;
            }
        }
        hits as f64 / total as f64
    };
    let lru = run(EvictionPolicy::Lru);
    let aware = run(EvictionPolicy::SpaceAware);
    assert!(aware > lru, "space-aware {aware} must beat lru {lru} on physical hits");
}

#[test]
fn e10_grid_sustains_updates_the_rtree_cannot() {
    use metaverse_deluge::common::geom::Point;
    use metaverse_deluge::common::id::EntityId;
    use metaverse_deluge::common::seeded_rng;
    use metaverse_deluge::spatial::{GridIndex, RTree, SpatialIndex};
    use rand::Rng;
    let mut rng = seeded_rng(3);
    let pts: Vec<Point> = (0..3_000)
        .map(|_| Point::new(rng.gen_range(0.0..1e4), rng.gen_range(0.0..1e4)))
        .collect();
    let time_updates = |idx: &mut dyn SpatialIndex| {
        for (i, p) in pts.iter().enumerate() {
            idx.insert(EntityId::new(i as u64), *p);
        }
        let t = std::time::Instant::now();
        for round in 0..5 {
            for i in 0..pts.len() {
                let p = pts[(i + round * 7) % pts.len()];
                idx.update(EntityId::new(i as u64), p);
            }
        }
        t.elapsed()
    };
    let mut grid = GridIndex::new(100.0);
    let mut rtree = RTree::new();
    let g = time_updates(&mut grid);
    let r = time_updates(&mut rtree);
    assert!(g < r, "grid {g:?} must beat r-tree {r:?} on updates");
}

#[test]
fn e12_shapley_ranks_free_riders_last() {
    use metaverse_deluge::collab::federated::{FedParams, FederatedSim};
    use metaverse_deluge::collab::incentive::shapley_scores;
    let sim = FederatedSim::generate(&FedParams { honest: 8, free_riders: 2, ..Default::default() });
    let scores = shapley_scores(&sim, 25, 3);
    let mut ranked: Vec<usize> = (0..scores.len()).collect();
    ranked.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    // The two lowest-ranked parties should be mostly riders.
    let riders_in_bottom2 =
        ranked[..2].iter().filter(|&&i| sim.parties[i].free_rider).count();
    assert!(riders_in_bottom2 >= 1, "bottom-2 contains {riders_in_bottom2} riders");
}

#[test]
fn e13_shared_representation_dedupes() {
    use metaverse_deluge::assets::{AssetCatalog, ReprStrategy};
    let mut ind = AssetCatalog::new(ReprStrategy::Independent);
    let mut sh = AssetCatalog::new(ReprStrategy::Shared);
    for i in 0..500 {
        ind.ingest(i % 10);
        sh.ingest(i % 10);
    }
    assert!(sh.physical_bytes() * 5 < ind.physical_bytes());
}

#[test]
fn e15_indexed_matcher_is_equivalent_and_prunes() {
    use metaverse_deluge::common::id::ClientId;
    use metaverse_deluge::common::time::SimTime;
    use metaverse_deluge::pubsub::{IndexedMatcher, LinearMatcher, Matcher, Publication, Subscription};
    let mut lin = LinearMatcher::new();
    let mut idx = IndexedMatcher::new();
    for i in 0..3_000u64 {
        let s = Subscription::new(ClientId::new(i))
            .with_term(["sale", "game", "vr", "nft"][i as usize % 4]);
        lin.add(s.clone());
        idx.add(s);
    }
    let p = Publication::new(SimTime::ZERO).term("sale");
    assert_eq!(lin.match_pub(&p), idx.match_pub(&p));
    assert!(
        (idx.evaluations.get() as usize) < 1_000,
        "indexed matcher evaluated {} of 3000",
        idx.evaluations.get()
    );
}

#[test]
fn experiment_registry_smoke() {
    // Cheap experiments produce well-formed tables through the registry.
    for id in ["e4", "e12b"] {
        let tables = mv_bench::run(id);
        assert!(!tables.is_empty());
        for t in tables {
            assert!(!t.render().is_empty());
        }
    }
}
