//! Differential serializability proof of the cross-shard transaction
//! layer.
//!
//! The claim under test: every execution of concurrent interleaved
//! transactions over `DurableMetaverse` — with injected conflicts,
//! explicit aborts, and crashes at every 2PC boundary — is equivalent
//! to *some* serial execution of the committed subset. The witness
//! order is commit-timestamp order: the harness replays the committed
//! transactions one at a time against a sequential oracle (a plain
//! `BTreeMap`), asserting that
//!
//! * every value each transaction *observed* equals the oracle value at
//!   its position in the serial order (reads are serializable),
//! * the final oracle state equals the engine's attribute state *and* a
//!   fresh transactional snapshot (writes are serializable),
//! * commit timestamps are unique and strictly ordered (the order is a
//!   total one).
//!
//! On top of that:
//!
//! * shard counts {1, 2, 4, 8} produce identical committed outcomes and
//!   byte-identical engine state for the same schedule (sharding is
//!   invisible);
//! * a crash-point sweep visits every prepare/decision boundary of a
//!   cross-shard commit and asserts all-or-nothing recovery,
//!   byte-identical to a twin world where the transaction either never
//!   ran or committed normally — no transaction is ever half-applied;
//! * the same seed replays to byte-identical engine bytes and MVCC
//!   chain digests, crashes included.

use mv_common::geom::Point;
use mv_common::id::EntityId;
use mv_common::time::SimTime;
use mv_core::entity::EntityKind;
use mv_core::{DurableMetaverse, DurableOp, TxnCrashPoint};
use mv_storage::wal::WalRecord;
use mv_storage::GroupCommitPolicy;
use proptest::prelude::*;
use std::collections::BTreeMap;

const INIT_GOLD: f64 = 128.0;

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

/// What one generated transaction does: a list of `(from, to, amount)`
/// transfers over the entity pool, then a resolution.
#[derive(Debug, Clone)]
struct TxnSpec {
    transfers: Vec<(usize, usize, f64)>,
    resolution: Resolution,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Resolution {
    Commit,
    AbortExplicit,
    /// Attempt commit but pull the plug at the given 2PC boundary, then
    /// recover. (If the boundary is never reached — e.g. a crash "after
    /// prepare 3" of a 2-shard transaction — the commit completes.)
    Crash(TxnCrashPoint),
}

/// A schedule: groups of transactions that run interleaved (all begin,
/// then all read, then all buffer writes, then resolve in order) — the
/// begin-before-commit overlap is what manufactures conflicts.
#[derive(Debug, Clone)]
struct Schedule {
    entities: usize,
    groups: Vec<Vec<TxnSpec>>,
}

/// What one transaction was observed to do, for the serial replay.
#[derive(Debug, Clone)]
struct Observed {
    commit_ts: u64,
    /// entity → gold value seen at the snapshot (unique first reads).
    reads: Vec<(usize, Option<f64>)>,
    /// entity → final gold value written.
    writes: Vec<(usize, f64)>,
}

fn decode_spec(
    entities: usize,
    raw_groups: &[Vec<(u8, u8, u8, u8)>],
    allow_crash: bool,
) -> Schedule {
    let crash_points = TxnCrashPoint::sweep(4);
    let groups = raw_groups
        .iter()
        .map(|g| {
            g.iter()
                .map(|&(from, to, amt, kind)| {
                    let resolution = match kind % 8 {
                        6 => Resolution::AbortExplicit,
                        7 if allow_crash => {
                            Resolution::Crash(crash_points[amt as usize % crash_points.len()])
                        }
                        _ => Resolution::Commit,
                    };
                    TxnSpec {
                        transfers: vec![
                            (from as usize % entities, to as usize % entities, 1.0 + f64::from(amt % 8)),
                            // a second hop widens the footprint across shards
                            (to as usize % entities, (from as usize + 1) % entities, 1.0),
                        ],
                        resolution,
                    }
                })
                .collect()
        })
        .collect();
    Schedule { entities, groups }
}

/// Build a world whose WAL only seals on explicit sync, so decision
/// durability is exactly what the 2PC flow says it is.
fn world(shards: usize, entities: usize) -> (DurableMetaverse, Vec<EntityId>) {
    let mut dm = DurableMetaverse::new(
        shards,
        shards,
        mv_storage::KvConfig::default(),
        GroupCommitPolicy::by_records(10_000),
    );
    let ids: Vec<EntityId> = (0..entities)
        .map(|i| dm.spawn(format!("e{i}"), EntityKind::Avatar, Point::new(i as f64, 0.0), t(1)))
        .collect();
    dm.commit(t(1));
    (dm, ids)
}

/// Was a commit decision for `txn_id` durable? (The authoritative
/// post-recovery outcome of a crashed commit.)
fn decision_durable(dm: &DurableMetaverse, txn_id: u64) -> Option<u64> {
    dm.wal.durable().iter().find_map(|rec| {
        let WalRecord::Put { value, .. } = rec else { return None };
        match DurableOp::decode(value) {
            Some(DurableOp::TxnDecision { txn, commit: true, commit_ts, .. }) if txn == txn_id => {
                Some(commit_ts)
            }
            _ => None,
        }
    })
}

/// Run `schedule` and return the world plus the committed transactions'
/// observations (init seeding included), in execution order.
fn run_schedule(shards: usize, schedule: &Schedule) -> (DurableMetaverse, Vec<Observed>) {
    let (mut dm, ids) = world(shards, schedule.entities);
    let mut committed: Vec<Observed> = Vec::new();

    // Seed every entity's gold transactionally so all keys are
    // versioned from the start (no live-engine fallback in play).
    let mut init = dm.txn(t(2));
    for &id in &ids {
        init.write_attr(id, "gold", INIT_GOLD, t(2));
    }
    let init_writes = (0..ids.len()).map(|i| (i, INIT_GOLD)).collect();
    let ts = dm.commit_txn(init, t(2)).expect("empty world: init cannot conflict");
    committed.push(Observed { commit_ts: ts, reads: Vec::new(), writes: init_writes });

    for (gi, group) in schedule.groups.iter().enumerate() {
        let now = t(10 + gi as u64);
        // Begin all, read all, buffer all — the transactions overlap.
        let mut open = Vec::new();
        for spec in group {
            let mut txn = dm.txn(now);
            let mut touched: Vec<usize> = spec
                .transfers
                .iter()
                .flat_map(|&(f, to, _)| [f, to])
                .collect();
            touched.sort_unstable();
            touched.dedup();
            let reads: Vec<(usize, Option<f64>)> = touched
                .iter()
                .map(|&e| (e, dm.txn_read_attr(&mut txn, ids[e], "gold")))
                .collect();
            // Compute final values locally (read-your-writes semantics),
            // then buffer one write per touched entity.
            let mut local: BTreeMap<usize, f64> =
                reads.iter().map(|&(e, v)| (e, v.unwrap_or(0.0))).collect();
            for &(from, to, amt) in &spec.transfers {
                *local.entry(from).or_insert(0.0) -= amt;
                *local.entry(to).or_insert(0.0) += amt;
            }
            let writes: Vec<(usize, f64)> = local.into_iter().collect();
            for &(e, v) in &writes {
                txn.write_attr(ids[e], "gold", v, now);
            }
            open.push((txn, spec.resolution, reads, writes));
        }
        // Resolve in order; first committer wins, the rest conflict out.
        for (txn, resolution, reads, writes) in open {
            match resolution {
                Resolution::Commit => {
                    if let Ok(ts) = dm.commit_txn(txn, now) {
                        committed.push(Observed { commit_ts: ts, reads, writes });
                    }
                }
                Resolution::AbortExplicit => dm.abort_txn(txn, now),
                Resolution::Crash(point) => {
                    let txn_id = txn.id();
                    match dm.commit_txn_crashing(txn, now, Some(point)) {
                        // Validation lost before the crash point: a
                        // plain conflict abort.
                        Err(_) => {}
                        // The boundary was never reached; the commit
                        // completed normally.
                        Ok(Some(ts)) => {
                            committed.push(Observed { commit_ts: ts, reads, writes })
                        }
                        // The plug was pulled: recover, then let the log
                        // say whether the decision became durable.
                        Ok(None) => {
                            dm.crash_and_recover();
                            assert_eq!(dm.txn_lock_count(), 0, "recovery must leave no locks");
                            if let Some(ts) = decision_durable(&dm, txn_id) {
                                committed.push(Observed { commit_ts: ts, reads, writes });
                            }
                        }
                    }
                }
            }
        }
    }
    dm.commit(t(1000));
    (dm, committed)
}

/// The serializability check: replay `committed` in commit-timestamp
/// order against a sequential oracle and compare reads, final engine
/// state, and a fresh snapshot.
fn assert_serializable(
    dm: &mut DurableMetaverse,
    ids: &[EntityId],
    committed: &[Observed],
) -> Result<(), TestCaseError> {
    let mut serial: Vec<&Observed> = committed.iter().collect();
    serial.sort_by_key(|o| o.commit_ts);
    for pair in serial.windows(2) {
        prop_assert!(
            pair[0].commit_ts < pair[1].commit_ts,
            "commit timestamps must be unique and totally ordered"
        );
    }
    let mut model: BTreeMap<usize, f64> = BTreeMap::new();
    for obs in &serial {
        for &(e, seen) in &obs.reads {
            prop_assert_eq!(
                seen,
                model.get(&e).copied(),
                "txn at ts {} observed entity {} = {:?}, serial oracle says {:?}",
                obs.commit_ts,
                e,
                seen,
                model.get(&e).copied()
            );
        }
        for &(e, v) in &obs.writes {
            model.insert(e, v);
        }
    }
    // Total gold is conserved by construction (transfers), so the model
    // itself is self-checking.
    let total: f64 = model.values().sum();
    prop_assert!(
        (total - INIT_GOLD * ids.len() as f64).abs() < 1e-6,
        "transfers must conserve total gold, got {total}"
    );
    // Engine state and a fresh transactional snapshot agree with the
    // serial oracle.
    let mut check = dm.txn(t(2000));
    for (e, &id) in ids.iter().enumerate() {
        let engine_val = dm.engine().entity(id).ok().and_then(|en| en.attrs.get("gold").copied());
        let snapshot_val = dm.txn_read_attr(&mut check, id, "gold");
        prop_assert_eq!(engine_val, model.get(&e).copied(), "engine vs oracle, entity {}", e);
        prop_assert_eq!(snapshot_val, model.get(&e).copied(), "snapshot vs oracle, entity {}", e);
    }
    Ok(())
}

fn ids_of(n: usize, dm: &DurableMetaverse) -> Vec<EntityId> {
    dm.ids().get(..n).map(<[EntityId]>::to_vec).unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Conflict-heavy interleaved schedules, no crashes: outcomes are
    /// serializable and *identical across shard counts*, byte for byte.
    #[test]
    fn interleaved_txns_are_serializable_across_shard_counts(
        raw in proptest::collection::vec(
            proptest::collection::vec((0u8..255, 0u8..255, 0u8..255, 0u8..7), 1..5),
            1..8,
        ),
        entities in 4usize..10,
    ) {
        let schedule = decode_spec(entities, &raw, false);
        // (engine bytes, per-txn (commit_ts, write count)) at 1 shard.
        type Baseline = (Vec<u8>, Vec<(u64, usize)>);
        let mut baseline: Option<Baseline> = None;
        for shards in [1usize, 2, 4, 8] {
            let (mut dm, committed) = run_schedule(shards, &schedule);
            let ids = ids_of(entities, &dm);
            assert_serializable(&mut dm, &ids, &committed)?;
            let outcome: Vec<(u64, usize)> =
                committed.iter().map(|o| (o.commit_ts, o.writes.len())).collect();
            let bytes = dm.state_encoding();
            match &baseline {
                None => baseline = Some((bytes, outcome)),
                Some((b_bytes, b_outcome)) => {
                    prop_assert_eq!(&outcome, b_outcome, "commit outcomes differ at shards={}", shards);
                    prop_assert_eq!(&bytes, b_bytes, "engine bytes differ at shards={}", shards);
                }
            }
        }
    }

    /// Crash-enabled schedules on 4 shards: still serializable, still
    /// deterministic — the same seed replays to byte-identical engine
    /// bytes and MVCC chain digests, mid-2PC crashes included.
    #[test]
    fn crashing_txns_stay_serializable_and_replay_byte_identically(
        raw in proptest::collection::vec(
            proptest::collection::vec((0u8..255, 0u8..255, 0u8..255, 0u8..8), 1..5),
            1..8,
        ),
        entities in 4usize..10,
    ) {
        let schedule = decode_spec(entities, &raw, true);
        let (mut dm, committed) = run_schedule(4, &schedule);
        let ids = ids_of(entities, &dm);
        assert_serializable(&mut dm, &ids, &committed)?;
        prop_assert_eq!(dm.txn_lock_count(), 0);

        let (dm2, committed2) = run_schedule(4, &schedule);
        prop_assert_eq!(committed.len(), committed2.len(), "same schedule, same commits");
        prop_assert_eq!(
            dm.state_encoding(),
            dm2.state_encoding(),
            "same-seed replay must be byte-identical"
        );
        prop_assert_eq!(dm.txn_digest(), dm2.txn_digest(), "version chains must match too");
    }
}

/// The exhaustive crash-point sweep: one cross-shard transaction, a
/// crash at *every* prepare/decision boundary, and a twin world proving
/// all-or-nothing — the recovered state is byte-identical to either
/// "the transaction never happened" or "it committed normally". Nothing
/// in between exists.
#[test]
fn crash_sweep_never_half_applies_a_transaction() {
    const ENTITIES: usize = 12;
    const SHARDS: usize = 4;

    // Twin A: the transaction never runs.
    let build_base = || {
        let (mut dm, ids) = world(SHARDS, ENTITIES);
        let mut init = dm.txn(t(2));
        for &id in &ids {
            init.write_attr(id, "gold", INIT_GOLD, t(2));
        }
        dm.commit_txn(init, t(2)).expect("init");
        dm.commit(t(2));
        (dm, ids)
    };
    let run_txn = |dm: &mut DurableMetaverse, ids: &[EntityId], crash: Option<TxnCrashPoint>| {
        let mut txn = dm.txn(t(3));
        // Touch every entity so the txn spans all four shards.
        for (i, &id) in ids.iter().enumerate() {
            let v = dm.txn_read_attr(&mut txn, id, "gold").expect("seeded");
            txn.write_attr(id, "gold", if i % 2 == 0 { v - 7.0 } else { v + 7.0 }, t(3));
        }
        dm.commit_txn_crashing(txn, t(3), crash).expect("no contention")
    };

    let (base_dm, _) = build_base();
    let never_ran = base_dm.state_encoding();

    // Twin B: the transaction commits normally.
    let (mut committed_dm, ids) = build_base();
    assert!(run_txn(&mut committed_dm, &ids, None).is_some());
    let committed_bytes = committed_dm.state_encoding();
    let committed_chains = committed_dm.txn_digest();
    assert_ne!(never_ran, committed_bytes, "the txn is observable");

    let mut outcomes = Vec::new();
    for point in TxnCrashPoint::sweep(SHARDS) {
        let (mut dm, ids) = build_base();
        let r = run_txn(&mut dm, &ids, Some(point));
        assert_eq!(r, None, "{point:?}: the crash must fire");
        dm.crash_and_recover();
        assert_eq!(dm.txn_lock_count(), 0, "{point:?}: no leaked locks");

        let bytes = dm.state_encoding();
        let aborted = bytes == never_ran;
        let committed = bytes == committed_bytes;
        assert!(
            aborted ^ committed,
            "{point:?}: recovered state is neither twin — the txn was half-applied"
        );
        if committed {
            assert_eq!(dm.txn_digest(), committed_chains, "{point:?}: chains match the twin");
        }
        // The decision sync is the commit point: before it, recovery
        // aborts; at/after it, recovery commits.
        let expect_committed = point == TxnCrashPoint::AfterDecisionSync;
        assert_eq!(
            committed, expect_committed,
            "{point:?}: wrong side of the commit point"
        );
        // In-doubt resolution shows in the stats exactly when the
        // prepares survived to the log (a pre-sync crash loses the whole
        // volatile tail, so recovery never even sees the transaction).
        let prepares_durable = matches!(
            point,
            TxnCrashPoint::AfterPrepareSync | TxnCrashPoint::AfterDecisionAppend
        );
        assert_eq!(
            dm.txn_stats().get("indoubt_aborted"),
            u64::from(prepares_durable && aborted),
            "{point:?}: in-doubt accounting"
        );
        // The world stays writable after recovery.
        let mut after = dm.txn(t(5));
        let v = dm.txn_read_attr(&mut after, ids[0], "gold").expect("still readable");
        after.write_attr(ids[0], "gold", v + 1.0, t(5));
        dm.commit_txn(after, t(5)).expect("post-recovery commits work");
        outcomes.push((point, committed));
    }
    // Sanity: the sweep exercised both sides of the commit point.
    assert!(outcomes.iter().any(|&(_, c)| c) && outcomes.iter().any(|&(_, c)| !c));
}

/// Mid-sequence crashes interleaved with further successful commits:
/// the final history is still serializable and the recovered worlds
/// keep their commit timestamps strictly ordered.
#[test]
fn recovery_then_more_commits_stays_serializable() {
    let raw = vec![
        vec![(0u8, 1, 3, 0), (1, 2, 5, 7)],
        vec![(2, 3, 2, 7), (3, 4, 1, 0)],
        vec![(0, 4, 6, 0), (4, 5, 4, 7), (5, 0, 2, 0)],
    ];
    let schedule = decode_spec(6, &raw, true);
    let (mut dm, committed) = run_schedule(4, &schedule);
    let ids = ids_of(6, &dm);
    assert_serializable(&mut dm, &ids, &committed).expect("serializable");
    // Recovery ran at least once (the spec injects three crash txns) and
    // the world still quiesces clean.
    assert_eq!(dm.txn_lock_count(), 0);
    assert_eq!(dm.wal.pending_len(), 0);
}
