//! Fault-to-alert bound harness: the operational health layer must
//! *notice* every scripted fault the failover harness proves the
//! region survives.
//!
//! Reuses E22's cells (`mv_bench::exp_health`): a 3-replica
//! `ReplicatedMetaverse` under the E20 fault scripts with the standard
//! SLO set armed — availability on submit failures, staleness on the
//! down-replica and commit-lag gauges, latency on the ack tail.
//! Asserted, for every scenario:
//!
//! * **Bounded detection.** The first alert fires within
//!   `DETECT_BOUND_MS` of fault injection — the burn-rate windows are
//!   sized for sustained evidence, not instant triggers, but detection
//!   latency is still bounded and CI-gated.
//! * **Reconvergence clears.** No alert is still active at the end of
//!   the quiet tail; every fire has a matching clear.
//! * **Zero false positives.** The fault-free baseline run fires
//!   nothing and dumps no debug bundle.
//! * **Same-seed determinism.** The canonical alert log and the flight
//!   recorder's bundle bytes hash identically across reruns.

use mv_bench::exp_health::{run_cell, CellResult, Scenario, DETECT_BOUND_MS};

/// Fault injection time in the E20/E22 timeline (ms).
const FAULT_AT_MS: u64 = 2_000;

fn faulted(scenario: Scenario, name: &str) -> CellResult {
    let r = run_cell(scenario, 3, 22);
    let first = r
        .first_fire_ms
        .unwrap_or_else(|| panic!("{name}: no alert fired\n{}", r.alert_log));
    assert!(
        (FAULT_AT_MS..=FAULT_AT_MS + DETECT_BOUND_MS).contains(&first),
        "{name}: first fire at {first} ms, fault at {FAULT_AT_MS}\n{}",
        r.alert_log
    );
    assert_eq!(r.active_at_end, 0, "{name}: alert still active at end\n{}", r.alert_log);
    assert_eq!(r.fired, r.cleared, "{name}: every fire needs a clear\n{}", r.alert_log);
    assert!(r.bundles >= 1, "{name}: alert fired but no debug bundle dumped");
    r
}

#[test]
fn leader_crash_is_detected_within_bound() {
    let r = faulted(Scenario::LeaderCrash, "leader-crash");
    // Losing the leader burns the availability budget: submits fail
    // until the next election.
    assert!(
        r.slos_fired.iter().any(|s| s == "region.availability"),
        "expected region.availability among {:?}",
        r.slos_fired
    );
}

#[test]
fn minority_partition_is_detected_within_bound() {
    let r = faulted(Scenario::MinorityPartition, "minority-partition");
    // A partitioned leader keeps accepting writes it cannot commit:
    // the commit-lag gauge is what catches it.
    assert!(
        r.slos_fired.iter().any(|s| s == "region.commit-lag"),
        "expected region.commit-lag among {:?}",
        r.slos_fired
    );
}

#[test]
fn wipe_crash_is_detected_within_bound() {
    let r = faulted(Scenario::WipeCrash, "wipe-crash");
    assert!(
        r.slos_fired.iter().any(|s| s == "region.replica-down"),
        "expected region.replica-down among {:?}",
        r.slos_fired
    );
}

#[test]
fn fault_free_baseline_fires_nothing() {
    let r = run_cell(Scenario::Baseline, 3, 22);
    assert_eq!(r.fired, 0, "false positive on fault-free baseline:\n{}", r.alert_log);
    assert_eq!(r.bundles, 0, "bundle dumped with no trigger");
}

#[test]
fn alert_logs_and_bundles_are_seed_reproducible() {
    for &seed in &[22u64, 777] {
        let a = run_cell(Scenario::LeaderCrash, 3, seed);
        let b = run_cell(Scenario::LeaderCrash, 3, seed);
        assert_eq!(a.alert_log, b.alert_log, "seed {seed}");
        assert_eq!(a.log_hash, b.log_hash, "seed {seed}");
        assert_eq!(a.bundle_hash, b.bundle_hash, "seed {seed}");
    }
}
