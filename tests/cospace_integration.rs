//! Cross-crate integration: the co-space engine driven by the workload
//! generators, with dissemination-layer invariants checked end to end.

use metaverse_deluge::common::geom::Aabb;
use metaverse_deluge::common::time::{SimDuration, SimTime};
use metaverse_deluge::common::Space;
use metaverse_deluge::core::{EntityKind, EventKind, Metaverse, SyncPolicy};
use metaverse_deluge::workloads::military::{ExerciseOp, ExerciseParams, MilitaryExercise};

fn run_exercise(bound: f64) -> (Metaverse, usize, usize) {
    let params = ExerciseParams {
        physical_troops: 100,
        virtual_units: 300,
        duration: SimDuration::from_secs(30),
        ..Default::default()
    };
    let exercise = MilitaryExercise::generate(&params);
    let mut world = Metaverse::new(SyncPolicy { position_bound: bound, attr_bound: 0.0 }, 500.0);
    let mut troops = Vec::new();
    for i in 0..params.physical_troops {
        troops.push(world.spawn(
            format!("troop-{i}"),
            EntityKind::Person,
            exercise.physical_bounds.center(),
            SimTime::ZERO,
        ));
    }
    let mut units = Vec::new();
    for i in 0..params.virtual_units {
        units.push(world.spawn(
            format!("unit-{i}"),
            EntityKind::Avatar,
            exercise.theatre_bounds.center(),
            SimTime::ZERO,
        ));
    }
    let mut strikes = 0;
    let mut casualties = 0;
    for (ts, op) in &exercise.timeline {
        match op {
            ExerciseOp::PhysicalReport(i, p) => {
                if !world.entity(troops[*i]).unwrap().retired {
                    world.update_position(troops[*i], *p, *ts).unwrap();
                }
            }
            ExerciseOp::VirtualMove(i, p) => {
                if !world.entity(units[*i]).unwrap().retired {
                    world.update_position(units[*i], *p, *ts).unwrap();
                }
            }
            ExerciseOp::Strike(target) => {
                strikes += 1;
                casualties += world
                    .area_effect(
                        Space::Virtual,
                        "air_raid",
                        Aabb::centered(*target, exercise.blast_radius),
                        "perish",
                        true,
                        *ts,
                    )
                    .len();
            }
        }
    }
    (world, strikes, casualties)
}

#[test]
fn military_exercise_end_to_end() {
    let (world, strikes, casualties) = run_exercise(25.0);
    assert!(strikes >= 1, "a 30 s exercise should include a strike");
    // Conservation: live + retired == spawned.
    let live = world.query_truth(Space::Physical, &Aabb::everything()).len()
        + world.query_truth(Space::Virtual, &Aabb::everything()).len();
    assert_eq!(live + casualties, 400);
    // Divergence invariant holds for every live entity.
    assert!(world.max_divergence() <= 25.0 + 1e-9);
}

#[test]
fn coherency_bound_trades_messages_for_divergence() {
    let (tight, _, _) = run_exercise(1.0);
    let (loose, _, _) = run_exercise(100.0);
    assert!(
        loose.stats.get("sync_msgs") < tight.stats.get("sync_msgs"),
        "loose bound must send fewer sync messages ({} vs {})",
        loose.stats.get("sync_msgs"),
        tight.stats.get("sync_msgs"),
    );
    assert!(
        loose.mean_divergence() >= tight.mean_divergence(),
        "loose bound must tolerate at least as much divergence"
    );
}

#[test]
fn event_log_records_cross_space_traffic() {
    let (mut world, strikes, casualties) = run_exercise(25.0);
    let events = world.drain_events();
    let area_effects =
        events.iter().filter(|e| matches!(e.kind, EventKind::AreaEffect { .. })).count();
    let retirements =
        events.iter().filter(|e| matches!(e.kind, EventKind::Retired)).count();
    let syncs = events.iter().filter(|e| matches!(e.kind, EventKind::TwinSynced)).count();
    assert_eq!(area_effects, strikes);
    assert_eq!(retirements, casualties);
    assert_eq!(syncs as u64, world.stats.get("sync_msgs"));
    // Events are in timestamp order.
    assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts));
}
