//! The flash-sale pipeline across four crates: workload → serverless
//! pool → space-aware allocation → verifiable ledger.

use metaverse_deluge::cloud::{ServerlessPool, WorkloadSpec};
use metaverse_deluge::common::id::ClientId;
use metaverse_deluge::common::time::SimDuration;
use metaverse_deluge::common::Space;
use metaverse_deluge::ledger::VerifiableKv;
use metaverse_deluge::query::{AllocPolicy, ContendedAllocator, PurchaseRequest};
use metaverse_deluge::workloads::marketplace::{FlashSale, MarketParams};

fn sale() -> FlashSale {
    FlashSale::generate(&MarketParams::default())
}

#[test]
fn serverless_absorbs_the_burst_cheaper_than_peak() {
    let sale = sale();
    let pool = ServerlessPool {
        cold_start: SimDuration::from_millis(150),
        keep_alive: SimDuration::from_secs(30),
        max_instances: None,
    };
    let spec = WorkloadSpec { requests: sale.requests.iter().map(|r| (r.ts, r.service)).collect() };
    let mut report = pool.run(&spec);
    // Everyone served.
    assert_eq!(
        (report.cold_starts + report.warm_starts) as usize,
        sale.requests.len()
    );
    // Elasticity: the pool scaled well beyond the baseline need…
    assert!(report.peak_instances > 10);
    // …but pay-per-use cost stays far below holding the peak fleet.
    assert!(report.cost_ratio() < 0.5, "cost ratio {}", report.cost_ratio());
    // Cold starts are the price; most requests are warm.
    assert!(report.cold_fraction() < 0.3, "cold fraction {}", report.cold_fraction());
    assert!(report.latency_ms.p50() < 200.0);
}

#[test]
fn capped_pool_queues_where_serverless_scales() {
    let sale = sale();
    let spec = WorkloadSpec { requests: sale.requests.iter().map(|r| (r.ts, r.service)).collect() };
    let elastic = ServerlessPool {
        cold_start: SimDuration::from_millis(150),
        keep_alive: SimDuration::from_secs(30),
        max_instances: None,
    };
    let capped = ServerlessPool {
        cold_start: SimDuration::from_millis(150),
        keep_alive: SimDuration::from_secs(3600),
        max_instances: Some(4),
    };
    let mut e = elastic.run(&spec);
    let mut c = capped.run(&spec);
    assert!(
        c.latency_ms.p99() > 5.0 * e.latency_ms.p99(),
        "capped p99 {} must blow up vs elastic {}",
        c.latency_ms.p99(),
        e.latency_ms.p99()
    );
}

#[test]
fn physical_shoppers_win_contested_items_and_sales_are_auditable() {
    let sale = sale();
    let mut alloc = ContendedAllocator::new(AllocPolicy::PhysicalFirst {
        window: SimDuration::from_millis(20),
    });
    let mut ledger = VerifiableKv::new(b"it-key");
    // Single unit of the hottest product; collect its first contested batch.
    alloc.stock(0, 1);
    let contenders: Vec<PurchaseRequest> = sale
        .requests
        .iter()
        .enumerate()
        .filter(|(_, r)| r.product == 0)
        .take(8)
        .map(|(i, r)| PurchaseRequest {
            client: ClientId::new(i as u64),
            space: r.space,
            item: 0,
            ts: r.ts,
        })
        .collect();
    assert!(contenders.len() >= 2, "hot product must be contested");
    let outcomes = alloc.resolve(&contenders);
    let winners: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o, metaverse_deluge::query::space_aware::PurchaseOutcome::Won))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(winners.len(), 1, "one unit, one winner");
    // If any physical shopper raced in the winner's window, a physical
    // shopper must hold the item.
    if contenders.iter().any(|c| c.space == Space::Physical) {
        let any_phys_won = winners.iter().any(|&i| contenders[i].space == Space::Physical);
        let first_window = contenders[winners[0]].ts;
        let phys_in_window = contenders.iter().any(|c| {
            c.space == Space::Physical
                && c.ts.as_micros() / 20_000 == first_window.as_micros() / 20_000
        });
        if phys_in_window {
            assert!(any_phys_won, "physical shopper in-window must win");
        }
    }
    // Commit and audit the sale.
    let idx = ledger.put("sale/contested-0", b"sold");
    assert_eq!(idx, 0);
    assert_eq!(ledger.get_verified("sale/contested-0").unwrap(), b"sold");
    ledger.tamper_store("sale/contested-0", b"refunded-quietly");
    assert!(ledger.get_verified("sale/contested-0").is_err());
}
