//! End-to-end fault recovery: the co-space sync loop driven through a
//! scripted partition and a client crash.
//!
//! A server updates eight objects round-robin (one update per 10 ms
//! tick) and pushes each over `mv-dissem`'s reliable push path to a
//! client replica across a 5%-lossy link. A `FaultPlan` injects:
//!
//! * a bidirectional partition over `[1 s, 2 s)` — the transport's
//!   retries must carry every buffered-in-flight update across the heal
//!   without the application noticing more than a divergence bump;
//! * a client crash over `[3 s, 3.5 s)` with full state loss (replica
//!   cleared, transport endpoint state dropped) — recovery is a full
//!   re-push of the server's truth after restart.
//!
//! Asserted: (a) replica divergence stays within the update-rate bound
//! during the partition, (b) the replica reconverges to *exact* equality
//! with the server's truth after the faults heal, and (c) two runs with
//! the same seed produce byte-identical event logs and fault counters.

use mv_common::id::{ClientId, NodeId, ObjectId};
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use mv_dissem::sched::Priority;
use mv_dissem::{PushServer, Replica};
use mv_net::{FaultPlan, FaultTarget, LinkSpec, Network, RetryPolicy, Sim};
use std::collections::BTreeMap;

const SERVER: NodeId = NodeId::new(0);
const CLIENT_NODE: NodeId = NodeId::new(1);
const CLIENT: ClientId = ClientId::new(1);
const OBJECTS: u64 = 8;
/// One object update per tick, round-robin.
const TICK_MS: u64 = 10;
/// Updates stop here; the tail of the run is pure convergence time.
const LAST_UPDATE_MS: u64 = 4_500;
const END_MS: u64 = 6_000;

struct World {
    net: Network,
    rng: rand::rngs::StdRng,
    ps: PushServer,
    replica: Replica,
    /// Server-side ground truth: object → value.
    truth: BTreeMap<u64, f64>,
    tick: u64,
    /// True right after a client restart: the next pump performs the
    /// full state re-push + reconnect.
    resync_due: bool,
    /// The deterministic event log compared across runs.
    log: Vec<String>,
    /// (ms, max |truth − replica|) divergence samples.
    samples: Vec<(u64, f64)>,
}

impl FaultTarget for World {
    fn fault_network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn on_node_crash(&mut self, node: NodeId) {
        // State loss: the transport forgets the endpoint, the outbox
        // starts buffering, and the replica is wiped.
        self.ps.on_node_crash(node);
        self.replica.clear();
        self.log.push(format!("crash node={}", node.raw()));
    }

    fn on_node_restart(&mut self, node: NodeId) {
        self.resync_due = true;
        self.log.push(format!("restart node={}", node.raw()));
    }
}

impl World {
    fn new(seed: u64) -> Self {
        let mut net = Network::new();
        net.add_node(SERVER, "server");
        net.add_node(CLIENT_NODE, "client");
        net.add_link_bidi(
            SERVER,
            CLIENT_NODE,
            LinkSpec::new(SimDuration::from_millis(5), 1e8).with_loss(0.05),
        );
        net.set_group(CLIENT_NODE, 1).unwrap();
        let mut ps = PushServer::new(SERVER, RetryPolicy::default(), seed, 64);
        ps.register(CLIENT, CLIENT_NODE);
        World {
            net,
            rng: seeded_rng(seed),
            ps,
            replica: Replica::new(),
            truth: BTreeMap::new(),
            tick: 0,
            resync_due: false,
            log: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Advance the co-space: one object takes a new value; push it.
    fn update(&mut self, now: SimTime) {
        let obj = self.tick % OBJECTS;
        let value = self.tick as f64;
        self.tick += 1;
        self.truth.insert(obj, value);
        self.ps.push(
            &mut self.net,
            &mut self.rng,
            CLIENT,
            ObjectId::new(obj),
            value,
            Priority::Normal,
            now,
        );
    }

    /// Pump transport arrivals into the replica; handle pending resync.
    fn pump(&mut self, now: SimTime) {
        if self.resync_due {
            self.resync_due = false;
            // Full state transfer: re-push every object's current value
            // (buffered — the outbox is disconnected), then reconnect to
            // replay the backlog most-critical-first.
            let truth: Vec<(u64, f64)> = self.truth.iter().map(|(&o, &v)| (o, v)).collect();
            for (obj, value) in truth {
                self.ps.push(
                    &mut self.net,
                    &mut self.rng,
                    CLIENT,
                    ObjectId::new(obj),
                    value,
                    Priority::Normal,
                    now,
                );
            }
            let n = self.ps.reconnect(&mut self.net, &mut self.rng, CLIENT, now);
            self.log.push(format!("resync at={}ms replayed={n}", now.as_millis_f64() as u64));
        }
        for (_client, msg) in self.ps.poll(&mut self.net, &mut self.rng, now) {
            if self.replica.apply(&msg) {
                self.log.push(format!(
                    "apply at={}ms obj={} val={} seq={}",
                    now.as_millis_f64() as u64,
                    msg.object.raw(),
                    msg.value,
                    msg.seq
                ));
            }
        }
    }

    /// Max |truth − replica| over all objects; a missing replica entry
    /// counts as the full truth value (divergence from an implicit 0).
    fn divergence(&self) -> f64 {
        self.truth
            .iter()
            .map(|(&o, &v)| match self.replica.get(ObjectId::new(o)) {
                Some(r) => (v - r).abs(),
                None => v.abs(),
            })
            .fold(0.0, f64::max)
    }

    fn sample(&mut self, now: SimTime) {
        let d = self.divergence();
        self.samples.push((now.as_millis_f64() as u64, d));
        self.log.push(format!("sample at={}ms div={d}", now.as_millis_f64() as u64));
    }
}

/// Everything a determinism check needs out of one run.
#[derive(Debug, PartialEq)]
struct RunResult {
    log: Vec<String>,
    samples: Vec<(u64, f64)>,
    faults: String,
    transport_stats: String,
    replica_stats: String,
    converged: bool,
}

/// One full scripted run.
fn run(seed: u64) -> RunResult {
    let mut sim = Sim::new(World::new(seed));
    let sched = sim.scheduler();

    FaultPlan::new()
        .partition_between(0, 1, SimTime::from_secs(1), SimTime::from_secs(2))
        .crash_window(CLIENT_NODE, SimTime::from_millis(3_000), SimTime::from_millis(3_500))
        .install(sched);

    for ms in (0..=LAST_UPDATE_MS).step_by(TICK_MS as usize) {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.update(s.now()));
    }
    // The pump runs every millisecond: transport timers and arrivals are
    // all processed at a fixed, deterministic cadence.
    for ms in 0..=END_MS {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.pump(s.now()));
    }
    for ms in (50..=END_MS).step_by(50) {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.sample(s.now()));
    }

    sim.run_to_completion();
    let w = &sim.world;

    let faults: String = format!(
        "severed={} healed={} crash={} restart={}",
        w.net.stats.get("faults_severed"),
        w.net.stats.get("faults_healed"),
        w.net.stats.get("faults_node_crash"),
        w.net.stats.get("faults_node_restart"),
    );
    let converged = w.divergence() == 0.0 && w.replica.len() == w.truth.len();
    RunResult {
        log: w.log.clone(),
        samples: w.samples.clone(),
        faults,
        transport_stats: format!("{:?}", w.ps.transport.stats),
        replica_stats: format!("{:?}", w.replica.stats),
        converged,
    }
}

#[test]
fn partition_and_crash_recover_to_exact_state() {
    let RunResult { log, samples, faults, transport_stats, converged, .. } = run(42);

    // (a) Bounded divergence during the partition. Truth advances one
    // tick per 10 ms, so a 1 s partition can open a gap of at most ~100
    // ticks, plus retransmission lag before the cut. The replica had all
    // eight objects by then, so nothing is "missing" in the metric.
    let during_partition: Vec<f64> = samples
        .iter()
        .filter(|&&(ms, _)| (1_000..2_000).contains(&ms))
        .map(|&(_, d)| d)
        .collect();
    let max_partition_div = during_partition.iter().copied().fold(0.0, f64::max);
    assert!(
        max_partition_div <= 160.0,
        "partition divergence must stay within the update-rate bound: {max_partition_div}"
    );
    assert!(
        max_partition_div >= 50.0,
        "a 1 s partition must actually open a divergence gap: {max_partition_div}"
    );

    // After the heal, retransmissions close the gap well before the
    // crash window opens.
    let pre_crash: Vec<f64> = samples
        .iter()
        .filter(|&&(ms, _)| (2_500..3_000).contains(&ms))
        .map(|&(_, d)| d)
        .collect();
    assert!(
        pre_crash.iter().all(|&d| d <= 60.0),
        "post-heal divergence should have collapsed: {pre_crash:?}"
    );

    // (b) Exact reconvergence: once updates stop and the resync drains,
    // the replica equals the truth, value for value.
    assert!(converged, "replica must reconverge exactly after the faults heal");
    let final_div = samples.last().expect("samples").1;
    assert_eq!(final_div, 0.0);

    // The scripted faults all fired and were counted.
    assert_eq!(faults, "severed=1 healed=1 crash=1 restart=1");
    // The crash/restart actually exercised recovery machinery.
    assert!(log.iter().any(|l| l.starts_with("crash ")), "crash hook fired");
    assert!(log.iter().any(|l| l.starts_with("resync ")), "restart triggered a resync");
    assert!(transport_stats.contains("retransmits"), "loss exercised retries: {transport_stats}");
}

// ---- durable engine: crash recovery through the storage layer ----------
//
// The scripted-world tests above exercise *network* faults; the tests
// below exercise *storage* faults through `DurableMetaverse`: every
// engine mutation is logged to a group-commit WAL before application,
// and recovery replays the surviving log into a fresh engine. The claim
// (ISSUE 3 acceptance): the recovered state is byte-identical to the
// pre-crash engine at the last durable horizon, and a crash mid-batch
// loses the whole batch — recovery always lands exactly on a commit
// point, never between two.

mod durable_engine {
    use mv_common::geom::{Aabb, Point};
    use mv_common::id::EntityId;
    use mv_common::time::SimTime;
    use mv_common::Space;
    use mv_core::{DurableMetaverse, EntityKind, WriteOp};
    use mv_storage::kv::KvConfig;
    use mv_storage::GroupCommitPolicy;

    const SHARDS: usize = 4;
    const ENTITIES: usize = 64;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// A durable engine whose WAL seals only on explicit `commit` (the
    /// record/byte triggers are effectively off), so WAL batches and
    /// commit points coincide 1:1 — which is what lets the torn-write
    /// test say "recovery lands on a commit point" precisely.
    fn build() -> DurableMetaverse {
        let mut dm = DurableMetaverse::new(
            SHARDS,
            SHARDS,
            KvConfig { memtable_budget: 4 << 10, ..KvConfig::default() },
            GroupCommitPolicy::by_records(usize::MAX),
        );
        let ids: Vec<EntityId> = (0..ENTITIES)
            .map(|i| {
                dm.spawn(
                    format!("troop{i}"),
                    EntityKind::Person,
                    Point::new(i as f64, (i % 8) as f64),
                    t(1),
                )
            })
            .collect();
        // Batched moves + attribute writes, like a real ingest tick.
        let moves: Vec<WriteOp> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| WriteOp::Position {
                id: *id,
                position: Point::new(i as f64 + 5.0, i as f64),
                ts: t(2),
            })
            .chain(ids.iter().take(16).map(|id| WriteOp::Attr {
                id: *id,
                name: "health".into(),
                value: 0.75,
                ts: t(2),
            }))
            .collect();
        for r in dm.apply_batch(&moves) {
            r.expect("all entities live");
        }
        // An area effect retires a handful through their owner shards.
        dm.area_effect(
            Space::Virtual,
            "air_raid",
            Aabb::new(Point::new(0.0, 0.0), Point::new(9.0, 9.0)),
            "perish",
            true,
            t(3),
        );
        dm
    }

    #[test]
    fn recovery_is_byte_identical_to_the_committed_engine() {
        let mut dm = build();
        dm.commit(t(3));
        let committed = dm.state_encoding();
        let digest = dm.state_digest();
        assert!(dm.engine().live_count() < ENTITIES, "the raid retired entities");

        // An uncommitted tail that must vanish wholesale.
        let ghost = dm.spawn("ghost", EntityKind::Avatar, Point::ORIGIN, t(4));
        dm.update_attr(ghost, "hp", 1.0, t(4)).unwrap();
        assert_ne!(dm.state_encoding(), committed);

        let report = dm.crash_and_recover();
        assert_eq!(report.corruption, None);
        assert!(report.replayed > 0);
        assert_eq!(
            dm.state_encoding(),
            committed,
            "recovered engine must be byte-identical to the pre-crash commit"
        );
        assert_eq!(dm.state_digest(), digest);

        // Crash again: recovery is a fixed point.
        dm.crash_and_recover();
        assert_eq!(dm.state_encoding(), committed);
    }

    #[test]
    fn torn_write_mid_batch_recovers_to_the_previous_commit_point() {
        let mut dm = build();
        dm.commit(t(3));
        let after_first_commit = dm.state_encoding();
        let intact_log = dm.wal.encoded_len();

        // A second committed batch of work…
        let id = dm.ids()[10];
        dm.update_position(id, Point::new(500.0, 500.0), t(5)).unwrap();
        dm.update_attr(id, "health", 0.1, t(5)).unwrap();
        dm.commit(t(5));
        let after_second_commit = dm.state_encoding();
        assert_ne!(after_first_commit, after_second_commit);

        // …whose batch frame is torn mid-write. The whole second batch
        // must vanish — never a prefix of it (e.g. the position update
        // without the attr write would be a state no commit produced).
        dm.wal.inject_torn_write(intact_log + 7);
        let report = dm.crash_and_recover();
        assert!(report.corruption.is_some(), "the tear must be detected");
        assert_eq!(
            dm.state_encoding(),
            after_first_commit,
            "recovery must land exactly on the previous commit point"
        );
        assert_eq!(dm.engine().entity(id).unwrap().attr("health"), 0.75);
    }

    #[test]
    fn bit_flip_in_an_earlier_batch_truncates_to_the_commit_before_it() {
        let mut dm = build();
        dm.commit(t(3));
        let first = dm.state_encoding();
        let first_log = dm.wal.encoded_len();

        dm.update_attr(dm.ids()[20], "morale", 0.9, t(4)).unwrap();
        dm.commit(t(4));
        dm.update_attr(dm.ids()[21], "morale", 0.2, t(5)).unwrap();
        dm.commit(t(5));

        // Corrupt the *second* batch: the third is intact but sits past
        // the damage, so recovery truncates back to commit one.
        assert!(dm.wal.inject_bit_flip(first_log + 13, 2));
        let report = dm.crash_and_recover();
        assert!(report.corruption.is_some());
        assert_eq!(
            dm.state_encoding(),
            first,
            "everything after the first corrupt batch is dropped, not replayed"
        );
    }

    #[test]
    fn same_ops_same_bytes_across_independent_runs() {
        // The recovery guarantee rests on replay determinism: two
        // engines fed the same ops — one via crash replay — are
        // byte-identical, including the KV snapshot store.
        let mut a = build();
        a.commit(t(3));
        let mut b = build();
        b.commit(t(3));
        assert_eq!(a.state_encoding(), b.state_encoding());
        a.crash_and_recover();
        assert_eq!(a.state_encoding(), b.state_encoding());
        for id in b.ids() {
            let key = id.raw().to_le_bytes();
            assert_eq!(a.kv().get(&key), b.kv().get(&key), "KV snapshot for {id:?}");
        }
    }
}

#[test]
fn same_seed_runs_are_byte_identical() {
    // (c) The whole scenario — fault schedule, loss draws, retry jitter,
    // delivery order, divergence trace — is a pure function of the seed.
    let a = run(42);
    let b = run(42);
    assert_eq!(a.log, b.log, "event logs must be identical");
    assert_eq!(a.samples, b.samples, "divergence samples must be identical");
    assert_eq!(a, b, "fault counters and stats must be identical");

    // A different seed draws different loss/jitter but must still
    // converge to the same exact final state.
    let c = run(7);
    assert!(c.converged, "other seeds converge too");
    assert_ne!(a.transport_stats, c.transport_stats, "different seeds take different retry paths");
}
