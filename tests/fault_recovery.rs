//! End-to-end fault recovery: the co-space sync loop driven through a
//! scripted partition and a client crash.
//!
//! A server updates eight objects round-robin (one update per 10 ms
//! tick) and pushes each over `mv-dissem`'s reliable push path to a
//! client replica across a 5%-lossy link. A `FaultPlan` injects:
//!
//! * a bidirectional partition over `[1 s, 2 s)` — the transport's
//!   retries must carry every buffered-in-flight update across the heal
//!   without the application noticing more than a divergence bump;
//! * a client crash over `[3 s, 3.5 s)` with full state loss (replica
//!   cleared, transport endpoint state dropped) — recovery is a full
//!   re-push of the server's truth after restart.
//!
//! Asserted: (a) replica divergence stays within the update-rate bound
//! during the partition, (b) the replica reconverges to *exact* equality
//! with the server's truth after the faults heal, and (c) two runs with
//! the same seed produce byte-identical event logs and fault counters.

use mv_common::id::{ClientId, NodeId, ObjectId};
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use mv_dissem::sched::Priority;
use mv_dissem::{PushServer, Replica};
use mv_net::{FaultPlan, FaultTarget, LinkSpec, Network, RetryPolicy, Sim};
use std::collections::BTreeMap;

const SERVER: NodeId = NodeId::new(0);
const CLIENT_NODE: NodeId = NodeId::new(1);
const CLIENT: ClientId = ClientId::new(1);
const OBJECTS: u64 = 8;
/// One object update per tick, round-robin.
const TICK_MS: u64 = 10;
/// Updates stop here; the tail of the run is pure convergence time.
const LAST_UPDATE_MS: u64 = 4_500;
const END_MS: u64 = 6_000;

struct World {
    net: Network,
    rng: rand::rngs::StdRng,
    ps: PushServer,
    replica: Replica,
    /// Server-side ground truth: object → value.
    truth: BTreeMap<u64, f64>,
    tick: u64,
    /// True right after a client restart: the next pump performs the
    /// full state re-push + reconnect.
    resync_due: bool,
    /// The deterministic event log compared across runs.
    log: Vec<String>,
    /// (ms, max |truth − replica|) divergence samples.
    samples: Vec<(u64, f64)>,
}

impl FaultTarget for World {
    fn fault_network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn on_node_crash(&mut self, node: NodeId) {
        // State loss: the transport forgets the endpoint, the outbox
        // starts buffering, and the replica is wiped.
        self.ps.on_node_crash(node);
        self.replica.clear();
        self.log.push(format!("crash node={}", node.raw()));
    }

    fn on_node_restart(&mut self, node: NodeId) {
        self.resync_due = true;
        self.log.push(format!("restart node={}", node.raw()));
    }
}

impl World {
    fn new(seed: u64) -> Self {
        let mut net = Network::new();
        net.add_node(SERVER, "server");
        net.add_node(CLIENT_NODE, "client");
        net.add_link_bidi(
            SERVER,
            CLIENT_NODE,
            LinkSpec::new(SimDuration::from_millis(5), 1e8).with_loss(0.05),
        );
        net.set_group(CLIENT_NODE, 1).unwrap();
        let mut ps = PushServer::new(SERVER, RetryPolicy::default(), seed, 64);
        ps.register(CLIENT, CLIENT_NODE);
        World {
            net,
            rng: seeded_rng(seed),
            ps,
            replica: Replica::new(),
            truth: BTreeMap::new(),
            tick: 0,
            resync_due: false,
            log: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Advance the co-space: one object takes a new value; push it.
    fn update(&mut self, now: SimTime) {
        let obj = self.tick % OBJECTS;
        let value = self.tick as f64;
        self.tick += 1;
        self.truth.insert(obj, value);
        self.ps.push(
            &mut self.net,
            &mut self.rng,
            CLIENT,
            ObjectId::new(obj),
            value,
            Priority::Normal,
            now,
        );
    }

    /// Pump transport arrivals into the replica; handle pending resync.
    fn pump(&mut self, now: SimTime) {
        if self.resync_due {
            self.resync_due = false;
            // Full state transfer: re-push every object's current value
            // (buffered — the outbox is disconnected), then reconnect to
            // replay the backlog most-critical-first.
            let truth: Vec<(u64, f64)> = self.truth.iter().map(|(&o, &v)| (o, v)).collect();
            for (obj, value) in truth {
                self.ps.push(
                    &mut self.net,
                    &mut self.rng,
                    CLIENT,
                    ObjectId::new(obj),
                    value,
                    Priority::Normal,
                    now,
                );
            }
            let n = self.ps.reconnect(&mut self.net, &mut self.rng, CLIENT, now);
            self.log.push(format!("resync at={}ms replayed={n}", now.as_millis_f64() as u64));
        }
        for (_client, msg) in self.ps.poll(&mut self.net, &mut self.rng, now) {
            if self.replica.apply(&msg) {
                self.log.push(format!(
                    "apply at={}ms obj={} val={} seq={}",
                    now.as_millis_f64() as u64,
                    msg.object.raw(),
                    msg.value,
                    msg.seq
                ));
            }
        }
    }

    /// Max |truth − replica| over all objects; a missing replica entry
    /// counts as the full truth value (divergence from an implicit 0).
    fn divergence(&self) -> f64 {
        self.truth
            .iter()
            .map(|(&o, &v)| match self.replica.get(ObjectId::new(o)) {
                Some(r) => (v - r).abs(),
                None => v.abs(),
            })
            .fold(0.0, f64::max)
    }

    fn sample(&mut self, now: SimTime) {
        let d = self.divergence();
        self.samples.push((now.as_millis_f64() as u64, d));
        self.log.push(format!("sample at={}ms div={d}", now.as_millis_f64() as u64));
    }
}

/// Everything a determinism check needs out of one run.
#[derive(Debug, PartialEq)]
struct RunResult {
    log: Vec<String>,
    samples: Vec<(u64, f64)>,
    faults: String,
    transport_stats: String,
    replica_stats: String,
    converged: bool,
}

/// One full scripted run.
fn run(seed: u64) -> RunResult {
    let mut sim = Sim::new(World::new(seed));
    let sched = sim.scheduler();

    FaultPlan::new()
        .partition_between(0, 1, SimTime::from_secs(1), SimTime::from_secs(2))
        .crash_window(CLIENT_NODE, SimTime::from_millis(3_000), SimTime::from_millis(3_500))
        .install(sched);

    for ms in (0..=LAST_UPDATE_MS).step_by(TICK_MS as usize) {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.update(s.now()));
    }
    // The pump runs every millisecond: transport timers and arrivals are
    // all processed at a fixed, deterministic cadence.
    for ms in 0..=END_MS {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.pump(s.now()));
    }
    for ms in (50..=END_MS).step_by(50) {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.sample(s.now()));
    }

    sim.run_to_completion();
    let w = &sim.world;

    let faults: String = format!(
        "severed={} healed={} crash={} restart={}",
        w.net.stats.get("faults_severed"),
        w.net.stats.get("faults_healed"),
        w.net.stats.get("faults_node_crash"),
        w.net.stats.get("faults_node_restart"),
    );
    let converged = w.divergence() == 0.0 && w.replica.len() == w.truth.len();
    RunResult {
        log: w.log.clone(),
        samples: w.samples.clone(),
        faults,
        transport_stats: format!("{:?}", w.ps.transport.stats),
        replica_stats: format!("{:?}", w.replica.stats),
        converged,
    }
}

#[test]
fn partition_and_crash_recover_to_exact_state() {
    let RunResult { log, samples, faults, transport_stats, converged, .. } = run(42);

    // (a) Bounded divergence during the partition. Truth advances one
    // tick per 10 ms, so a 1 s partition can open a gap of at most ~100
    // ticks, plus retransmission lag before the cut. The replica had all
    // eight objects by then, so nothing is "missing" in the metric.
    let during_partition: Vec<f64> = samples
        .iter()
        .filter(|&&(ms, _)| (1_000..2_000).contains(&ms))
        .map(|&(_, d)| d)
        .collect();
    let max_partition_div = during_partition.iter().copied().fold(0.0, f64::max);
    assert!(
        max_partition_div <= 160.0,
        "partition divergence must stay within the update-rate bound: {max_partition_div}"
    );
    assert!(
        max_partition_div >= 50.0,
        "a 1 s partition must actually open a divergence gap: {max_partition_div}"
    );

    // After the heal, retransmissions close the gap well before the
    // crash window opens.
    let pre_crash: Vec<f64> = samples
        .iter()
        .filter(|&&(ms, _)| (2_500..3_000).contains(&ms))
        .map(|&(_, d)| d)
        .collect();
    assert!(
        pre_crash.iter().all(|&d| d <= 60.0),
        "post-heal divergence should have collapsed: {pre_crash:?}"
    );

    // (b) Exact reconvergence: once updates stop and the resync drains,
    // the replica equals the truth, value for value.
    assert!(converged, "replica must reconverge exactly after the faults heal");
    let final_div = samples.last().expect("samples").1;
    assert_eq!(final_div, 0.0);

    // The scripted faults all fired and were counted.
    assert_eq!(faults, "severed=1 healed=1 crash=1 restart=1");
    // The crash/restart actually exercised recovery machinery.
    assert!(log.iter().any(|l| l.starts_with("crash ")), "crash hook fired");
    assert!(log.iter().any(|l| l.starts_with("resync ")), "restart triggered a resync");
    assert!(transport_stats.contains("retransmits"), "loss exercised retries: {transport_stats}");
}

#[test]
fn same_seed_runs_are_byte_identical() {
    // (c) The whole scenario — fault schedule, loss draws, retry jitter,
    // delivery order, divergence trace — is a pure function of the seed.
    let a = run(42);
    let b = run(42);
    assert_eq!(a.log, b.log, "event logs must be identical");
    assert_eq!(a.samples, b.samples, "divergence samples must be identical");
    assert_eq!(a, b, "fault counters and stats must be identical");

    // A different seed draws different loss/jitter but must still
    // converge to the same exact final state.
    let c = run(7);
    assert!(c.converged, "other seeds converge too");
    assert_ne!(a.transport_stats, c.transport_stats, "different seeds take different retry paths");
}
