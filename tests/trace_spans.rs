//! Span-lifecycle guarantees under injected faults.
//!
//! The observability contract (DESIGN.md §8): every span a stage opens
//! is closed exactly once — by success, by expiry, or by a crash
//! abort — so `Tracer::open_count()` is zero when a simulation ends.
//! The interesting case is a message a `FaultPlan` partition drops on
//! the wire: its `net.transport.send` span must not leak; it stays
//! open across the retransmissions (each a closed `retry` child) and
//! closes `"acked"` after the heal — or `"expired"` when the retry
//! budget runs out first.

use mv_common::id::NodeId;
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use mv_net::{FaultPlan, FaultTarget, LinkSpec, Network, ReliableTransport, RetryPolicy, Sim};
use mv_obs::{SharedTracer, TraceCtx};

const A: NodeId = NodeId::new(0);
const B: NodeId = NodeId::new(1);

struct World {
    net: Network,
    rng: rand::rngs::StdRng,
    transport: ReliableTransport<u64>,
    tracer: SharedTracer,
    /// (trace ctx, root span) of every send, so roots can be closed
    /// when the transport reports an outcome.
    roots: Vec<(TraceCtx, u64)>,
    delivered: u64,
    expired: u64,
}

impl FaultTarget for World {
    fn fault_network(&mut self) -> &mut Network {
        &mut self.net
    }
}

impl World {
    fn new(seed: u64, policy: RetryPolicy) -> Self {
        let mut net = Network::new();
        net.add_node(A, "a");
        net.add_node(B, "b");
        net.add_link_bidi(A, B, LinkSpec::new(SimDuration::from_millis(5), 1e8));
        net.set_group(B, 1).unwrap();
        let tracer = SharedTracer::new();
        let mut transport = ReliableTransport::new(policy, seed);
        transport.set_tracer(tracer.clone());
        World {
            net,
            rng: seeded_rng(seed),
            transport,
            tracer,
            roots: Vec::new(),
            delivered: 0,
            expired: 0,
        }
    }

    fn send(&mut self, value: u64, now: SimTime) {
        let ctx = self.tracer.start_trace("test.update", now);
        self.roots.push((ctx, ctx.span));
        self.transport.send_traced(&mut self.net, &mut self.rng, A, B, value, 64, now, Some(ctx));
    }

    fn pump(&mut self, now: SimTime) {
        for ev in self.transport.poll(&mut self.net, &mut self.rng, now) {
            match ev {
                mv_net::reliable::Event::Delivered { at, ctx, .. } => {
                    self.delivered += 1;
                    self.close_root(ctx, at, "ok");
                }
                mv_net::reliable::Event::Expired { at, ctx, .. } => {
                    self.expired += 1;
                    self.close_root(ctx, at, "gave_up");
                }
            }
        }
    }

    fn close_root(&mut self, ctx: Option<TraceCtx>, at: SimTime, status: &'static str) {
        let ctx = ctx.expect("traced sends carry their context");
        let root = self
            .roots
            .iter()
            .find(|(c, _)| c.trace == ctx.trace)
            .map(|(_, r)| *r)
            .expect("root recorded at send");
        self.tracer.close(root, at, status);
    }
}

/// Drive `world` through a `[100 ms, 400 ms)` partition with one send
/// at 150 ms (mid-partition — its first transmission is dropped on the
/// severed link) and return it after a 3 s drain.
fn run_partitioned(mut world: World) -> World {
    let mut sim = Sim::new(world);
    let sched = sim.scheduler();
    FaultPlan::new()
        .partition_between(0, 1, SimTime::from_millis(100), SimTime::from_millis(400))
        .install(sched);
    sched.at(SimTime::from_millis(50), |w: &mut World, s| w.send(1, s.now()));
    sched.at(SimTime::from_millis(150), |w: &mut World, s| w.send(2, s.now()));
    for ms in (0..3_000).step_by(10) {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.pump(s.now()));
    }
    sim.run_to_completion();
    world = sim.world;
    assert!(world.transport.is_idle(), "transport drained");
    world
}

#[test]
fn partition_dropped_message_closes_with_retry_children_and_no_leaks() {
    let w = run_partitioned(World::new(42, RetryPolicy::default()));
    assert_eq!(w.delivered, 2, "both messages survive the partition");
    assert_eq!(w.expired, 0);
    assert_eq!(w.tracer.open_count(), 0, "zero open spans at sim end");

    // Trace 2 is the mid-partition send: its first transmission died on
    // the severed link, so its send span must contain at least one
    // retry child — and still close "acked" after the heal.
    let recs = w.tracer.trace_records(2);
    let send = recs.iter().find(|r| r.name == "net.transport.send").expect("send span");
    assert_eq!(send.status, "acked");
    assert!(send.end > send.start, "the send span covers the partition wait");
    let retries: Vec<_> = recs
        .iter()
        .filter(|r| r.name == "net.transport.retry" && r.parent == send.span)
        .collect();
    assert!(!retries.is_empty(), "a dropped first attempt forces retry children");
    assert!(
        retries.iter().all(|r| r.status == "timeout" || r.status == "acked"),
        "every retry child is closed, none leaked: {retries:?}"
    );

    // The pre-partition send needed no retries.
    let quick = w.tracer.trace_records(1);
    assert!(quick.iter().all(|r| r.name != "net.transport.retry"));
}

#[test]
fn exhausted_retries_close_the_span_as_expired_without_leaks() {
    // Two attempts ≈ 300 ms of trying; the 300 ms partition outlives
    // them, so the mid-partition message must expire.
    let policy = RetryPolicy { max_attempts: 2, jitter_frac: 0.0, ..RetryPolicy::default() };
    let w = run_partitioned(World::new(7, policy));
    assert_eq!(w.delivered, 1, "only the pre-partition message arrives");
    assert_eq!(w.expired, 1);
    assert_eq!(w.tracer.open_count(), 0, "zero open spans at sim end");

    let recs = w.tracer.trace_records(2);
    let send = recs.iter().find(|r| r.name == "net.transport.send").expect("send span");
    assert_eq!(send.status, "expired");
    assert!(
        recs.iter().any(|r| r.name == "net.transport.retry" && r.status == "timeout"),
        "the final retry closed on its timeout"
    );
}

#[test]
fn same_seed_fault_runs_produce_identical_span_logs() {
    let a = run_partitioned(World::new(9, RetryPolicy::default()));
    let b = run_partitioned(World::new(9, RetryPolicy::default()));
    assert_eq!(a.tracer.canonical_bytes(), b.tracer.canonical_bytes());
    let c = run_partitioned(World::new(10, RetryPolicy::default()));
    assert_ne!(
        a.tracer.with(|t| t.log_hash()),
        c.tracer.with(|t| t.log_hash()),
        "different seeds jitter retries differently"
    );
}
