//! Sensing pipeline across crates: smart-city sensors → stream engine →
//! coherency-bounded dissemination; and healthcare vitals → detection.

use metaverse_deluge::common::id::{ClientId, ObjectId};
use metaverse_deluge::common::time::{SimDuration, SimTime};
use metaverse_deluge::dissem::{Bound, CoherencyServer};
use metaverse_deluge::stream::{AggKind, InterpolateOp, Pipeline, WindowAggOp, WindowKind};
use metaverse_deluge::workloads::healthcare::{HealthParams, VitalsStream};
use metaverse_deluge::workloads::smartcity::{SensorField, SmartCityParams};

#[test]
fn sensors_to_dashboards_respect_coherency() {
    let params = SmartCityParams {
        sensors: 200,
        duration: SimDuration::from_secs(30),
        ..Default::default()
    };
    let field = SensorField::generate(&params);
    let mut pipeline = Pipeline::new()
        .then(InterpolateOp::new(SimDuration::from_millis(500), SimDuration::from_secs(2)))
        .then(WindowAggOp::new(WindowKind::Tumbling(SimDuration::from_secs(5)), AggKind::Avg));
    let mut aggregates = pipeline.push_batch(field.readings.iter().copied());
    aggregates.extend(pipeline.flush(SimTime::from_secs(30)));
    assert!(!aggregates.is_empty());
    // Aggregates land on window boundaries.
    assert!(aggregates.iter().all(|a| a.ts.as_micros() % 5_000_000 == 0));

    let mut server = CoherencyServer::new();
    let dash = ClientId::new(1);
    for s in 0..params.sensors as u64 {
        server.subscribe(dash, ObjectId::new(s), Bound::Absolute(1.0));
    }
    for a in &aggregates {
        server.update(ObjectId::new(a.key), a.value);
    }
    // Invariant: every dashboard copy is within the bound of the source.
    for s in 0..params.sensors as u64 {
        if let (Some(src), Some(copy)) =
            (server.value(ObjectId::new(s)), server.client_copy(dash, ObjectId::new(s)))
        {
            assert!((src - copy).abs() <= 1.0 + 1e-9, "sensor {s}: {src} vs {copy}");
        }
    }
    // And suppression actually happened (diurnal drift is slow).
    assert!(server.stats.get("suppressed") > 0);
}

#[test]
fn vitals_monitoring_detects_episodes_through_the_stream_engine() {
    let v = VitalsStream::generate(&HealthParams::default());
    // Run detection through a window-average pipeline rather than the
    // built-in detector: 5-sample tumbling means above 110 flag patients.
    let mut pipeline = Pipeline::new().then(WindowAggOp::new(
        WindowKind::Tumbling(SimDuration::from_secs(5)),
        AggKind::Avg,
    ));
    let mut out = pipeline.push_batch(v.records.iter().copied());
    out.extend(pipeline.flush(SimTime::from_secs(600)));
    let mut flagged: Vec<u64> =
        out.iter().filter(|r| r.value > 110.0).map(|r| r.key).collect();
    flagged.sort_unstable();
    flagged.dedup();
    let truth: std::collections::BTreeSet<u64> =
        v.episodes.iter().map(|e| e.patient as u64).collect();
    let tp = flagged.iter().filter(|p| truth.contains(p)).count();
    assert!(
        tp as f64 / truth.len() as f64 > 0.9,
        "stream-engine recall {tp}/{}",
        truth.len()
    );
    let fp = flagged.iter().filter(|p| !truth.contains(p)).count();
    assert!(fp <= 2, "false positives {fp}");
}
