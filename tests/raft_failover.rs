//! Raft failover safety harness: a replicated co-space region driven
//! through scripted leader crashes, minority partitions, and
//! crash+restart with total state loss.
//!
//! A client spawns one entity every 10 ms into a 3- or 5-replica
//! `ReplicatedMetaverse` region while a fault script fires at fixed
//! virtual times. Leader-targeted faults (crash the leader, partition
//! the leader into a minority) resolve their victim *at fire time* —
//! leadership is itself a pure function of the seed, so the runs stay
//! deterministic. Asserted, for every scenario × replica count:
//!
//! * **No acknowledged write is ever lost.** A write acks only when its
//!   proposing leader applies it at a committed index; every acked
//!   command must be present in every replica's applied history at the
//!   end of the run.
//! * **Election safety.** No term ever has two leaders (and no instant
//!   has two valid read leases) — `ReplicatedMetaverse` records any
//!   violation it observes while running.
//! * **Byte-identical reconvergence.** After the faults heal, every
//!   replica's engine reaches the same `state_encoding` (compared via
//!   digest) and the same applied-command history.
//! * **Same-seed determinism.** Re-running a scenario with the same
//!   seed reproduces the event log, digests, and ack sequence exactly.

use mv_common::geom::Point;
use mv_common::hash::fx_hash_one;
use mv_common::id::NodeId;
use mv_common::time::SimTime;
use mv_core::entity::EntityKind;
use mv_core::replicated::RegionConfig;
use mv_core::{DurableOp, ReplicatedMetaverse};
use mv_net::fault::{apply, Fault, FaultTarget};
use mv_net::{FaultPlan, Network, Sim};

/// Writes flow over `[WRITE_START, WRITE_END)`, one per 10 ms.
const WRITE_START_MS: u64 = 1_000;
const WRITE_END_MS: u64 = 6_000;
/// The fault window.
const FAULT_AT_MS: u64 = 2_000;
const HEAL_AT_MS: u64 = 4_000;
/// Quiet tail for reconvergence.
const END_MS: u64 = 9_000;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Scenario {
    /// Crash whoever leads at the fault instant; restart at the heal.
    LeaderCrash,
    /// Partition the leader (plus minority peers) from the majority.
    MinorityPartition,
    /// Crash a fixed node with *disk* loss: it restarts empty and must
    /// catch up via snapshot install or full backfill.
    WipeCrash,
}

struct World {
    region: ReplicatedMetaverse,
    /// Victim of a leader-targeted fault, resolved at fire time.
    victim: Option<NodeId>,
    next_write: u64,
    submitted: Vec<Vec<u8>>,
    unavail_ticks: u64,
}

impl FaultTarget for World {
    fn fault_network(&mut self) -> &mut Network {
        self.region.fault_network()
    }
    fn on_node_crash(&mut self, node: NodeId) {
        self.region.on_node_crash(node);
    }
    fn on_node_restart(&mut self, node: NodeId) {
        self.region.on_node_restart(node);
    }
}

impl World {
    fn tick(&mut self, now: SimTime) {
        self.region.tick(now);
        let ms = now.as_micros() / 1_000;
        if (WRITE_START_MS..WRITE_END_MS).contains(&ms) && ms.is_multiple_of(10) {
            let op = DurableOp::Spawn {
                name: format!("w{}", self.next_write),
                kind: EntityKind::Avatar,
                position: Point::new(self.next_write as f64, 0.0),
                ts: now,
            };
            match self.region.submit(&op, now) {
                Some(_) => {
                    self.submitted.push(op.encode());
                    self.next_write += 1;
                }
                None => self.unavail_ticks += 1,
            }
        }
    }
}

struct RunResult {
    acked: Vec<Vec<u8>>,
    submitted: usize,
    unavail_ticks: u64,
    digests: Vec<Option<u64>>,
    history_hashes: Vec<Option<u64>>,
    violations: Vec<String>,
    up_count: usize,
    members: usize,
    log_hash: u64,
    applied_all: bool,
}

fn run(scenario: Scenario, replicas: usize, seed: u64) -> RunResult {
    let cfg = RegionConfig { replicas, compact_threshold: 32, ..RegionConfig::default() };
    let mut world = World {
        region: ReplicatedMetaverse::new(cfg, seed),
        victim: None,
        next_write: 0,
        submitted: Vec::new(),
        unavail_ticks: 0,
    };
    let fixed_victim = NodeId::new(1);
    if scenario == Scenario::WipeCrash {
        world.region.set_wipe_on_crash(fixed_victim, true);
    }
    let mut sim = Sim::new(world);
    let sched = sim.scheduler();

    match scenario {
        Scenario::LeaderCrash => {
            // The victim is whoever leads when the fault fires.
            sched.at(SimTime::from_millis(FAULT_AT_MS), |w: &mut World, _s| {
                if let Some(leader) = w.region.leader() {
                    w.victim = Some(leader);
                    apply(w, &Fault::Crash { node: leader });
                }
            });
            sched.at(SimTime::from_millis(HEAL_AT_MS), |w: &mut World, _s| {
                if let Some(victim) = w.victim.take() {
                    apply(w, &Fault::Restart { node: victim });
                }
            });
        }
        Scenario::MinorityPartition => {
            sched.at(SimTime::from_millis(FAULT_AT_MS), |w: &mut World, _s| {
                w.region.partition_minority_with_leader();
            });
            sched.at(SimTime::from_millis(HEAL_AT_MS), |w: &mut World, _s| {
                w.region.heal_partition();
            });
        }
        Scenario::WipeCrash => {
            // A fixed-target crash window exercises the scripted
            // FaultPlan path end to end (counted in Network::stats).
            FaultPlan::new()
                .crash_window(
                    fixed_victim,
                    SimTime::from_millis(FAULT_AT_MS),
                    SimTime::from_millis(HEAL_AT_MS),
                )
                .install(sched);
        }
    }

    for ms in 0..=END_MS {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.tick(s.now()));
    }
    sim.run_to_completion();

    let w = &sim.world;
    let n = w.region.members().len();
    let acked = w.region.acked().to_vec();
    let applied_all = acked.iter().all(|cmd| (0..n).all(|i| w.region.replica_applied(i, cmd)));
    RunResult {
        acked,
        submitted: w.submitted.len(),
        unavail_ticks: w.unavail_ticks,
        digests: w.region.replica_digests(),
        history_hashes: (0..n).map(|i| w.region.history_hash(i)).collect(),
        violations: w.region.violations().to_vec(),
        up_count: w.region.up_count(),
        members: n,
        log_hash: fx_hash_one(&w.region.log),
        applied_all,
    }
}

fn assert_safety(r: &RunResult, label: &str) {
    assert_eq!(r.up_count, r.members, "{label}: every replica back up at the end");
    assert!(r.violations.is_empty(), "{label}: safety violations: {:?}", r.violations);
    assert!(
        !r.acked.is_empty() && r.submitted > 0,
        "{label}: the workload must actually ack writes (acked {}, submitted {})",
        r.acked.len(),
        r.submitted
    );
    assert!(
        r.acked.len() <= r.submitted,
        "{label}: acks cannot exceed submissions"
    );
    assert!(r.applied_all, "{label}: an acknowledged write is missing from a replica");
    assert!(
        r.digests.iter().all(|d| d.is_some() && *d == r.digests[0]),
        "{label}: replicas did not reconverge byte-identically: {:?}",
        r.digests
    );
    assert!(
        r.history_hashes.iter().all(|h| h.is_some() && *h == r.history_hashes[0]),
        "{label}: applied histories diverged: {:?}",
        r.history_hashes
    );
}

fn assert_deterministic(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.log_hash, b.log_hash, "{label}: event logs diverged across same-seed runs");
    assert_eq!(a.digests, b.digests, "{label}: digests diverged across same-seed runs");
    assert_eq!(a.acked, b.acked, "{label}: ack sequences diverged across same-seed runs");
    assert_eq!(a.unavail_ticks, b.unavail_ticks, "{label}: availability diverged");
}

#[test]
fn leader_crash_loses_no_acked_writes() {
    for &replicas in &[3usize, 5] {
        let label = format!("leader-crash/{replicas}");
        let r = run(Scenario::LeaderCrash, replicas, 42);
        assert_safety(&r, &label);
        assert!(
            r.unavail_ticks > 0,
            "{label}: a leader crash must open an unavailability window"
        );
        let again = run(Scenario::LeaderCrash, replicas, 42);
        assert_deterministic(&r, &again, &label);
    }
}

#[test]
fn minority_partition_never_splits_the_brain() {
    for &replicas in &[3usize, 5] {
        let label = format!("minority-partition/{replicas}");
        let r = run(Scenario::MinorityPartition, replicas, 43);
        assert_safety(&r, &label);
        let again = run(Scenario::MinorityPartition, replicas, 43);
        assert_deterministic(&r, &again, &label);
    }
}

#[test]
fn wiped_node_catches_up_via_snapshot() {
    for &replicas in &[3usize, 5] {
        let label = format!("wipe-crash/{replicas}");
        let r = run(Scenario::WipeCrash, replicas, 44);
        assert_safety(&r, &label);
        let again = run(Scenario::WipeCrash, replicas, 44);
        assert_deterministic(&r, &again, &label);
    }
}

#[test]
fn different_seeds_explore_different_histories() {
    let a = run(Scenario::LeaderCrash, 3, 42);
    let b = run(Scenario::LeaderCrash, 3, 1042);
    assert_ne!(a.log_hash, b.log_hash, "seeds must actually steer the run");
}
