//! The §II military exercise: a 5 km × 5 km physical sub-exercise inside
//! a 100 km × 100 km virtual theatre.
//!
//! Physical troop positions are sensed and materialized in the virtual
//! model under a coherency bound; virtual strikes are relayed back as
//! "perish" commands — exactly the paper's example: *"if a region in the
//! ground occupied by troops were air-raided, then the troops should
//! 'perish'"*.
//!
//! Run with: `cargo run --release --example military_exercise`

use metaverse_deluge::common::geom::Aabb;
use metaverse_deluge::common::Space;
use metaverse_deluge::core::{EntityKind, Metaverse, SyncPolicy};
use metaverse_deluge::workloads::military::{ExerciseOp, ExerciseParams, MilitaryExercise};

fn main() {
    let params = ExerciseParams {
        physical_troops: 300,
        virtual_units: 2_000,
        duration: metaverse_deluge::common::time::SimDuration::from_secs(60),
        ..Default::default()
    };
    let exercise = MilitaryExercise::generate(&params);
    println!(
        "exercise: {} physical troops (5 km box), {} virtual units (100 km theatre), {} timeline ops",
        params.physical_troops,
        params.virtual_units,
        exercise.timeline.len()
    );

    // Stand the co-space up. Troop positions tolerate 25 m of lag — the
    // command centre doesn't need centimetre truth.
    let mut world = Metaverse::new(SyncPolicy { position_bound: 25.0, attr_bound: 0.0 }, 500.0);
    let mut troop_ids = Vec::new();
    for i in 0..params.physical_troops {
        troop_ids.push(world.spawn(
            format!("troop-{i}"),
            EntityKind::Person,
            exercise.physical_bounds.center(),
            metaverse_deluge::common::time::SimTime::ZERO,
        ));
    }
    let mut unit_ids = Vec::new();
    for i in 0..params.virtual_units {
        unit_ids.push(world.spawn(
            format!("unit-{i}"),
            EntityKind::Avatar,
            exercise.theatre_bounds.center(),
            metaverse_deluge::common::time::SimTime::ZERO,
        ));
    }

    let mut casualties = 0usize;
    let mut strikes = 0usize;
    for (ts, op) in &exercise.timeline {
        match op {
            ExerciseOp::PhysicalReport(i, p) => {
                if !world.entity(troop_ids[*i]).unwrap().retired {
                    world.update_position(troop_ids[*i], *p, *ts).unwrap();
                }
            }
            ExerciseOp::VirtualMove(i, p) => {
                if !world.entity(unit_ids[*i]).unwrap().retired {
                    world.update_position(unit_ids[*i], *p, *ts).unwrap();
                }
            }
            ExerciseOp::Strike(target) => {
                strikes += 1;
                // The commander draws the blast circle on the virtual
                // map; physical troops whose twins are inside perish.
                let commands = world.area_effect(
                    Space::Virtual,
                    "air_raid",
                    Aabb::centered(*target, exercise.blast_radius),
                    "perish",
                    true,
                    *ts,
                );
                casualties += commands.len();
                if !commands.is_empty() {
                    println!(
                        "{ts}: strike at ({:.0}, {:.0}) → {} ground troops perish",
                        target.x,
                        target.y,
                        commands.len()
                    );
                }
            }
        }
    }

    println!("\n--- after-action report ---");
    println!("strikes ordered:        {strikes}");
    println!("ground casualties:      {casualties}");
    println!("troops remaining:       {}", world
        .query_truth(Space::Physical, &Aabb::everything())
        .len());
    println!(
        "cross-space sync msgs:  {} (suppressed {} — {:.1}% traffic saved by the 25 m bound)",
        world.stats.get("sync_msgs"),
        world.stats.get("suppressed_syncs"),
        100.0 * world.stats.get("suppressed_syncs") as f64
            / (world.stats.get("sync_msgs") + world.stats.get("suppressed_syncs")) as f64
    );
    println!("mean twin divergence:   {:.1} m", world.mean_divergence());

    // Command-centre situational query: strength around the hot corner
    // of the physical box.
    let hot = Aabb::centered(exercise.physical_bounds.center(), 1_000.0);
    println!(
        "troops within 1 km of the box centre: {}",
        world.query_truth(Space::Physical, &hot).len()
    );
}
