//! Quickstart: a ten-minute tour of the co-space engine.
//!
//! Spawns a physical shopper and a virtual avatar, moves them around,
//! shows coherency-bounded twin sync, and relays a virtual event to the
//! physical world.
//!
//! Run with: `cargo run --release --example quickstart`

use metaverse_deluge::common::geom::{Aabb, Point};
use metaverse_deluge::common::time::SimTime;
use metaverse_deluge::common::Space;
use metaverse_deluge::core::{EntityKind, Metaverse, SyncPolicy};

fn main() {
    // A co-space world where twins may lag ground truth by up to 2 m.
    let mut world = Metaverse::new(SyncPolicy { position_bound: 2.0, attr_bound: 0.0 }, 50.0);

    // A physical shopper walks the mall; a virtual avatar browses the
    // virtual wing of the same mall.
    let alice = world.spawn("alice", EntityKind::Person, Point::new(10.0, 10.0), SimTime::ZERO);
    let bot = world.spawn("greeter-bot", EntityKind::Avatar, Point::new(12.0, 10.0), SimTime::ZERO);

    // Small movements stay under the coherency bound: no cross-space
    // message is sent, but ground truth is always current.
    for step in 1..=5u64 {
        let p = Point::new(10.0 + step as f64 * 0.3, 10.0);
        world.update_position(alice, p, SimTime::from_millis(step * 100)).unwrap();
    }
    println!(
        "after 5 small moves: sync_msgs={} suppressed={} divergence={:.2} m",
        world.stats.get("sync_msgs"),
        world.stats.get("suppressed_syncs"),
        world.entity(alice).unwrap().divergence(),
    );

    // A big move forces a sync.
    world.update_position(alice, Point::new(25.0, 10.0), SimTime::from_millis(600)).unwrap();
    println!(
        "after a 13 m move:  sync_msgs={} divergence={:.2} m",
        world.stats.get("sync_msgs"),
        world.entity(alice).unwrap().divergence(),
    );

    // Who is visible near the shop entrance, in each space?
    let entrance = Aabb::centered(Point::new(24.0, 10.0), 5.0);
    println!(
        "visible in physical space near the entrance: {:?}",
        world.query_visible(Space::Physical, &entrance)
    );
    println!(
        "visible in virtual space near the entrance:  {:?}",
        world.query_visible(Space::Virtual, &entrance)
    );

    // A virtual flash-sale zone fires; physical shoppers inside the zone
    // get a notification command relayed to their devices.
    let commands = world.area_effect(
        Space::Virtual,
        "flash_sale",
        Aabb::centered(Point::new(25.0, 10.0), 10.0),
        "notify_discount",
        false,
        SimTime::from_millis(700),
    );
    for c in &commands {
        println!("relayed command: {} → entity {} in {} space", c.action, c.entity, c.target_space);
    }

    // The event log records everything that crossed the boundary.
    let events = world.drain_events();
    println!("{} events on the co-space timeline; last 3:", events.len());
    for e in events.iter().rev().take(3) {
        println!("  {:?}", e.kind);
    }
    let _ = bot;
}
