//! §II location-based gaming: Pokémon-GO-style play over a real city.
//!
//! Players physically roam the city; each player's "view" is a moving
//! range query over the other moving players and the static points of
//! interest (§IV-G's moving-queries-over-moving-objects challenge, served
//! with safe regions). Encounters publish geo-textual events through the
//! pub/sub layer so nearby subscribed friends are notified (§IV-E).
//!
//! Run with: `cargo run --release --example location_game`

use metaverse_deluge::common::geom::{Aabb, Point};
use metaverse_deluge::common::id::{ClientId, EntityId};
use metaverse_deluge::common::time::SimTime;
use metaverse_deluge::pubsub::{IndexedMatcher, Matcher, Publication, Subscription};
use metaverse_deluge::spatial::{MovingQueryEngine, QueryStrategy};
use metaverse_deluge::workloads::game::{GameParams, GameWorkload};

fn main() {
    let params = GameParams::default();
    let session = GameWorkload::generate(&params);
    println!(
        "session: {} players, {} POIs, {} movement reports, {} encounters",
        params.players,
        params.pois,
        session.movements.len(),
        session.encounters.len()
    );

    // Each player's game client runs a continuous 100 m view query,
    // maintained with safe regions instead of per-tick re-evaluation.
    let mut engine = MovingQueryEngine::new(QueryStrategy::SafeRegion { buffer: 40.0 }, 100.0);
    // POIs are objects too (ids offset past the player range).
    for (j, poi) in session.pois.iter().enumerate() {
        engine.update_object(EntityId::new((params.players + j) as u64), *poi);
    }
    let mut queries = Vec::new();
    for i in 0..params.players {
        queries.push(engine.register_query(Point::ORIGIN, 100.0));
        let _ = i;
    }

    // Friend subscriptions: every player subscribes to encounter events
    // of a few plazas' worth of terms near their home cell.
    let mut matcher = IndexedMatcher::new();
    for i in 0..params.players as u64 {
        let home = session.pois[i as usize % session.pois.len()];
        matcher.add(
            Subscription::new(ClientId::new(i))
                .with_term("encounter")
                .in_region(Aabb::centered(home, 400.0)),
        );
    }

    // Replay the session.
    let mut view_reads = 0u64;
    let mut notifications = 0usize;
    let mut last_tick = SimTime::ZERO;
    for (ts, player, pos) in &session.movements {
        engine.update_object(EntityId::new(*player as u64), *pos);
        engine.move_observer(queries[*player], *pos).unwrap();
        if *ts != last_tick {
            // Once per tick, every 10th player refreshes their view.
            for (i, q) in queries.iter().enumerate().step_by(10) {
                let _in_view = engine.result(*q).unwrap();
                view_reads += 1;
                let _ = i;
            }
            last_tick = *ts;
        }
    }
    for e in &session.encounters {
        let publication = Publication::new(e.ts)
            .term("encounter")
            .term("quest")
            .at(session.pois[e.poi]);
        notifications += matcher.match_pub(&publication).len();
    }

    println!("\n--- engine accounting ---");
    println!("view reads served:        {view_reads}");
    println!(
        "index probes paid:        {} (safe regions saved the rest)",
        engine.stats.get("index_probes")
    );
    println!("cache patches:            {}", engine.stats.get("cache_patches"));
    println!("encounter notifications:  {notifications}");
}
