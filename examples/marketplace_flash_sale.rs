//! The §II metaverse marketplace during a "Black Friday" flash sale.
//!
//! Ties four subsystems together the way §IV-E sketches:
//! * the workload generator produces a 20× request burst from both
//!   physical and virtual shoppers;
//! * a serverless executor pool absorbs the burst elastically (§IV-E3);
//! * contested last items are resolved space-aware — the physical
//!   shopper at the shelf beats the online bot (§IV-G);
//! * every sale is committed to a verifiable ledger so the operator
//!   can't quietly rewrite inventory history (§IV-D).
//!
//! Run with: `cargo run --release --example marketplace_flash_sale`

use metaverse_deluge::cloud::{ServerlessPool, WorkloadSpec};
use metaverse_deluge::common::time::{SimDuration, SimTime};
use metaverse_deluge::common::Space;
use metaverse_deluge::ledger::VerifiableKv;
use metaverse_deluge::query::{AllocPolicy, ContendedAllocator, PurchaseRequest};
use metaverse_deluge::workloads::marketplace::{FlashSale, MarketParams};

fn main() {
    let sale = FlashSale::generate(&MarketParams::default());
    println!(
        "{} purchase requests over 90 s (burst ratio ~{:.1}x during the sale window)",
        sale.requests.len(),
        sale.burst_ratio()
    );

    // 1. Serverless absorbs the burst.
    let pool = ServerlessPool {
        cold_start: SimDuration::from_millis(150),
        keep_alive: SimDuration::from_secs(30),
        max_instances: None,
    };
    let spec = WorkloadSpec {
        requests: sale.requests.iter().map(|r| (r.ts, r.service)).collect(),
    };
    let mut report = pool.run(&spec);
    println!("\n--- serverless pool ---");
    println!("p50 latency:     {:.1} ms", report.latency_ms.p50());
    println!("p99 latency:     {:.1} ms", report.latency_ms.p99());
    println!("cold starts:     {:.1}%", report.cold_fraction() * 100.0);
    println!("peak instances:  {}", report.peak_instances);
    println!(
        "pay-per-use:     {:.1}% of holding the peak fleet for the whole run",
        report.cost_ratio() * 100.0
    );

    // 2. Space-aware contention on scarce stock: the 20 hottest products
    // have one unit left.
    let mut alloc = ContendedAllocator::new(AllocPolicy::PhysicalFirst {
        window: SimDuration::from_millis(20),
    });
    for item in 0..20u64 {
        alloc.stock(item, 1);
    }
    // Batch requests per product during the sale window and resolve.
    let mut batches: std::collections::BTreeMap<u64, Vec<PurchaseRequest>> = Default::default();
    for (i, r) in sale.requests.iter().enumerate() {
        if r.product < 20 {
            batches.entry(r.product as u64).or_default().push(PurchaseRequest {
                client: metaverse_deluge::common::id::ClientId::new(i as u64),
                space: r.space,
                item: r.product as u64,
                ts: r.ts,
            });
        }
    }
    for reqs in batches.values() {
        alloc.resolve(reqs);
    }
    println!("\n--- last-item contention (physical-first) ---");
    println!("items sold:        {}", alloc.stats.get("sold"));
    println!("physical winners:  {}", alloc.stats.get("physical_wins"));
    println!("virtual winners:   {}", alloc.stats.get("virtual_wins"));
    println!("requests rejected: {}", alloc.stats.get("rejected"));

    // 3. Commit sales to the verifiable ledger; spot-verify a receipt.
    let mut ledger = VerifiableKv::new(b"marketplace-mac-key");
    let mut committed = 0u64;
    for (i, r) in sale.requests.iter().enumerate().take(5_000) {
        let space_tag = match r.space {
            Space::Physical => "phys",
            Space::Virtual => "virt",
        };
        ledger.put(
            &format!("sale/{i}"),
            format!("product={} space={} t={}", r.product, space_tag, r.ts).as_bytes(),
        );
        committed += 1;
    }
    let receipt = ledger.get_verified("sale/42").expect("committed and verifiable");
    println!("\n--- verifiable ledger ---");
    println!("sales committed:  {committed}");
    println!("log entries:      {}", ledger.log_size());
    println!("receipt 42:       {}", String::from_utf8_lossy(&receipt));
    // A compromised server can't serve a forged receipt.
    ledger.tamper_store("sale/42", b"product=0 space=virt t=FORGED");
    println!(
        "forged receipt rejected: {}",
        ledger.get_verified("sale/42").is_err()
    );
    let _ = SimTime::ZERO;
}
