//! Fig. 6: the co-space of a library.
//!
//! RFID readers, panning cameras, and web reviews all speak about the
//! same books with different noise; the fusion layer resolves mentions,
//! combines evidence by reliability, and detects relocations — keeping
//! the virtual library faithful to the physical one.
//!
//! Run with: `cargo run --release --example library_cospace`

use metaverse_deluge::fusion::library::{LibraryParams, LibraryScenario};
use metaverse_deluge::fusion::{EntityResolver};

fn main() {
    // First: entity resolution across heterogeneous mentions (the messy
    // reality of fusing web text with catalog rows).
    let mut resolver = EntityResolver::new();
    for mention in [
        "Dune",
        "DUNE (Herbert)",
        "dune herbert",
        "Neuromancer",
        "neuromancer - gibson",
        "Snow Crash",
        "snow crash (stephenson)",
    ] {
        resolver.add_mention(mention);
    }
    let (entities, _) = resolver.resolve();
    println!("--- entity resolution ---");
    for e in &entities {
        println!("  {:<28} <= {:?}", e.canonical, e.mentions);
    }

    // Then: the full library with ground truth, three noisy sources, and
    // a mid-run reshelving of 20% of the collection.
    let params = LibraryParams::default();
    let report = LibraryScenario::new(params, 42).run_fusion();
    println!("\n--- shelf-location accuracy (500 books, 40 shelves) ---");
    println!("RFID alone (25% miss, 15% ghost):  {:>5.1}%", report.rfid_acc * 100.0);
    println!("camera alone (60% coverage):       {:>5.1}%", report.camera_acc * 100.0);
    println!("web mentions alone (noisy):        {:>5.1}%", report.social_acc * 100.0);
    println!("fused (log-odds, time-decayed):    {:>5.1}%", report.fused_acc * 100.0);

    println!("\n--- relocation events ---");
    println!("books actually reshelved:   {}", report.relocations);
    println!("detected by the event rule: {}", report.detected_moves);
    println!("false alarms:               {}", report.false_moves);
    println!(
        "\nThe co-space library's virtual shelves track the physical ones at {:.1}% \
         accuracy — no single sensor comes close.",
        report.fused_acc * 100.0
    );
}
