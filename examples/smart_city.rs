//! §II smart city: sensors → stream engine → coherency-bounded
//! dissemination to dashboards.
//!
//! A city-scale sensor field streams readings; the stream engine
//! interpolates gaps and window-aggregates per district; the
//! dissemination layer pushes district aggregates to subscribed
//! dashboards only when they drift past each dashboard's tolerance.
//!
//! Run with: `cargo run --release --example smart_city`

use metaverse_deluge::common::id::{ClientId, ObjectId};
use metaverse_deluge::common::time::{SimDuration, SimTime};
use metaverse_deluge::dissem::{Bound, CoherencyServer};
use metaverse_deluge::stream::{
    AggKind, InterpolateOp, Pipeline, WindowAggOp, WindowKind,
};
use metaverse_deluge::workloads::smartcity::{SensorField, SmartCityParams};

fn main() {
    let params = SmartCityParams::default();
    let field = SensorField::generate(&params);
    println!(
        "{} sensors emitted {} readings over {}s (mean {:.0}/s)",
        params.sensors,
        field.readings.len(),
        params.duration.as_secs_f64(),
        field.mean_rate(params.duration)
    );

    // Stream pipeline: fill sensing gaps, then 5-second per-sensor means.
    let mut pipeline = Pipeline::new()
        .then(InterpolateOp::new(
            SimDuration::from_millis(500),
            SimDuration::from_millis(2_000),
        ))
        .then(WindowAggOp::new(
            WindowKind::Tumbling(SimDuration::from_secs(5)),
            AggKind::Avg,
        ));
    println!("pipeline plan: {:?}", pipeline.plan());
    let mut aggregates = pipeline.push_batch(field.readings.iter().copied());
    aggregates.extend(pipeline.flush(SimTime::from_secs(60)));
    println!(
        "{} raw+interpolated records in → {} district aggregates out",
        pipeline.records_in, aggregates.len()
    );

    // Dashboards subscribe per sensor with different tolerances: the ops
    // centre wants 0.5-degree coherency, the public display 2 degrees.
    let mut server = CoherencyServer::new();
    let ops_centre = ClientId::new(1);
    let public_display = ClientId::new(2);
    for sensor in 0..params.sensors as u64 {
        server.subscribe(ops_centre, ObjectId::new(sensor), Bound::Absolute(0.5));
        server.subscribe(public_display, ObjectId::new(sensor), Bound::Absolute(2.0));
    }
    for agg in &aggregates {
        server.update(ObjectId::new(agg.key), agg.value);
    }
    let pushes = server.stats.get("pushes");
    let suppressed = server.stats.get("suppressed");
    println!("\n--- dissemination ---");
    println!("aggregate updates:   {}", server.stats.get("updates"));
    println!("pushes sent:         {pushes}");
    println!(
        "suppressed in-bound:  {suppressed} ({:.1}% bandwidth saved)",
        100.0 * suppressed as f64 / (pushes + suppressed) as f64
    );
    println!(
        "ops-centre copy of sensor 0:      {:?}",
        server.client_copy(ops_centre, ObjectId::new(0))
    );
    println!(
        "public-display copy of sensor 0:  {:?}",
        server.client_copy(public_display, ObjectId::new(0))
    );
}
